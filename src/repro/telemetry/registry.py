"""Namespaced metrics registry (counters, gauges, timers, histograms).

Metric names are dotted paths (``sim.decode.lookups``,
``mem.cache.l1.misses``); the registry stores them flat and
:func:`tree_from_flat` renders the namespace tree for reports.

Two properties matter for a simulator that executes hundreds of
millions of guest instructions per run:

* **Near-zero cost when disabled.**  A registry constructed with
  ``enabled=False`` hands out shared null metrics whose mutators are
  no-ops; call sites keep unconditional ``counter.inc()`` code with no
  per-event branching on a flag.
* **Lazy sources.**  Hot code keeps its existing plain-int counters
  (``DecodeCache.decodes``, ``SuperblockEngine.chain_hits``...);
  :meth:`MetricsRegistry.bind` registers a zero-cost callable that is
  evaluated only when a snapshot is taken, so instrumentation adds
  nothing to the run loop.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-value-wins metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class Timer:
    """Accumulated wall-clock seconds, usable as a context manager."""

    __slots__ = ("seconds", "count", "_started")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.count = 0
        self._started = 0.0

    def start(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        elapsed = time.perf_counter() - self._started
        self.seconds += elapsed
        self.count += 1
        return elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class Histogram:
    """Power-of-two bucketed distribution of non-negative values.

    Bucket ``i`` holds values whose integer part has bit length ``i``
    (i.e. value 0 → bucket 0, 1 → 1, 2..3 → 2, 4..7 → 3, ...), which is
    plenty of resolution for block lengths, burst sizes and latencies
    while staying allocation-free per record.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.buckets: Dict[int, int] = {}

    def record(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def start(self) -> "Timer":
        return self

    def stop(self) -> float:
        return 0.0


class _NullHistogram(Histogram):
    __slots__ = ()

    def record(self, value) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_TIMER = _NullTimer()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Flat name → metric store with lazy bound sources."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, object] = {}
        self._sources: Dict[str, Callable[[], object]] = {}

    # -- metric constructors ----------------------------------------------

    def _get(self, name: str, cls, null):
        if not self.enabled:
            return null
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, _NULL_COUNTER)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, _NULL_GAUGE)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer, _NULL_TIMER)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram, _NULL_HISTOGRAM)

    def set(self, name: str, value) -> None:
        """Shorthand for ``gauge(name).set(value)``."""
        self.gauge(name).set(value)

    def bind(self, name: str, source: Callable[[], object]) -> None:
        """Register a callable evaluated lazily at snapshot time.

        This is how hot-loop counters join the tree without the loop
        ever touching the registry: ``bind("sim.decode.lookups",
        lambda: cache.lookups)``.
        """
        if self.enabled:
            self._sources[name] = source

    def update(self, flat: Dict[str, object]) -> None:
        """Set one gauge per entry of an already-flat metric dict."""
        for name, value in flat.items():
            self.set(name, value)

    # -- output ------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Flatten every metric (and bound source) to plain values.

        Composite metrics expand into dotted sub-keys
        (``name.seconds``, ``name.count``...), so the result is a flat
        ``str -> int|float|str`` mapping ready for JSON.
        """
        out: Dict[str, object] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Timer):
                out[name + ".seconds"] = metric.seconds
                out[name + ".count"] = metric.count
            elif isinstance(metric, Histogram):
                out[name + ".count"] = metric.count
                out[name + ".sum"] = metric.total
                out[name + ".mean"] = metric.mean
                if metric.min is not None:
                    out[name + ".min"] = metric.min
                    out[name + ".max"] = metric.max
            else:
                out[name] = metric.value
        for name, source in self._sources.items():
            out[name] = source()
        return dict(sorted(out.items()))

    def __len__(self) -> int:
        return len(self._metrics) + len(self._sources)


def tree_from_flat(flat: Dict[str, object]) -> Dict[str, object]:
    """Nest a flat dotted-name mapping into the namespace tree.

    A name that is both a leaf and a prefix keeps its leaf value under
    the empty key (should not happen with the documented namespace).
    """
    tree: Dict[str, object] = {}
    for name, value in flat.items():
        parts = name.split(".")
        node = tree
        for part in parts[:-1]:
            child = node.get(part)
            if not isinstance(child, dict):
                child = {} if child is None else {"": child}
                node[part] = child
            node = child
        leaf = parts[-1]
        if isinstance(node.get(leaf), dict):
            node[leaf][""] = value
        else:
            node[leaf] = value
    return tree
