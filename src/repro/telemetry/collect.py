"""Absorb scattered simulator counters into one flat metric tree.

The run loops keep their plain-int counters (that is what makes them
fast); this module is the single place that knows where they all live
and what they are called in the unified namespace:

========================  ==================================================
prefix                    source
========================  ==================================================
``sim.*``                 :class:`~repro.sim.stats.SimStats`
``sim.decode.*``          :class:`~repro.sim.decode_cache.DecodeCache`
``sim.superblock.*``      :class:`~repro.sim.superblock.SuperblockEngine`
``sim.aot.*``             :class:`~repro.sim.aot.AotBinding` (engine=aot)
``sim.plancache.*``       :class:`~repro.sim.plancache.PlanCache`
``cycles.<model>.*``      the attached cycle model (ilp/aie/doe/rtl)
``cycles.<model>.branch.*``  its optional branch-misprediction model
``mem.cache.<name>.*``    each :class:`~repro.cycles.memmodel.Cache`
``mem.port.<name>.*``     each :class:`~repro.cycles.memmodel.ConnectionLimit`
``mem.main.*``            :class:`~repro.cycles.memmodel.MainMemory`
========================  ==================================================

Collection is strictly post-run: it reads counters, never installs
hooks, so enabling metrics costs nothing while the simulation runs.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Telemetry document format identifiers; bump ``SCHEMA_VERSION`` on
#: any backwards-incompatible change to metric names or report layout.
#: v2: sampled runs add top-level ``cycles_estimated``/``cycles_ci95``
#: and a ``sampling`` block (absent on non-sampled runs).
SCHEMA_NAME = "kahrisma-telemetry"
SCHEMA_VERSION = 2


def collect_stats_metrics(stats) -> Dict[str, object]:
    """``sim.*`` metrics from a :class:`~repro.sim.stats.SimStats`."""
    return {
        "sim.executed_instructions": stats.executed_instructions,
        "sim.executed_slots": stats.executed_slots,
        "sim.executed_ops": stats.executed_ops,
        "sim.memory_instructions": stats.memory_instructions,
        "sim.memory_ops": stats.memory_ops,
        "sim.memory_instruction_fraction": stats.memory_instruction_fraction,
        "sim.simops": stats.simops,
        "sim.isa_switches": stats.isa_switches,
        "sim.elapsed_seconds": stats.elapsed_seconds,
        "sim.mips": stats.mips,
        "sim.exit_code": stats.exit_code,
        "sim.decode.decoded_instructions": stats.decoded_instructions,
        "sim.decode.lookups": stats.cache_lookups,
        "sim.decode.prediction_hits": stats.prediction_hits,
        "sim.decode.decode_avoidance": stats.decode_avoidance,
        "sim.decode.lookup_avoidance": stats.lookup_avoidance,
    }


def collect_interpreter_metrics(interp) -> Dict[str, object]:
    """``sim.*`` metrics from an :class:`~repro.sim.interpreter.Interpreter`.

    Superset of :func:`collect_stats_metrics`: adds the decode-cache
    and superblock shadow counters only the interpreter can reach.
    """
    out = collect_stats_metrics(interp.stats)
    out["sim.engine"] = interp.engine
    cache = interp.cache
    out["sim.decode.entries"] = len(cache)
    out["sim.decode.total_decodes"] = cache.decodes
    out["sim.decode.total_lookups"] = cache.lookups
    out["sim.decode.invalidation_version"] = cache.version
    engine = interp.superblock
    if engine is not None:
        blocks = engine.blocks_executed
        out["sim.superblock.plans_built"] = engine.plans_built
        out["sim.superblock.plans_live"] = len(engine.plans)
        out["sim.superblock.blocks_executed"] = blocks
        out["sim.superblock.chain_hits"] = engine.chain_hits
        out["sim.superblock.chain_hit_rate"] = (
            engine.chain_hits / blocks if blocks else 0.0
        )
        out["sim.superblock.translations"] = engine.translations
        out["sim.superblock.plan_cache_hits"] = engine.plan_cache_hits
    binding = getattr(interp, "aot", None)
    if binding is not None:
        out["sim.aot.entries_total"] = binding.entries_total
        out["sim.aot.entries_bound"] = binding.entries_bound
        out["sim.aot.entries_stale"] = binding.entries_stale
        out["sim.aot.traces_total"] = binding.traces_total
        out["sim.aot.traces_bound"] = binding.traces_bound
        out["sim.aot.dispatches"] = binding.dispatches
        out["sim.aot.blocks_executed"] = binding.blocks_executed
        out["sim.aot.aborts"] = binding.aborts
        out["sim.aot.rows_invalidated"] = binding.rows_invalidated
    plan_cache = getattr(interp, "plan_cache", None)
    if plan_cache is not None:
        out["sim.plancache.entries"] = len(plan_cache)
        out["sim.plancache.evictions"] = plan_cache.evictions
        out["sim.plancache.lock_waits"] = getattr(
            plan_cache, "lock_waits", 0
        )
        out["sim.plancache.lock_timeouts"] = getattr(
            plan_cache, "lock_timeouts", 0
        )
    return out


def collect_model_metrics(model) -> Dict[str, object]:
    """``cycles.*`` and ``mem.*`` metrics from a cycle model.

    Accepts any model exposing the :class:`~repro.cycles.base.CycleModel`
    interface (including the RTL reference pipeline and the profiler's
    model proxy, which is unwrapped first).
    """
    inner = getattr(model, "inner", None)
    if inner is not None and hasattr(model, "profiler"):
        model = inner  # unwrap _ProfilingModel
    name = str(getattr(model, "name", type(model).__name__)).lower()
    prefix = f"cycles.{name}."
    out: Dict[str, object] = {
        prefix + "cycles": model.cycles,
        prefix + "instructions": getattr(model, "instructions", 0),
        prefix + "ops": getattr(model, "ops", 0),
        prefix + "ops_per_cycle": getattr(model, "ops_per_cycle", 0.0),
    }
    branch = getattr(model, "branch_model", None)
    if branch is not None:
        out[prefix + "branch.conditional_branches"] = getattr(
            branch, "conditional_branches", 0
        )
        out[prefix + "branch.mispredictions"] = getattr(
            branch, "mispredictions", 0
        )
        out[prefix + "branch.ras_mispredictions"] = getattr(
            branch, "ras_mispredictions", 0
        )
        out[prefix + "branch.penalty"] = getattr(branch, "penalty", 0)
    memory = getattr(model, "memory", None)
    if memory is not None:
        out.update(collect_memory_metrics(memory))
    return out


def collect_memory_metrics(module) -> Dict[str, object]:
    """``mem.*`` metrics by walking a hierarchy's ``.sub`` chain."""
    from ..cycles.memmodel import Cache, ConnectionLimit, MainMemory

    out: Dict[str, object] = {}
    current = module
    while current is not None:
        if isinstance(current, Cache):
            prefix = f"mem.cache.{current.name.lower()}."
            out[prefix + "hits"] = current.hits
            out[prefix + "misses"] = current.misses
            out[prefix + "accesses"] = current.accesses
            out[prefix + "miss_rate"] = current.miss_rate
            out[prefix + "writebacks"] = current.writebacks
        elif isinstance(current, ConnectionLimit):
            sub_name = str(
                getattr(current.sub, "name", "mem")
            ).lower()
            out[f"mem.port.{sub_name}.stalls"] = current.stalls
            out[f"mem.port.{sub_name}.ports"] = current.ports
        elif isinstance(current, MainMemory):
            out["mem.main.accesses"] = current.accesses
            out["mem.main.delay"] = current.delay
        current = getattr(current, "sub", None)
    return out


def collect_run_metrics(
    interp=None,
    model=None,
    *,
    stats=None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One flat metric dict for a finished run.

    Pass the interpreter (preferred — includes decode/superblock
    shadow counters) or just its :class:`SimStats`; the cycle model is
    optional.  ``extra`` entries are merged last and may override.
    """
    out: Dict[str, object] = {}
    if interp is not None:
        out.update(collect_interpreter_metrics(interp))
        if model is None:
            model = interp.cycle_model
    elif stats is not None:
        out.update(collect_stats_metrics(stats))
    if model is not None:
        out.update(collect_model_metrics(model))
    if extra:
        out.update(extra)
    return dict(sorted(out.items()))
