"""Streaming observability plane: schema-versioned NDJSON run events.

PR 2's telemetry is post-hoc — metrics, profiles and timelines
materialize after a run completes.  This module is the *live* side:
an event bus the interpreter (all engines), the checkpoint runner and
the parallel shard coordinator emit into while the simulation runs,
so long-lived clients (``kahrisma run --events -``, the future
``kahrisma serve``) see progress as it happens instead of a silent
multi-second gap.

Design rules (same contract as the rest of ``repro.telemetry``):

* **Free when off.**  No engine loop ever checks for an event stream;
  heartbeats are driven by budget slicing in
  :meth:`~repro.sim.interpreter.Interpreter.run` (exactly the
  mechanism checkpointing already uses, so slicing is covered by the
  determinism gate) and the rare-event hooks (syscall, ISA switch,
  SMC) cost one ``None`` check per *event*, not per instruction.
* **Schema-versioned NDJSON.**  One JSON object per line; every event
  carries ``v`` (:data:`EVENT_SCHEMA_VERSION`), a stream-monotonic
  ``seq`` and a relative wall-clock ``t``.  :func:`validate_event` /
  :func:`validate_stream_text` are the single source of truth for the
  per-type required fields — tests and the CI streaming smoke job
  validate against them.
* **Shard-transparent.**  Parallel workers emit into buffered streams
  tagged with their shard index; :func:`merge_shard_events` replays
  them through the coordinator's stream, so a sharded run produces one
  well-formed event file.

Event types (see ``docs/observability.md`` for the field reference)::

    run-start      workload, engine, model, heartbeat_every
    heartbeat      instructions, mips, cycles, counters{...}
    syscall        ip, ident, name
    isa-switch     ip, from_isa, to_isa
    smc-invalidate addr, length
    checkpoint     path, instructions
    trap           error, ip
    run-end        instructions, exit_code, elapsed_seconds, mips, halted
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Dict, Iterable, List, Optional

#: Stream format identifiers; bump the version on any change that
#: removes or renames a required field of an existing event type.
EVENT_SCHEMA = "kahrisma-events"
EVENT_SCHEMA_VERSION = 1

#: Default heartbeat cadence in executed instructions (~20-40 beats/s
#: at superblock/AOT speeds; override per stream or via --heartbeat).
DEFAULT_HEARTBEAT_EVERY = 250_000

#: Envelope fields present on every event.
ENVELOPE_FIELDS = ("v", "seq", "t", "type")

#: type -> required payload fields (the envelope is implicit).  This
#: mapping is the event-schema contract validated by tests and CI.
EVENT_TYPES: Dict[str, tuple] = {
    "run-start": ("workload", "engine", "model", "heartbeat_every"),
    "heartbeat": ("instructions", "mips", "cycles", "counters"),
    "syscall": ("ip", "ident", "name"),
    "isa-switch": ("ip", "from_isa", "to_isa"),
    "smc-invalidate": ("addr", "length"),
    "checkpoint": ("path", "instructions"),
    "trap": ("error", "ip"),
    "run-end": ("instructions", "exit_code", "elapsed_seconds", "mips",
                "halted"),
}


class EventStream:
    """Emit schema-versioned run events as NDJSON (or into a buffer).

    ``sink`` is any object with ``write(str)`` (events are written one
    JSON line at a time and flushed, so ``--events -`` pipes live);
    ``sink=None`` buffers event dicts in :attr:`events` instead — the
    mode parallel shard workers use to ship their events back to the
    coordinator.  ``shard`` tags every emitted event with a shard
    index.  Subscribers (:meth:`subscribe`) see every event dict after
    it is written — that is how ``--live`` progress and the Prometheus
    snapshot writer attach without a second event path.
    """

    def __init__(
        self,
        sink=None,
        *,
        heartbeat_every: int = DEFAULT_HEARTBEAT_EVERY,
        shard: Optional[int] = None,
        _now: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._sink = sink
        self._own_sink = False
        #: Buffered events (``sink=None`` mode only).
        self.events: Optional[List[dict]] = [] if sink is None else None
        self.subscribers: List[Callable[[dict], None]] = []
        self.seq = 0
        self.shard = shard
        #: Execution-phase tag injected into every emitted event while
        #: set (optional field — schema v1 allows extras).  The
        #: sampling tier flips it between ``"fast-forward"`` and
        #: ``"detailed"`` so heartbeat consumers can tell which tier a
        #: sampled run is currently in.
        self.phase: Optional[str] = None
        self.heartbeat_every = max(1, int(heartbeat_every))
        self._now = _now
        self._t0 = _now()
        self.closed = False

    # -- construction ------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str,
        *,
        heartbeat_every: int = DEFAULT_HEARTBEAT_EVERY,
        shard: Optional[int] = None,
    ) -> "EventStream":
        """Open a stream onto a file path (``"-"`` = stdout).

        File sinks opened here are closed by :meth:`close`; stdout is
        not.
        """
        if path == "-":
            return cls(sys.stdout, heartbeat_every=heartbeat_every,
                       shard=shard)
        sink = open(path, "w", encoding="utf-8")
        stream = cls(sink, heartbeat_every=heartbeat_every, shard=shard)
        stream._own_sink = True
        return stream

    # -- emission ----------------------------------------------------------

    def emit(self, type_: str, **fields) -> dict:
        """Emit one event; returns the completed event dict."""
        event: Dict[str, object] = {
            "v": EVENT_SCHEMA_VERSION,
            "seq": self.seq,
            "t": round(self._now() - self._t0, 6),
            "type": type_,
        }
        if self.shard is not None:
            event["shard"] = self.shard
        if self.phase is not None:
            event["phase"] = self.phase
        event.update(fields)
        self.seq += 1
        self._deliver(event)
        return event

    def emit_raw(self, event: dict, *, shard: Optional[int] = None) -> dict:
        """Re-emit an already-built event (shard merge path).

        The event keeps its own ``t`` (shard-local clock) and payload;
        ``seq`` is reassigned so the merged stream stays monotonic, and
        ``shard`` tags the origin when given.
        """
        event = dict(event)
        event["seq"] = self.seq
        if shard is not None:
            event["shard"] = shard
        self.seq += 1
        self._deliver(event)
        return event

    def _deliver(self, event: dict) -> None:
        if self._sink is not None:
            self._sink.write(json.dumps(event, sort_keys=True) + "\n")
            flush = getattr(self._sink, "flush", None)
            if flush is not None:
                flush()
        else:
            self.events.append(event)
        for subscriber in self.subscribers:
            subscriber(event)

    def subscribe(self, fn: Callable[[dict], None]) -> None:
        """Attach a callable invoked with every emitted event dict."""
        self.subscribers.append(fn)

    def close(self) -> None:
        """Flush and close an owned file sink (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for subscriber in self.subscribers:
            close = getattr(subscriber, "close", None)
            if close is not None:
                close()
        if self._own_sink and self._sink is not None:
            self._sink.close()

    def __len__(self) -> int:
        return self.seq


# -- validation -------------------------------------------------------------


def validate_event(event: dict) -> None:
    """Raise ``ValueError`` unless ``event`` conforms to the schema."""
    if not isinstance(event, dict):
        raise ValueError(f"event is not an object: {event!r}")
    for field in ENVELOPE_FIELDS:
        if field not in event:
            raise ValueError(f"event missing envelope field {field!r}: "
                             f"{event!r}")
    if event["v"] != EVENT_SCHEMA_VERSION:
        raise ValueError(f"unsupported event schema version {event['v']!r}")
    type_ = event["type"]
    required = EVENT_TYPES.get(type_)
    if required is None:
        raise ValueError(f"unknown event type {type_!r}")
    missing = [f for f in required if f not in event]
    if missing:
        raise ValueError(f"{type_} event missing fields {missing}: {event!r}")
    if not isinstance(event["seq"], int) or event["seq"] < 0:
        raise ValueError(f"bad seq in {event!r}")


def validate_stream_text(text: str) -> List[dict]:
    """Parse and validate an NDJSON stream; returns the event dicts.

    Checks per-line JSON, per-event schema and stream-monotonic
    ``seq``.  Blank lines are ignored (a convenience for files under
    concatenation).
    """
    events: List[dict] = []
    last_seq = -1
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: not JSON ({exc})") from exc
        validate_event(event)
        if event["seq"] <= last_seq:
            raise ValueError(
                f"line {lineno}: seq {event['seq']} not monotonic "
                f"(previous {last_seq})"
            )
        last_seq = event["seq"]
        events.append(event)
    return events


# -- shard merge ------------------------------------------------------------


def merge_shard_events(
    stream: EventStream, shard_event_lists: Iterable[List[dict]]
) -> int:
    """Replay buffered per-shard events through the coordinator stream.

    Events keep their shard-local payload and clock; each is tagged
    with its shard index and re-sequenced into the merged stream.
    Returns the number of events merged.
    """
    merged = 0
    for shard, events in enumerate(shard_event_lists):
        for event in events or ():
            shard_tag = event.get("shard", shard)
            stream.emit_raw(event, shard=shard_tag)
            merged += 1
    return merged


# -- stream summaries (kahrisma report) -------------------------------------


def looks_like_event_stream(text: str) -> bool:
    """Heuristic: is this file an NDJSON event stream (vs a report)?

    A telemetry run report is one indented JSON document; an event
    stream's first line is a complete JSON object with a ``type``
    field from the event schema.
    """
    first = text.lstrip().split("\n", 1)[0]
    try:
        doc = json.loads(first)
    except ValueError:
        return False
    return isinstance(doc, dict) and doc.get("type") in EVENT_TYPES


def summarize_events(events: Iterable[dict]) -> dict:
    """Fold an event stream into the ``kahrisma report`` summary."""
    counts: Dict[str, int] = {}
    shards: Dict[object, int] = {}
    heartbeats: List[dict] = []
    syscalls: Dict[str, int] = {}
    run_start: Optional[dict] = None
    run_end: Optional[dict] = None
    traps: List[dict] = []
    for event in events:
        type_ = event.get("type", "?")
        counts[type_] = counts.get(type_, 0) + 1
        if "shard" in event:
            shards[event["shard"]] = shards.get(event["shard"], 0) + 1
        if type_ == "heartbeat":
            heartbeats.append(event)
        elif type_ == "run-start" and run_start is None:
            run_start = event
        elif type_ == "run-end":
            run_end = event
        elif type_ == "syscall":
            name = str(event.get("name", event.get("ident", "?")))
            syscalls[name] = syscalls.get(name, 0) + 1
        elif type_ == "trap":
            traps.append(event)
    summary: Dict[str, object] = {
        "schema": EVENT_SCHEMA,
        "schema_version": EVENT_SCHEMA_VERSION,
        "events": sum(counts.values()),
        "by_type": dict(sorted(counts.items())),
        "shards": dict(sorted(shards.items(), key=lambda kv: str(kv[0]))),
        "syscalls_by_name": dict(sorted(syscalls.items())),
        "traps": traps,
    }
    if run_start is not None:
        for key in ("workload", "engine", "model"):
            summary[key] = run_start.get(key)
    if run_end is not None:
        summary["instructions"] = run_end.get("instructions")
        summary["exit_code"] = run_end.get("exit_code")
        summary["elapsed_seconds"] = run_end.get("elapsed_seconds")
        summary["mips"] = run_end.get("mips")
        summary["halted"] = run_end.get("halted")
    if heartbeats:
        instr = [int(h.get("instructions", 0)) for h in heartbeats]
        gaps = [b - a for a, b in zip(instr, instr[1:]) if b >= a]
        mips = [float(h.get("mips") or 0.0) for h in heartbeats]
        summary["heartbeats"] = {
            "count": len(heartbeats),
            "first_instructions": instr[0],
            "last_instructions": instr[-1],
            "mean_interval_instructions": (
                round(sum(gaps) / len(gaps), 1) if gaps else None
            ),
            "min_mips": round(min(mips), 3),
            "max_mips": round(max(mips), 3),
        }
    return summary


def render_event_summary(summary: dict) -> str:
    """Render :func:`summarize_events` output as text tables."""
    lines = [
        f"event stream schema v{summary.get('schema_version', '?')}  "
        + "  ".join(
            f"{k}={summary[k]}"
            for k in ("workload", "engine", "model")
            if summary.get(k)
        )
    ]
    lines.append("")
    lines.append("== events ==")
    for type_, n in summary.get("by_type", {}).items():
        lines.append(f"{type_:<16} {n:>8}")
    lines.append(f"{'total':<16} {summary.get('events', 0):>8}")
    hb = summary.get("heartbeats")
    if hb:
        lines.append("")
        lines.append("== heartbeats ==")
        lines.append(f"count                 {hb['count']}")
        lines.append(f"instructions          {hb['first_instructions']} "
                     f"-> {hb['last_instructions']}")
        if hb.get("mean_interval_instructions") is not None:
            lines.append(f"mean interval         "
                         f"{hb['mean_interval_instructions']} instructions")
        lines.append(f"mips                  {hb['min_mips']} "
                     f"-> {hb['max_mips']}")
    shards = summary.get("shards")
    if shards:
        lines.append("")
        lines.append("== shards ==")
        for shard, n in shards.items():
            lines.append(f"shard {shard:<10} {n:>8} events")
    syscalls = summary.get("syscalls_by_name")
    if syscalls:
        lines.append("")
        lines.append("== syscalls ==")
        for name, n in syscalls.items():
            lines.append(f"{name:<16} {n:>8}")
    if summary.get("instructions") is not None:
        lines.append("")
        lines.append("== run ==")
        lines.append(f"instructions          {summary['instructions']}")
        lines.append(f"exit code             {summary.get('exit_code')}")
        lines.append(f"elapsed               "
                     f"{summary.get('elapsed_seconds')}s")
        lines.append(f"mips                  {summary.get('mips')}")
        lines.append(f"halted                {summary.get('halted')}")
    for trap in summary.get("traps", []):
        lines.append("")
        lines.append(f"TRAP at ip={trap.get('ip')}: {trap.get('error')}")
    return "\n".join(lines)


# -- Prometheus text exposition ---------------------------------------------


def prometheus_lines(
    metrics: Dict[str, object], *, prefix: str = "kahrisma_"
) -> List[str]:
    """Render a flat metric dict as Prometheus text-exposition lines.

    Metric names swap dots for underscores under ``prefix``; only
    numeric values are exported (strings like ``sim.engine`` become a
    label on the synthetic ``kahrisma_run_info`` gauge).
    """
    lines: List[str] = []
    labels: List[str] = []
    for key in sorted(metrics):
        value = metrics[key]
        name = prefix + key.replace(".", "_").replace("-", "_")
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, (int, float)):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {value}")
        elif isinstance(value, str):
            escaped = value.replace("\\", "\\\\").replace('"', '\\"')
            labels.append(
                f'{key.replace(".", "_").replace("-", "_")}="{escaped}"'
            )
    info = prefix + "run_info"
    lines.append(f"# TYPE {info} gauge")
    lines.append(f"{info}{{{','.join(labels)}}} 1" if labels else f"{info} 1")
    return lines


def write_prometheus(
    metrics: Dict[str, object], path: str, *, prefix: str = "kahrisma_"
) -> None:
    """Atomically write a Prometheus text-exposition snapshot file.

    Written tmp-then-rename so a scraper (node_exporter textfile
    collector style) never reads a torn file.
    """
    import os

    text = "\n".join(prometheus_lines(metrics, prefix=prefix)) + "\n"
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)


class PrometheusSnapshot:
    """Event-stream subscriber keeping a Prometheus snapshot file fresh.

    Rewrites ``path`` from each heartbeat's ``counters`` payload, so a
    scraper sees run progress while the simulation is still executing.
    The caller should write one final snapshot from the complete
    post-run metrics (heartbeats stop before the run's last slice).
    """

    def __init__(self, path: str, *, prefix: str = "kahrisma_") -> None:
        self.path = path
        self.prefix = prefix
        self.writes = 0

    def __call__(self, event: dict) -> None:
        if event.get("type") != "heartbeat":
            return
        counters = event.get("counters") or {}
        try:
            write_prometheus(counters, self.path, prefix=self.prefix)
        except OSError:
            return  # a failed snapshot must never kill the run
        self.writes += 1


# -- live progress ----------------------------------------------------------


class LiveProgress:
    """Event-stream subscriber rendering a one-line terminal progress bar.

    Rewrites one ``\\r``-terminated line per heartbeat on ``out``
    (default stderr, so it never pollutes piped event/metric output)
    and finishes it with the run-end summary.
    """

    def __init__(self, out=None, *, label: str = "") -> None:
        self.out = out if out is not None else sys.stderr
        self.label = label
        self._width = 0
        self._open_line = False

    def _write(self, text: str) -> None:
        pad = max(0, self._width - len(text))
        self.out.write("\r" + text + " " * pad)
        flush = getattr(self.out, "flush", None)
        if flush is not None:
            flush()
        self._width = len(text)
        self._open_line = True

    def __call__(self, event: dict) -> None:
        type_ = event.get("type")
        prefix = f"{self.label}: " if self.label else ""
        if type_ == "heartbeat":
            cycles = event.get("cycles")
            extra = f"  {cycles} cycles" if cycles is not None else ""
            shard = event.get("shard")
            tag = f" [shard {shard}]" if shard is not None else ""
            self._write(
                f"{prefix}{event.get('instructions', 0):,} instructions  "
                f"{float(event.get('mips') or 0.0):.2f} MIPS{extra}{tag}"
            )
        elif type_ == "run-end":
            self._write(
                f"{prefix}{event.get('instructions', 0):,} instructions  "
                f"exit {event.get('exit_code')}  "
                f"{float(event.get('mips') or 0.0):.2f} MIPS  "
                f"{float(event.get('elapsed_seconds') or 0.0):.2f}s"
            )
            self.out.write("\n")
            self._open_line = False
        elif type_ == "trap":
            self.close()
            self.out.write(f"{prefix}TRAP: {event.get('error')}\n")

    def close(self) -> None:
        if self._open_line:
            self.out.write("\n")
            self._open_line = False
