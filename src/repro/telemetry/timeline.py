"""Chrome ``trace_event`` timeline export.

Records per-operation issue intervals from the cycle models and
instant markers from the interpreter, and serialises them in the
Chrome Trace Event JSON format — the file loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.

The mapping from simulation to trace concepts:

* one *process* is the simulated core;
* one *thread* (track) per VLIW slot — under the DOE model each
  operation's start cycle is its drifted issue cycle, so the slot
  tracks make the paper's slot drift (Section VI-C) directly visible;
* timestamps are approximated cycles exported as microseconds (the
  unit Chrome expects); 1 cycle == 1 µs on the rendered timeline.

Events are buffered in memory and capped (:attr:`max_events`): a full
cjpeg run issues tens of millions of operations, far more than a trace
viewer can load.  Once the cap is hit further events are counted in
:attr:`dropped` and a final instant marker records the truncation.
"""

from __future__ import annotations

import json
from typing import Dict, IO, List, Optional, Union


class TimelineRecorder:
    """Collects trace events; attach via ``Interpreter(timeline=...)``."""

    def __init__(self, max_events: int = 1_000_000) -> None:
        self.max_events = max_events
        self.events: List[dict] = []
        self.dropped = 0
        self._slots_seen: set = set()

    # -- recording (called per executed operation — keep tiny) ------------

    def op(self, slot: int, start: int, completion: int,
           name: str, addr: int) -> None:
        """One executed operation: a complete ("X") event on its slot."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self._slots_seen.add(slot)
        self.events.append({
            "name": name,
            "cat": "op",
            "ph": "X",
            "ts": start,
            "dur": max(completion - start, 0),
            "pid": 0,
            "tid": slot,
            "args": {"addr": f"{addr:#x}"},
        })

    def instant(self, name: str, ts: int,
                args: Optional[Dict[str, object]] = None) -> None:
        """A zero-duration marker (e.g. an SMC invalidation)."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append({
            "name": name,
            "cat": "sim",
            "ph": "i",
            "s": "g",
            "ts": ts,
            "pid": 0,
            "tid": 0,
            "args": args or {},
        })

    # -- serialisation -----------------------------------------------------

    def to_dict(self, process_name: str = "kahrisma-sim") -> dict:
        """The complete Chrome trace document."""
        metadata: List[dict] = [{
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }]
        for slot in sorted(self._slots_seen):
            metadata.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": slot,
                "args": {"name": f"slot {slot}"},
            })
            metadata.append({
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 0,
                "tid": slot,
                "args": {"sort_index": slot},
            })
        events = metadata + self.events
        if self.dropped:
            last_ts = self.events[-1]["ts"] if self.events else 0
            events.append({
                "name": f"timeline truncated ({self.dropped} events dropped)",
                "cat": "sim",
                "ph": "i",
                "s": "g",
                "ts": last_ts,
                "pid": 0,
                "tid": 0,
                "args": {"dropped": self.dropped},
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metadata": {
                "unit": "1 trace microsecond == 1 approximated cycle",
            },
        }

    def write(self, destination: Union[str, IO[str]],
              process_name: str = "kahrisma-sim") -> None:
        """Serialise to a path or an open text stream."""
        doc = self.to_dict(process_name)
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as f:
                json.dump(doc, f)
                f.write("\n")
        else:
            json.dump(doc, destination)
            destination.write("\n")

    def __len__(self) -> int:
        return len(self.events)
