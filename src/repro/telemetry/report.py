"""Run reports: machine-readable telemetry JSON and the table renderer.

A *run report* is the JSON document ``kahrisma run --metrics`` writes
and ``pipeline.run(collect_metrics=True)`` attaches to its
:class:`~repro.framework.pipeline.RunResult`.  It is a superset of the
rows in ``BENCH_table1.json``: flat metrics plus (optionally) the
profiler's hot-spot attribution.  ``kahrisma report`` renders one back
into the human-facing tables.
"""

from __future__ import annotations

import json
from typing import IO, Optional, Union

from .collect import SCHEMA_NAME, SCHEMA_VERSION, collect_run_metrics


def build_run_report(
    interp=None,
    model=None,
    *,
    stats=None,
    profiler=None,
    debug_info=None,
    engine: Optional[str] = None,
    model_name: Optional[str] = None,
    workload: Optional[str] = None,
    extra_metrics=None,
    top: int = 20,
    sampling=None,
) -> dict:
    """Assemble the telemetry document for one finished run.

    ``sampling`` (a :class:`repro.framework.sampling.SamplingResult`)
    adds the schema-v2 sampled-run fields: top-level
    ``cycles_estimated``/``cycles_ci95`` and the ``sampling`` block
    (U/k/W/seed, intervals measured, sampled fractions).
    """
    metrics = collect_run_metrics(
        interp, model, stats=stats, extra=extra_metrics
    )
    if engine is None and interp is not None:
        engine = interp.engine
    if model_name is None and model is None and interp is not None:
        model = interp.cycle_model
    if model_name is None and model is not None:
        inner = getattr(model, "inner", model)
        model_name = str(
            getattr(inner, "name", type(inner).__name__)
        ).lower()
    doc = {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "engine": engine,
        "model": model_name,
        "workload": workload,
        "metrics": metrics,
    }
    if sampling is not None:
        doc["cycles_estimated"] = sampling.cycles_estimated
        doc["cycles_ci95"] = sampling.cycles_ci95
        doc["sampling"] = sampling.block()
    if profiler is not None:
        doc["profile"] = profiler.report(debug_info, top=top)
    return doc


def write_report(doc: dict, destination: Union[str, IO[str]]) -> None:
    """Write a run report as indented JSON to a path or stream."""
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
    else:
        json.dump(doc, destination, indent=2, sort_keys=True)
        destination.write("\n")


def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_report(doc: dict, top: int = 10) -> str:
    """Render a run report as the ``kahrisma report`` tables."""
    lines = []
    header = [f"telemetry schema v{doc.get('schema_version', '?')}"]
    for key in ("workload", "engine", "model"):
        value = doc.get(key)
        if value:
            header.append(f"{key}={value}")
    lines.append("  ".join(header))

    sampling = doc.get("sampling")
    if sampling:
        est = doc.get("cycles_estimated")
        ci = doc.get("cycles_ci95")
        lines.append("")
        lines.append(
            f"== sampled cycle estimate =="
        )
        lines.append(
            f"cycles {est if est is not None else '?'}"
            + (f" +/- {ci:.0f} (95% CI)" if ci is not None else "")
        )
        lines.append(
            f"U={sampling.get('interval')} k={sampling.get('period')} "
            f"W={sampling.get('warmup')} seed={sampling.get('seed')}  "
            f"{sampling.get('intervals_measured')} intervals, "
            f"{sampling.get('detailed_fraction', 0) * 100:.2f}% detailed"
        )

    metrics = doc.get("metrics", {})
    if metrics:
        lines.append("")
        lines.append("== metrics ==")
        width = max(len(name) for name in metrics)
        for name in sorted(metrics):
            lines.append(f"{name:<{width}}  {_format_value(metrics[name])}")

    profile = doc.get("profile")
    if profile:
        lines.append("")
        lines.append(
            f"== hot functions (mode={profile.get('mode', '?')}, "
            f"{profile.get('total_instructions', 0)} instructions) =="
        )
        lines.append(
            f"{'function':<28} {'instr':>12} {'%':>7} "
            f"{'cycles':>12} {'L1 miss':>9} {'smc':>5}"
        )
        for row in profile.get("functions", [])[:top]:
            lines.append(
                f"{row['name']:<28} {row['instructions']:>12} "
                f"{row['fraction'] * 100:>6.2f}% "
                f"{row['cycles']:>12} {row['l1_misses']:>9} "
                f"{row['smc']:>5}"
            )
        blocks = profile.get("blocks") or []
        if blocks:
            lines.append("")
            lines.append("== hot superblocks ==")
            lines.append(
                f"{'entry':<12} {'function':<24} {'execs':>10} "
                f"{'len':>4} {'instr':>12}"
            )
            for row in blocks[:top]:
                lines.append(
                    f"{row['entry']:#010x}  {row['function']:<24} "
                    f"{row['executions']:>10} {row['length']:>4} "
                    f"{row['instructions']:>12}"
                )
    return "\n".join(lines)
