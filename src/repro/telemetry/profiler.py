"""Hot-spot profiler: attribute simulator work to guest code.

The profiler answers "where do the executed instructions, approximated
cycles and cache misses come from?" in terms of the *guest* program:
per PC, per translated basic block and — through
:class:`~repro.sim.debuginfo.DebugInfo` symbolization — per function.

Two recording modes trade precision against overhead:

* ``exact`` — every executed instruction increments a per-PC counter.
  The interpreter routes execution through its featureful loop, so the
  superblock fast path is bypassed; use this with the per-instruction
  engines or when per-PC cycle attribution matters.
* ``block`` — the superblock engine bumps one counter per executed
  *plan*; per-PC counts are reconstructed at report time by expanding
  each plan's instruction list (exact for instruction counts, since a
  block executes all of its instructions; mid-block self-modifying-code
  aborts record the committed prefix).  The translated fast path keeps
  running at full speed.

Cycle and cache-miss attribution piggybacks on the cycle model:
:meth:`HotspotProfiler.wrap_model` returns a proxy whose ``observe``
charges the per-instruction deltas of ``model.cycles`` and of the L1
miss counter to the observed PC.  The proxy deliberately exposes
``observe_block = None`` so the superblock engine falls back to
per-instruction observation — cycle attribution is inherently
per-instruction work.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class _ProfilingModel:
    """Cycle-model proxy charging per-instruction deltas to PCs."""

    #: Force the per-instruction observing path in the superblock
    #: engine (see :class:`repro.cycles.base.CycleModel`): both the
    #: block-observe hook and cycle fusion would bypass the per-PC
    #: delta charging that is this proxy's whole point.
    observe_block = None
    block_compiler = None

    def __init__(self, inner, profiler: "HotspotProfiler") -> None:
        self.inner = inner
        self.profiler = profiler
        # L1 miss counter of the model's memory hierarchy, if any.
        from ..cycles.memmodel import find_cache

        self._l1 = find_cache(getattr(inner, "memory", None), "L1")

    def observe(self, dec, regs) -> None:
        inner = self.inner
        l1 = self._l1
        cycles_before = inner.cycles
        misses_before = l1.misses if l1 is not None else 0
        inner.observe(dec, regs)
        profiler = self.profiler
        addr = dec.addr
        delta = inner.cycles - cycles_before
        if delta:
            cyc = profiler.pc_cycles
            cyc[addr] = cyc.get(addr, 0) + delta
        if l1 is not None:
            delta = l1.misses - misses_before
            if delta:
                mis = profiler.pc_l1_misses
                mis[addr] = mis.get(addr, 0) + delta

    def __getattr__(self, name):
        return getattr(self.inner, name)


class HotspotProfiler:
    """Accumulates guest-code attribution for one (or more) runs."""

    MODES = ("exact", "block")

    def __init__(self, mode: str = "exact") -> None:
        if mode not in self.MODES:
            raise ValueError(
                f"unknown profiler mode {mode!r}; expected one of "
                f"{self.MODES}"
            )
        self.mode = mode
        #: PC → instructions executed (exact mode and block tails).
        self.pc_instructions: Dict[int, int] = {}
        #: PC → approximated cycles charged by the model proxy.
        self.pc_cycles: Dict[int, int] = {}
        #: PC → L1 misses charged by the model proxy.
        self.pc_l1_misses: Dict[int, int] = {}
        #: PC → self-modifying-code invalidations hitting that address.
        self.pc_smc: Dict[int, int] = {}
        self.smc_invalidations = 0
        #: SuperblockPlan → completed executions (block mode).
        self._plan_counts: Dict[object, int] = {}
        #: (SuperblockPlan, stop_ip) of mid-block aborts (rare).
        self._plan_prefixes: List[Tuple[object, int]] = []

    # -- recording (called from hot paths; keep tiny) ---------------------

    def record_pc(self, addr: int) -> None:
        counts = self.pc_instructions
        counts[addr] = counts.get(addr, 0) + 1

    def record_block(self, plan) -> None:
        counts = self._plan_counts
        counts[plan] = counts.get(plan, 0) + 1

    def record_block_prefix(self, plan, stop_ip: int) -> None:
        self._plan_prefixes.append((plan, stop_ip))

    def record_smc(self, addr: int) -> None:
        self.smc_invalidations += 1
        counts = self.pc_smc
        counts[addr] = counts.get(addr, 0) + 1

    def wrap_model(self, model) -> _ProfilingModel:
        """Proxy ``model`` so cycles/misses are attributed per PC."""
        return _ProfilingModel(model, self)

    # -- aggregation -------------------------------------------------------

    def instruction_counts(self) -> Dict[int, int]:
        """PC → executed instructions, merging exact and block data."""
        counts = dict(self.pc_instructions)
        for plan, n in self._plan_counts.items():
            for dec in plan.decs:
                addr = dec.addr
                counts[addr] = counts.get(addr, 0) + n
        for plan, stop_ip in self._plan_prefixes:
            for dec in plan.decs:
                if dec.addr >= stop_ip:
                    break
                counts[dec.addr] = counts.get(dec.addr, 0) + 1
        return counts

    def block_counts(self) -> Dict[Tuple[int, int], Dict[str, int]]:
        """(isa_id, entry_ip) → block-level execution summary."""
        blocks: Dict[Tuple[int, int], Dict[str, int]] = {}
        for plan, n in self._plan_counts.items():
            key = (plan.isa_id, plan.entry_ip)
            row = blocks.get(key)
            if row is None:
                blocks[key] = {
                    "executions": n,
                    "instructions": n * plan.n_instr,
                    "length": plan.n_instr,
                }
            else:
                row["executions"] += n
                row["instructions"] += n * plan.n_instr
        return blocks

    @property
    def total_instructions(self) -> int:
        return sum(self.instruction_counts().values())

    # -- reporting ---------------------------------------------------------

    def report(self, debug_info=None, top: int = 20) -> dict:
        """Aggregate everything into a JSON-ready profile document.

        ``debug_info`` (a :class:`~repro.sim.debuginfo.DebugInfo`)
        symbolizes PCs into function names; without it all samples land
        in one ``"?"`` bucket per address range.
        """
        counts = self.instruction_counts()
        total = sum(counts.values())

        def fn_name(addr: int) -> str:
            if debug_info is not None:
                fn = debug_info.function_at(addr)
                if fn is not None:
                    return fn.name
            return "?"

        functions: Dict[str, Dict[str, float]] = {}
        for addr, n in counts.items():
            name = fn_name(addr)
            row = functions.setdefault(
                name,
                {"instructions": 0, "cycles": 0, "l1_misses": 0, "smc": 0},
            )
            row["instructions"] += n
        for source, key in (
            (self.pc_cycles, "cycles"),
            (self.pc_l1_misses, "l1_misses"),
            (self.pc_smc, "smc"),
        ):
            for addr, n in source.items():
                name = fn_name(addr)
                row = functions.setdefault(
                    name,
                    {"instructions": 0, "cycles": 0,
                     "l1_misses": 0, "smc": 0},
                )
                row[key] += n

        fn_rows = [
            {
                "name": name,
                "fraction": (row["instructions"] / total) if total else 0.0,
                **row,
            }
            for name, row in functions.items()
        ]
        fn_rows.sort(key=lambda r: (-r["instructions"], r["name"]))

        pc_rows = [
            {
                "addr": addr,
                "instructions": n,
                "function": fn_name(addr),
                "cycles": self.pc_cycles.get(addr, 0),
                "l1_misses": self.pc_l1_misses.get(addr, 0),
            }
            for addr, n in sorted(
                counts.items(), key=lambda item: (-item[1], item[0])
            )[:top]
        ]

        block_rows = [
            {
                "isa": isa_id,
                "entry": entry,
                "function": fn_name(entry),
                **row,
            }
            for (isa_id, entry), row in sorted(
                self.block_counts().items(),
                key=lambda item: -item[1]["instructions"],
            )[:top]
        ]

        return {
            "mode": self.mode,
            "total_instructions": total,
            "smc_invalidations": self.smc_invalidations,
            "functions": fn_rows,
            "pcs": pc_rows,
            "blocks": block_rows,
        }
