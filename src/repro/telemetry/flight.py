"""Flight recorder and cross-engine divergence forensics.

The flight recorder is the crash-context half of the observability
plane: a pair of bounded ring buffers capturing the *recent past* of a
run — block entries and SMC aborts on the superblock/AOT fast paths,
per-instruction IPs on the interactive engines, plus rare-event marks
(syscalls, ISA switches, SMC invalidations).  When a run traps, the
interpreter attaches the recorder's snapshot to the raised
:class:`~repro.sim.errors.SimulationError` and (optionally) dumps it to
a JSON file, so a crash deep inside a translated plan finally has a
trail of the blocks that led up to it.

Overhead discipline: on the superblock/AOT engines the recorder rides
the existing block-granularity observer seam
(:attr:`repro.sim.superblock.SuperblockEngine.profiler`) and the AOT
dispatch loop — a deque append per executed *block/segment*, which is
why the <5% budget holds (``tools/telemetry_overhead.py`` gates it in
CI).  The interactive engines (nocache/cache/predict) record per
instruction through the featureful loop instead; that is inherently
slower and is priced as such in the docs.

:func:`run_lockstep` is the forensic layer the determinism gate uses:
it runs the same build under two engine configurations in bounded
slices, compares architectural state at every boundary, and on a
mismatch replays the diverging slice instruction-by-instruction from
the last agreeing boundary to name the **first divergent PC**, the
register/memory delta at that point, and the last-N blocks both
engines executed.  A fault can be injected mid-run (``inject=``) to
force a divergence — that is how CI proves the forensics pipeline
works end-to-end.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, List, Optional

__all__ = [
    "FlightRecorder",
    "run_lockstep",
    "format_forensics",
]


class FlightRecorder:
    """Bounded ring buffers of recent execution context.

    ``capacity`` bounds the block/instruction trail, ``events_capacity``
    the rare-event marks.  The recorder is profiler-shaped on purpose:
    :meth:`record_block` / :meth:`record_block_prefix` match the
    :class:`~repro.telemetry.profiler.HotspotProfiler` observer seam of
    the superblock engine, so both can attach at once (fan-out).

    Trail entries are tuples ``(kind, isa_id, ip, n)``:

    * ``("block", isa, entry_ip, n_instr)`` — completed superblock plan
    * ``("abort", isa, entry_ip, stop_ip)`` — plan aborted by SMC at
      ``stop_ip``
    * ``("dispatch", isa, entry_ip, executed)`` — one AOT table
      dispatch segment (chained covered blocks)
    * ``("instr", isa, ip, 1)`` — one instruction (interactive loops)

    Marks are dicts with a ``kind`` of ``syscall`` / ``isa-switch`` /
    ``smc`` / ``trap``.
    """

    def __init__(self, capacity: int = 512, events_capacity: int = 128) -> None:
        self.capacity = capacity
        self.events_capacity = events_capacity
        self.blocks: deque = deque(maxlen=capacity)
        self.marks: deque = deque(maxlen=events_capacity)
        #: When set, a trapping run dumps :meth:`snapshot` JSON here.
        self.dump_path: Optional[str] = None

    # -- superblock observer seam (HotspotProfiler-compatible) ------------

    def record_block(self, plan) -> None:
        self.blocks.append(("block", plan.isa_id, plan.entry_ip, plan.n_instr))

    def record_block_prefix(self, plan, stop_ip: int) -> None:
        self.blocks.append(("abort", plan.isa_id, plan.entry_ip, stop_ip))

    # -- engine/interpreter hooks -----------------------------------------

    def record_dispatch(self, isa_id: int, entry_ip: int, executed: int) -> None:
        """One AOT dense-table dispatch segment (≥1 chained blocks)."""
        if executed:
            self.blocks.append(("dispatch", isa_id, entry_ip, executed))

    def record_instr(self, isa_id: int, ip: int) -> None:
        """One instruction (interactive-loop granularity)."""
        self.blocks.append(("instr", isa_id, ip, 1))

    def record_syscall(self, ip: int, ident: int, name: str) -> None:
        self.marks.append(
            {"kind": "syscall", "ip": ip, "ident": ident, "name": name}
        )

    def record_isa_switch(self, ip: int, from_isa: int, to_isa: int) -> None:
        self.marks.append(
            {"kind": "isa-switch", "ip": ip, "from_isa": from_isa,
             "to_isa": to_isa}
        )

    def record_smc(self, addr: int, length: int = 0) -> None:
        self.marks.append({"kind": "smc", "addr": addr, "length": length})

    def record_trap(self, ip: int, error: str) -> None:
        self.marks.append({"kind": "trap", "ip": ip, "error": error})

    # -- output ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able dump of both ring buffers (oldest first)."""
        return {
            "capacity": self.capacity,
            "blocks": [list(entry) for entry in self.blocks],
            "marks": list(self.marks),
        }

    def dump(self, path: Optional[str] = None) -> Optional[str]:
        """Write :meth:`snapshot` as JSON; returns the path written."""
        path = path or self.dump_path
        if path is None:
            return None
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def format(self, debug_info=None, last: int = 16) -> str:
        """Human-readable trail of the last ``last`` entries + marks."""
        lines = [f"flight recorder: last {min(last, len(self.blocks))} of "
                 f"{len(self.blocks)} recorded entries "
                 f"(capacity {self.capacity})"]
        for kind, isa, ip, n in list(self.blocks)[-last:]:
            where = _locate(debug_info, ip)
            if kind == "block":
                lines.append(f"  block    isa={isa} entry={ip:#x}"
                             f" n={n}{where}")
            elif kind == "abort":
                lines.append(f"  abort    isa={isa} entry={ip:#x}"
                             f" smc-stop={n:#x}{where}")
            elif kind == "dispatch":
                lines.append(f"  dispatch isa={isa} entry={ip:#x}"
                             f" executed={n}{where}")
            else:
                lines.append(f"  instr    isa={isa} ip={ip:#x}{where}")
        if self.marks:
            lines.append(f"marks (last {len(self.marks)}):")
            for mark in self.marks:
                kind = mark["kind"]
                if kind == "syscall":
                    lines.append(f"  syscall   ip={mark['ip']:#x} "
                                 f"{mark['name']}")
                elif kind == "isa-switch":
                    lines.append(f"  isa-switch ip={mark['ip']:#x} "
                                 f"{mark['from_isa']}->{mark['to_isa']}")
                elif kind == "smc":
                    lines.append(f"  smc       addr={mark['addr']:#x} "
                                 f"length={mark['length']}")
                else:
                    lines.append(f"  trap      ip={mark['ip']:#x} "
                                 f"{mark.get('error', '')}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.blocks)


def _locate(debug_info, ip: int) -> str:
    """`` (function)`` suffix when debug info can name the address."""
    if debug_info is None:
        return ""
    try:
        fn = debug_info.function_at(ip)
    except Exception:
        return ""
    return f" ({fn.name})" if fn is not None else ""


class _BlockFanout:
    """Fan one superblock observer seam out to several targets.

    Used when both a block-mode profiler and a flight recorder want the
    engine's ``profiler`` slot.
    """

    def __init__(self, *targets) -> None:
        self.targets = [t for t in targets if t is not None]

    def record_block(self, plan) -> None:
        for target in self.targets:
            target.record_block(plan)

    def record_block_prefix(self, plan, stop_ip: int) -> None:
        for target in self.targets:
            target.record_block_prefix(plan, stop_ip)


# -- lockstep divergence forensics ------------------------------------------


def _side_interpreter(built, program, config, flight_capacity):
    """Build one lockstep side: interpreter + flight recorder."""
    from ..sim.interpreter import Interpreter

    engine = config.get("engine", "predict")
    model = config.get("cycle_model")
    aot_module = config.get("aot_module")
    if engine == "aot" and aot_module is None:
        from ..sim import aot

        aot_module = aot.prepare(
            built.elf, built.arch, model=model,
            input_data=config.get("input_data", b""),
        )
    flight = FlightRecorder(capacity=flight_capacity)
    interp = Interpreter(
        program.state,
        cycle_model=model,
        engine=engine,
        fuse_cycles=config.get("fuse_cycles", True),
        aot_module=aot_module,
        max_block_len=config.get("max_block_len"),
        flight=flight,
    )
    return interp, flight


def _arch_fingerprint(state) -> tuple:
    return (state.ip, state.isa_id, state.halted, tuple(state.regs))


def _register_delta(arch, regs_a, regs_b) -> List[dict]:
    registers = arch.register_file.registers
    delta = []
    for index, (a, b) in enumerate(zip(regs_a, regs_b)):
        if a != b:
            name = (
                registers[index].name if index < len(registers) else None
            )
            delta.append({"reg": index, "name": name, "a": a, "b": b})
    return delta


def _maybe_inject(interp, inject, injected: List[bool], total: int,
                  budget: int) -> int:
    """Run up to ``budget`` instructions on the fault-injected side.

    When the injection point falls inside this slice, the run is split
    around it and the register corruption applied at the exact
    instruction boundary.  Returns instructions executed.
    """
    if inject is None or injected[0]:
        interp.run(max_instructions=budget)
        return interp.stats.executed_instructions - total
    at = inject["at"]
    if total + budget <= at:
        interp.run(max_instructions=budget)
        return interp.stats.executed_instructions - total
    head = at - total
    if head > 0:
        interp.run(max_instructions=head)
    _apply_injection(interp.state, inject)
    injected[0] = True
    done = interp.stats.executed_instructions - total
    if done < budget and not interp.state.halted:
        interp.run(max_instructions=budget - done)
    return interp.stats.executed_instructions - total


def _apply_injection(state, inject) -> None:
    reg = inject["reg"]
    if isinstance(reg, str):
        reg = state.arch.register_file.by_name(reg).index
    state.regs[reg] ^= inject.get("xor", 1)


def run_lockstep(
    built,
    config_a: dict,
    config_b: dict,
    *,
    interval: int = 20_000,
    max_instructions: int = 50_000_000,
    flight_capacity: int = 256,
    input_data: bytes = b"",
    inject: Optional[dict] = None,
) -> Optional[dict]:
    """Run one build under two configurations and localize divergence.

    ``config_a`` / ``config_b`` are dicts: ``engine`` (any of the five
    engines), optional ``cycle_model`` (a *separate instance* per
    side), ``fuse_cycles``, ``max_block_len``, ``aot_module``,
    ``label``.  Both sides execute in ``interval``-instruction slices;
    after every slice the architectural states are compared (IP, ISA,
    halt flag, registers, and — once anything else disagrees or the run
    ends — the memory digest).

    ``inject={"at": N, "reg": name_or_index, "xor": mask}`` corrupts a
    register of side B at instruction boundary N — the forced-divergence
    mode the CI forensics self-test uses.

    Returns ``None`` when the sides agree to the end, else a forensic
    report dict (see :func:`format_forensics`):  the first divergent
    instruction index and PC (localized by per-instruction replay from
    the last agreeing boundary), the register delta, memory digests,
    and the recent-block trails of both engines.
    """
    from ..binutils.loader import load_executable
    from ..snapshot.capture import memory_digest, snapshot_run

    program_a = load_executable(built.elf, built.arch, input_data=input_data)
    program_b = load_executable(built.elf, built.arch, input_data=input_data)
    interp_a, flight_a = _side_interpreter(
        built, program_a, dict(config_a, input_data=input_data),
        flight_capacity,
    )
    interp_b, flight_b = _side_interpreter(
        built, program_b, dict(config_b, input_data=input_data),
        flight_capacity,
    )
    injected = [False]
    total_a = total_b = 0
    # Functional boundary snapshot of the last agreeing state (side A's
    # and side B's states are identical there by construction).
    boundary_a = snapshot_run(
        program_a.state, program_a.syscalls, stats=interp_a.stats
    )
    boundary_b = snapshot_run(
        program_b.state, program_b.syscalls, stats=interp_b.stats
    )
    boundary_instr = 0
    while total_a < max_instructions:
        budget = min(interval, max_instructions - total_a)
        interp_a.run(max_instructions=budget)
        executed_a = interp_a.stats.executed_instructions - total_a
        executed_b = _maybe_inject(
            interp_b, inject, injected, total_b, budget
        )
        total_a += executed_a
        total_b += executed_b
        state_a, state_b = program_a.state, program_b.state
        mismatch = (
            executed_a != executed_b
            or _arch_fingerprint(state_a) != _arch_fingerprint(state_b)
        )
        digest_a = digest_b = None
        if not mismatch:
            digest_a = memory_digest(state_a.mem)
            digest_b = memory_digest(state_b.mem)
            mismatch = digest_a != digest_b
        if mismatch:
            # Re-apply the injection during replay only when it landed
            # inside the diverging slice; an earlier injection is
            # already baked into both boundary snapshots.
            replay_inject = (
                inject
                if inject is not None and inject["at"] >= boundary_instr
                else None
            )
            local = _localize(
                built, boundary_a, boundary_b, boundary_instr,
                replay_inject,
            )
            if digest_a is None:
                digest_a = memory_digest(state_a.mem)
                digest_b = memory_digest(state_b.mem)
            report = {
                "engines": [
                    config_a.get("label", config_a.get("engine", "a")),
                    config_b.get("label", config_b.get("engine", "b")),
                ],
                "boundary_instruction": boundary_instr,
                "instructions_a": total_a,
                "instructions_b": total_b,
                "ip_a": state_a.ip,
                "ip_b": state_b.ip,
                "isa_a": state_a.isa_id,
                "isa_b": state_b.isa_id,
                "halted_a": state_a.halted,
                "halted_b": state_b.halted,
                "register_delta": _register_delta(
                    built.arch, state_a.regs, state_b.regs
                ),
                "memory_digest_a": digest_a,
                "memory_digest_b": digest_b,
                "recent_blocks_a": flight_a.snapshot(),
                "recent_blocks_b": flight_b.snapshot(),
            }
            if inject is not None:
                report["injected_fault"] = dict(inject)
            if local is not None:
                report.update(local)
            return report
        if state_a.halted and state_b.halted:
            return None
        if executed_a == 0 and executed_b == 0:
            return None  # wedged identically; nothing to compare
        boundary_a = snapshot_run(
            state_a, program_a.syscalls, stats=interp_a.stats
        )
        boundary_b = snapshot_run(
            state_b, program_b.syscalls, stats=interp_b.stats
        )
        boundary_instr = total_a
    return None


def _localize(built, boundary_a, boundary_b, boundary_instr,
              inject) -> Optional[dict]:
    """Replay the diverging slice per-instruction to the first bad step.

    Both sides restart from their last agreeing boundary snapshots and
    single-step under the reference ``predict`` engine (which the
    differential suite proves architecturally identical to every other
    engine); an injected fault is re-applied at its global instruction
    index, so injected divergences replay exactly.  An *engine-internal*
    bug that only manifests inside a translated plan may not reproduce
    under the reference replay — in that case the block trails and the
    boundary delta in the outer report are the forensic evidence, and
    this returns None.
    """
    from ..sim.interpreter import Interpreter
    from ..snapshot.capture import memory_digest, restore_run

    restored_a = restore_run(boundary_a, built.arch)
    restored_b = restore_run(boundary_b, built.arch)
    interp_a = Interpreter(restored_a.state, engine="predict")
    interp_b = Interpreter(restored_b.state, engine="predict")
    state_a, state_b = restored_a.state, restored_b.state
    steps = 0
    limit = 4 * 1024 * 1024  # replay guard; slices are far smaller
    while steps < limit:
        if _arch_fingerprint(state_a) != _arch_fingerprint(state_b):
            break
        if steps % 64 == 0 and (
            memory_digest(state_a.mem) != memory_digest(state_b.mem)
        ):
            break
        if state_a.halted and state_b.halted:
            return None
        pc_before = state_a.ip
        isa_before = state_a.isa_id
        if inject is not None and boundary_instr + steps == inject["at"]:
            _apply_injection(state_b, inject)
            continue
        interp_a.run(max_instructions=1)
        interp_b.run(max_instructions=1)
        steps += 1
    else:
        return None
    if steps == 0:
        # The boundary states themselves disagree (replay cannot step
        # back before the boundary); report the boundary as the locus.
        return {
            "first_divergent_instruction": boundary_instr,
            "first_divergent_pc": state_a.ip,
            "divergent_isa": state_a.isa_id,
            "replayed": True,
            "replay_register_delta": _register_delta(
                built.arch, state_a.regs, state_b.regs
            ),
        }
    return {
        "first_divergent_instruction": boundary_instr + steps,
        "first_divergent_pc": pc_before,
        "divergent_isa": isa_before,
        "replayed": True,
        "replay_register_delta": _register_delta(
            built.arch, state_a.regs, state_b.regs
        ),
        "replay_ip_a": state_a.ip,
        "replay_ip_b": state_b.ip,
    }


def format_forensics(report: dict, debug_info=None) -> str:
    """Render a :func:`run_lockstep` report as a readable text block."""
    a, b = report.get("engines", ["a", "b"])
    lines = [
        f"=== cross-engine divergence: {a} vs {b} ===",
        f"last agreeing boundary: instruction "
        f"{report['boundary_instruction']}",
    ]
    if "injected_fault" in report:
        inj = report["injected_fault"]
        lines.append(
            f"injected fault: reg {inj.get('reg')} ^= "
            f"{inj.get('xor', 1):#x} at instruction {inj.get('at')}"
        )
    if report.get("first_divergent_pc") is not None:
        pc = report["first_divergent_pc"]
        where = _locate(debug_info, pc)
        lines.append(
            f"first divergent instruction: "
            f"#{report['first_divergent_instruction']} at pc={pc:#x}"
            f"{where} (isa {report.get('divergent_isa')})"
        )
        delta = report.get("replay_register_delta") or []
        for entry in delta:
            name = entry.get("name") or f"r{entry['reg']}"
            lines.append(
                f"  {name}: a={entry['a']:#x} b={entry['b']:#x}"
            )
        if "replay_ip_a" in report and (
            report["replay_ip_a"] != report["replay_ip_b"]
        ):
            lines.append(
                f"  ip: a={report['replay_ip_a']:#x} "
                f"b={report['replay_ip_b']:#x}"
            )
    else:
        lines.append(
            "replay under the reference engine did not reproduce the "
            "divergence (engine-internal translated-plan bug?); boundary "
            "delta follows"
        )
    lines.append(
        f"boundary state: a ran {report['instructions_a']} instructions "
        f"(ip={report['ip_a']:#x}), b ran {report['instructions_b']} "
        f"(ip={report['ip_b']:#x})"
    )
    for entry in report.get("register_delta", []):
        name = entry.get("name") or f"r{entry['reg']}"
        lines.append(f"  {name}: a={entry['a']:#x} b={entry['b']:#x}")
    if report.get("memory_digest_a") != report.get("memory_digest_b"):
        lines.append(
            f"memory digests differ: a={report['memory_digest_a'][:16]}… "
            f"b={report['memory_digest_b'][:16]}…"
        )
    for side, key in (("a", "recent_blocks_a"), ("b", "recent_blocks_b")):
        snap = report.get(key)
        if not snap or not snap.get("blocks"):
            continue
        lines.append(f"last blocks on {side} ({a if side == 'a' else b}):")
        for kind, isa, ip, n in snap["blocks"][-8:]:
            where = _locate(debug_info, ip)
            lines.append(
                f"  {kind:<8} isa={isa} ip={ip:#x} n={n}{where}"
            )
    return "\n".join(lines)
