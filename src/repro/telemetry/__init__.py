"""Unified telemetry layer: metrics, hot-spot profiling, timelines.

Everything the paper's evaluation measures about the simulator itself
(decode-cache effectiveness, prediction hit rates, cycle-model
behaviour — Tables I/II, Figure 4) is exposed here as one observability
subsystem instead of ad-hoc counters:

* :mod:`repro.telemetry.registry` — a namespaced metrics registry
  (counters, gauges, timers, histograms) with near-zero cost when
  disabled;
* :mod:`repro.telemetry.collect` — absorbs the interpreter's
  :class:`~repro.sim.stats.SimStats`, the decode-cache and superblock
  shadow counters, the cycle models and the memory hierarchy into one
  flat ``sim.* / cycles.* / mem.*`` metric tree;
* :mod:`repro.telemetry.profiler` — attributes executed instructions,
  approximated cycles, cache misses and self-modifying-code
  invalidations to guest PCs, basic blocks and functions;
* :mod:`repro.telemetry.timeline` — Chrome ``trace_event`` export (one
  track per VLIW slot under DOE) loadable in Perfetto;
* :mod:`repro.telemetry.report` — machine-readable run reports and the
  ``kahrisma report`` table renderer;
* :mod:`repro.telemetry.stream` — live schema-versioned NDJSON event
  streaming (heartbeats, syscalls, ISA switches, SMC, checkpoints)
  with shard-merge, a terminal progress line and a Prometheus
  text-exposition snapshot writer;
* :mod:`repro.telemetry.flight` — a bounded ring-buffer flight
  recorder dumped on trap, plus lockstep cross-engine divergence
  forensics (first divergent PC, register/memory delta, block trails).

See ``docs/observability.md`` for the metric namespace and formats.
"""

from .collect import (  # noqa: F401
    SCHEMA_NAME,
    SCHEMA_VERSION,
    collect_memory_metrics,
    collect_model_metrics,
    collect_run_metrics,
)
from .flight import (  # noqa: F401
    FlightRecorder,
    format_forensics,
    run_lockstep,
)
from .profiler import HotspotProfiler  # noqa: F401
from .registry import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    tree_from_flat,
)
from .report import (  # noqa: F401
    build_run_report,
    render_report,
    write_report,
)
from .stream import (  # noqa: F401
    EVENT_SCHEMA,
    EVENT_SCHEMA_VERSION,
    EventStream,
    LiveProgress,
    PrometheusSnapshot,
    merge_shard_events,
    prometheus_lines,
    render_event_summary,
    summarize_events,
    validate_event,
    validate_stream_text,
    write_prometheus,
)
from .timeline import TimelineRecorder  # noqa: F401
