"""Unified telemetry layer: metrics, hot-spot profiling, timelines.

Everything the paper's evaluation measures about the simulator itself
(decode-cache effectiveness, prediction hit rates, cycle-model
behaviour — Tables I/II, Figure 4) is exposed here as one observability
subsystem instead of ad-hoc counters:

* :mod:`repro.telemetry.registry` — a namespaced metrics registry
  (counters, gauges, timers, histograms) with near-zero cost when
  disabled;
* :mod:`repro.telemetry.collect` — absorbs the interpreter's
  :class:`~repro.sim.stats.SimStats`, the decode-cache and superblock
  shadow counters, the cycle models and the memory hierarchy into one
  flat ``sim.* / cycles.* / mem.*`` metric tree;
* :mod:`repro.telemetry.profiler` — attributes executed instructions,
  approximated cycles, cache misses and self-modifying-code
  invalidations to guest PCs, basic blocks and functions;
* :mod:`repro.telemetry.timeline` — Chrome ``trace_event`` export (one
  track per VLIW slot under DOE) loadable in Perfetto;
* :mod:`repro.telemetry.report` — machine-readable run reports and the
  ``kahrisma report`` table renderer.

See ``docs/observability.md`` for the metric namespace and formats.
"""

from .collect import (  # noqa: F401
    SCHEMA_NAME,
    SCHEMA_VERSION,
    collect_memory_metrics,
    collect_model_metrics,
    collect_run_metrics,
)
from .profiler import HotspotProfiler  # noqa: F401
from .registry import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    tree_from_flat,
)
from .report import (  # noqa: F401
    build_run_report,
    render_report,
    write_report,
)
from .timeline import TimelineRecorder  # noqa: F401
