"""Memory hierarchy approximation (paper Section VI-D).

The delay of each memory access is approximated *in program order* (the
order of the instruction stream executed by the behavioural model), not
in the order the hardware would execute them.  The hierarchy is built
from three module types sharing one interface — a function that maps a
memory access to its completion cycle:

* :class:`MainMemory` — fixed access delay;
* :class:`Cache` — n-way set-associative, write-back, LRU.  Because the
  delay function can be called out of order, every cache line stores the
  cycle it was written; a hit completes no earlier than that;
* :class:`ConnectionLimit` — models the limited number of access ports
  of a cache/memory by pushing the start (and completion) cycle to the
  next cycle with a free port.

Cache and connection-limit modules hold a pointer to the submodule next
in the hierarchy and pass misses/write-backs down the chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

MASK32 = 0xFFFFFFFF


class MemoryModule:
    """Interface: compute the completion cycle of one memory access."""

    def access(self, addr: int, is_write: bool, slot: int, start: int) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all timing/content state (new simulation run)."""

    def reset_timing(self) -> None:
        """Zero absolute-cycle timestamps, keep content and statistics.

        The sampling tier re-bases the cycle clock to zero at each
        measured interval (:meth:`repro.cycles.base.CycleModel.reset_timing`).
        Levels that remember *when* something happened (cache line
        availability, port reservations) must clear those timestamps —
        they refer to a dead timeline — while keeping *what* happened
        (tags, LRU order, hit/miss counters).
        """


class MainMemory(MemoryModule):
    """Backing store with a fixed, configurable access delay."""

    def __init__(self, delay: int = 18) -> None:
        self.delay = delay
        self.accesses = 0

    def access(self, addr: int, is_write: bool, slot: int, start: int) -> int:
        self.accesses += 1
        return start + self.delay

    def reset(self) -> None:
        self.accesses = 0


class _CacheLine:
    __slots__ = ("tag", "valid", "dirty", "write_cycle", "lru")

    def __init__(self) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False
        #: Cycle the line's data became available in this cache; a hit
        #: cannot complete before it (out-of-order call tolerance).
        self.write_cycle = 0
        self.lru = 0


class Cache(MemoryModule):
    """n-way set-associative cache, write-back policy, LRU replacement."""

    def __init__(
        self,
        *,
        size: int,
        line_size: int = 32,
        assoc: int = 4,
        delay: int = 3,
        sub: Optional[MemoryModule] = None,
        name: str = "cache",
    ) -> None:
        if size % (line_size * assoc) != 0:
            raise ValueError("cache size must be a multiple of line*assoc")
        self.size = size
        self.line_size = line_size
        self.assoc = assoc
        self.delay = delay
        self.sub = sub if sub is not None else MainMemory()
        self.name = name
        self.num_sets = size // (line_size * assoc)
        self._sets: List[List[_CacheLine]] = [
            [_CacheLine() for _ in range(assoc)] for _ in range(self.num_sets)
        ]
        self._lru_clock = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # -- statistics -------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset(self) -> None:
        for cache_set in self._sets:
            for line in cache_set:
                line.tag = -1
                line.valid = False
                line.dirty = False
                line.write_cycle = 0
                line.lru = 0
        self._lru_clock = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.sub.reset()

    def reset_timing(self) -> None:
        for cache_set in self._sets:
            for line in cache_set:
                line.write_cycle = 0
        self.sub.reset_timing()

    # -- the delay function (paper Section VI-D) ---------------------------

    def access(self, addr: int, is_write: bool, slot: int, start: int) -> int:
        addr &= MASK32
        block = addr // self.line_size
        set_index = block % self.num_sets
        tag = block // self.num_sets
        cache_set = self._sets[set_index]
        self._lru_clock += 1
        current = start + self.delay

        for line in cache_set:
            if line.valid and line.tag == tag:
                self.hits += 1
                line.lru = self._lru_clock
                if is_write:
                    line.dirty = True
                # Out-of-order tolerance: the hit cannot complete before
                # the cycle the line was actually filled.
                return max(current, line.write_cycle)

        # Miss: fetch the line from the next hierarchy level.
        self.misses += 1
        victim = min(cache_set, key=lambda entry: entry.lru)
        current = self.sub.access(addr, False, slot, current)
        if victim.valid and victim.dirty:
            # Write the evicted line back, a second subaccess.
            self.writebacks += 1
            victim_addr = (
                (victim.tag * self.num_sets + set_index) * self.line_size
            )
            current = self.sub.access(victim_addr, True, slot, current)
        # Store the fetched data into the cache: pay the delay again.
        current += self.delay
        victim.tag = tag
        victim.valid = True
        victim.dirty = is_write
        victim.write_cycle = current
        victim.lru = self._lru_clock
        return current


class ConnectionLimit(MemoryModule):
    """Port-count limit in front of a cache or memory module.

    Tracks per-cycle port usage; an access whose start cycle has no
    free port is pushed to the next free cycle (Section VI-D).

    ``reserve_completion`` selects the port semantics: the paper
    applies the same mechanism to the completion cycle returned by the
    submodule, which models a *blocking* single-ported array (request
    and response occupy the port; sustained throughput 1 access per 2
    cycles when saturated).  With ``False`` the cache is treated as
    pipelined — one new request per port and cycle, responses free —
    which is what the RTL reference implements; the ablation bench
    quantifies the difference.
    """

    #: Prune bookkeeping when it grows past this many cycles.
    _PRUNE_THRESHOLD = 1 << 16

    def __init__(self, ports: int, sub: MemoryModule,
                 *, reserve_completion: bool = False) -> None:
        if ports < 1:
            raise ValueError("a connection needs at least one port")
        self.ports = ports
        self.sub = sub
        self.reserve_completion = reserve_completion
        self._usage: Dict[int, int] = {}
        self._horizon = 0  # highest start cycle seen (for pruning)
        self.stalls = 0

    def _reserve(self, cycle: int) -> int:
        usage = self._usage
        while usage.get(cycle, 0) >= self.ports:
            cycle += 1
            self.stalls += 1
        usage[cycle] = usage.get(cycle, 0) + 1
        return cycle

    def _prune(self) -> None:
        # Accesses arrive roughly in program order; entries far behind
        # the horizon can never be queried again (register dependencies
        # bound how far back an out-of-order call can reach).
        if len(self._usage) > self._PRUNE_THRESHOLD:
            floor = self._horizon - self._PRUNE_THRESHOLD // 2
            self._usage = {c: n for c, n in self._usage.items() if c >= floor}

    def access(self, addr: int, is_write: bool, slot: int, start: int) -> int:
        start = self._reserve(start)
        if start > self._horizon:
            self._horizon = start
            self._prune()
        completion = self.sub.access(addr, is_write, slot, start)
        if self.reserve_completion:
            completion = self._reserve(completion)
        return completion

    def reset(self) -> None:
        self._usage.clear()
        self._horizon = 0
        self.stalls = 0
        self.sub.reset()

    def reset_timing(self) -> None:
        # Port reservations are pure timing: every key is an absolute
        # cycle on the timeline being abandoned.  The stall counter is
        # a statistic and survives.
        self._usage.clear()
        self._horizon = 0
        self.sub.reset_timing()


@dataclass(frozen=True)
class HierarchyConfig:
    """Parameters of the three-level hierarchy used in the paper (§VII)."""

    l1_size: int = 2 * 1024
    l1_assoc: int = 4
    l1_delay: int = 3
    l1_ports: int = 1
    l2_size: int = 256 * 1024
    l2_assoc: int = 4
    l2_delay: int = 6
    main_delay: int = 18
    line_size: int = 32
    #: Blocking (True, the paper's wording) vs pipelined (False) L1
    #: port semantics; see :class:`ConnectionLimit`.
    l1_blocking_port: bool = False


def build_hierarchy(config: HierarchyConfig = HierarchyConfig()) -> MemoryModule:
    """Build the paper's L1 / L2 / main-memory chain with an L1 port limit."""
    main = MainMemory(config.main_delay)
    l2 = Cache(
        size=config.l2_size,
        line_size=config.line_size,
        assoc=config.l2_assoc,
        delay=config.l2_delay,
        sub=main,
        name="L2",
    )
    l1 = Cache(
        size=config.l1_size,
        line_size=config.line_size,
        assoc=config.l1_assoc,
        delay=config.l1_delay,
        sub=l2,
        name="L1",
    )
    return ConnectionLimit(
        config.l1_ports, l1,
        reserve_completion=config.l1_blocking_port,
    )


def hierarchy_signature(module: MemoryModule) -> str:
    """Stable configuration string of a hierarchy chain.

    Part of a cycle model's :meth:`~repro.cycles.base.CycleModel.
    config_signature`, which namespaces fused plan-cache variants:
    include every parameter that could ever be folded into emitted
    timing code, so a config change can never resurrect stale code.
    """
    parts: List[str] = []
    current: Optional[MemoryModule] = module
    while current is not None:
        if isinstance(current, Cache):
            parts.append(
                f"cache({current.name},{current.size},{current.line_size},"
                f"{current.assoc},{current.delay})"
            )
        elif isinstance(current, ConnectionLimit):
            parts.append(
                f"port({current.ports},{int(current.reserve_completion)})"
            )
        elif isinstance(current, MainMemory):
            parts.append(f"main({current.delay})")
        else:
            parts.append(type(current).__name__)
        current = getattr(current, "sub", None)
    return ">".join(parts)


def save_hierarchy_state(module: MemoryModule) -> List[Dict[str, object]]:
    """Serialise a hierarchy chain to plain data, one dict per level.

    Walks the ``.sub`` chain top-down; :func:`load_hierarchy_state`
    replays the list onto an identically configured chain.  Cache
    content is stored as one flat row per *valid* line (invalid lines
    are the construction default), so short runs checkpoint compactly.
    """
    levels: List[Dict[str, object]] = []
    current: Optional[MemoryModule] = module
    while current is not None:
        if isinstance(current, Cache):
            lines = []
            for set_index, cache_set in enumerate(current._sets):
                for way, line in enumerate(cache_set):
                    if line.valid:
                        lines.append([set_index, way, line.tag,
                                      int(line.dirty), line.write_cycle,
                                      line.lru])
            levels.append({
                "kind": "cache",
                "name": current.name,
                "num_sets": current.num_sets,
                "assoc": current.assoc,
                "lines": lines,
                "lru_clock": current._lru_clock,
                "hits": current.hits,
                "misses": current.misses,
                "writebacks": current.writebacks,
            })
        elif isinstance(current, ConnectionLimit):
            levels.append({
                "kind": "port",
                "ports": current.ports,
                "usage": {str(c): n for c, n in current._usage.items()},
                "horizon": current._horizon,
                "stalls": current.stalls,
            })
        elif isinstance(current, MainMemory):
            levels.append({
                "kind": "main",
                "accesses": current.accesses,
            })
        else:
            raise ValueError(
                f"cannot checkpoint memory module {type(current).__name__}"
            )
        current = getattr(current, "sub", None)
    return levels


def load_hierarchy_state(
    module: MemoryModule, levels: List[Dict[str, object]]
) -> None:
    """Inverse of :func:`save_hierarchy_state` on a same-shaped chain."""
    current: Optional[MemoryModule] = module
    for level in levels:
        kind = level["kind"]
        if current is None:
            raise ValueError("checkpoint has more hierarchy levels than "
                             "the configured model")
        if isinstance(current, Cache):
            if kind != "cache" or (
                current.num_sets != level["num_sets"]
                or current.assoc != level["assoc"]
            ):
                raise ValueError(
                    f"hierarchy mismatch at {current.name!r}: checkpoint "
                    f"level is {kind!r} "
                    f"({level.get('num_sets')}x{level.get('assoc')})"
                )
            for cache_set in current._sets:
                for line in cache_set:
                    line.tag = -1
                    line.valid = False
                    line.dirty = False
                    line.write_cycle = 0
                    line.lru = 0
            for set_index, way, tag, dirty, write_cycle, lru in level["lines"]:
                line = current._sets[set_index][way]
                line.tag = tag
                line.valid = True
                line.dirty = bool(dirty)
                line.write_cycle = write_cycle
                line.lru = lru
            current._lru_clock = int(level["lru_clock"])
            current.hits = int(level["hits"])
            current.misses = int(level["misses"])
            current.writebacks = int(level["writebacks"])
        elif isinstance(current, ConnectionLimit):
            if kind != "port" or current.ports != level["ports"]:
                raise ValueError(
                    f"hierarchy mismatch: expected a {level['ports']}-port "
                    f"connection, found {type(current).__name__}"
                )
            current._usage = {int(c): int(n)
                              for c, n in level["usage"].items()}
            current._horizon = int(level["horizon"])
            current.stalls = int(level["stalls"])
        elif isinstance(current, MainMemory):
            if kind != "main":
                raise ValueError("hierarchy mismatch at main memory")
            current.accesses = int(level["accesses"])
        else:
            raise ValueError(
                f"cannot restore memory module {type(current).__name__}"
            )
        current = getattr(current, "sub", None)
    if current is not None:
        raise ValueError("checkpoint has fewer hierarchy levels than "
                         "the configured model")


def find_cache(module: MemoryModule, name: str) -> Optional[Cache]:
    """Walk a hierarchy chain and return the cache called ``name``."""
    current: Optional[MemoryModule] = module
    while current is not None:
        if isinstance(current, Cache) and current.name == name:
            return current
        current = getattr(current, "sub", None)
    return None
