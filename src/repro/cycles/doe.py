"""Dynamic Operation Execution cycle model (paper Section VI-C).

Approximates the KAHRISMA microarchitecture: the slots of a VLIW
instruction need not issue together — they *drift* against each other.
An operation issues once the previous operation of its slot has issued
and the true data dependencies of its input registers are fulfilled:

* true data dependencies are modelled exactly like the ILP model (a
  per-register last-write completion cycle);
* per slot, the start cycle of the last issued operation is stored; a
  successor in the same slot starts at least one cycle later (one
  operation per slot and cycle);
* memory operations are routed through the memory hierarchy
  approximation in program order.

The model is deliberately heuristic (paper's three simplifications):
no functional-unit sharing between slots, unbounded drift, and
program-order memory accesses.  The RTL reference model
(:mod:`repro.rtl`) implements all three effects; Table II quantifies
the resulting approximation error.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim.decoder import (
    DecodedInstruction,
    KIND_CTRL,
    KIND_LOAD,
    KIND_NOP,
    KIND_STORE,
)
from .base import BlockCompiler, CycleModel
from .branch import BranchModel
from .memmodel import (
    MASK32,
    MemoryModule,
    build_hierarchy,
    hierarchy_signature,
    load_hierarchy_state,
    save_hierarchy_state,
)


class DoeModel(CycleModel):
    """Per-slot drifting issue with true-dependency tracking.

    ``branch_model`` optionally attaches the misprediction extension
    (the paper's future work): a mispredicted control operation stalls
    instruction fetch until it resolves plus the refill penalty.  The
    default (None) is the paper's perfect branch prediction.
    """

    name = "DOE"

    def __init__(
        self,
        issue_width: int = 8,
        memory: Optional[MemoryModule] = None,
        num_regs: int = 32,
        *,
        count_nop_issue: bool = True,
        branch_model: Optional[BranchModel] = None,
    ) -> None:
        super().__init__(num_regs)
        self.issue_width = issue_width
        self.memory = memory if memory is not None else build_hierarchy()
        #: Start cycle of the last operation issued per slot.
        self.slot_last_start: List[int] = [0] * issue_width
        self.max_completion = 0
        #: Whether NOP padding occupies its slot's issue stream (the
        #: hardware issues NOPs like any operation; disable to model a
        #: NOP-compressing fetch unit — used by the ablation bench).
        self.count_nop_issue = count_nop_issue
        self.branch_model = branch_model
        #: Earliest cycle any operation may start (fetch refill floor
        #: after a misprediction).
        self.fetch_floor = 0

    def reset(self) -> None:
        super().reset()
        self.memory.reset()
        self.slot_last_start = [0] * self.issue_width
        self.max_completion = 0
        if self.branch_model is not None:
            self.branch_model.reset()
        self.fetch_floor = 0

    def reset_timing(self) -> None:
        # Keeps cache tags/LRU and branch-predictor tables (content
        # warmed by the sampling tier); clears every absolute-cycle
        # timestamp so the next measured interval starts at cycle 0.
        super().reset_timing()
        self.memory.reset_timing()
        self.slot_last_start = [0] * self.issue_width
        self.max_completion = 0
        self.fetch_floor = 0

    def save_state(self):
        data = super().save_state()
        data["slot_last_start"] = list(self.slot_last_start)
        data["max_completion"] = self.max_completion
        data["fetch_floor"] = self.fetch_floor
        data["memory"] = save_hierarchy_state(self.memory)
        data["branch"] = (
            self.branch_model.save_state()
            if self.branch_model is not None else None
        )
        return data

    def load_state(self, data) -> None:
        super().load_state(data)
        slot_last = [int(c) for c in data["slot_last_start"]]
        if len(slot_last) != self.issue_width:
            raise ValueError(
                f"checkpoint DOE slot drift is {len(slot_last)} wide, "
                f"model issue width is {self.issue_width}"
            )
        self.slot_last_start = slot_last
        self.max_completion = int(data["max_completion"])
        self.fetch_floor = int(data["fetch_floor"])
        load_hierarchy_state(self.memory, data["memory"])
        branch = data.get("branch")
        if self.branch_model is not None:
            if branch is None:
                raise ValueError(
                    "checkpoint has no branch-model state but this model "
                    "has a branch predictor attached"
                )
            self.branch_model.load_state(branch)
        elif branch is not None:
            raise ValueError(
                "checkpoint carries branch-model state; attach the same "
                "predictor to restore it"
            )

    def observe(self, dec: DecodedInstruction, regs: Sequence[int]) -> None:
        self.instructions += 1
        reg_cycle = self.reg_write_cycle
        slot_last = self.slot_last_start
        branch_model = self.branch_model
        timeline = self.timeline
        floor = self.fetch_floor
        pending_floor = floor
        for op in dec.ops:
            kind = op.kind_code
            slot = op.slot
            if kind == KIND_NOP:
                if self.count_nop_issue:
                    slot_last[slot] += 1
                continue
            self.ops += 1
            # One operation per slot and cycle, in slot order; never
            # before the fetch-refill floor.
            start = slot_last[slot] + 1
            if floor > start:
                start = floor
            for src in op.srcs:
                c = reg_cycle[src]
                if c > start:
                    start = c
            if kind == KIND_LOAD or kind == KIND_STORE:
                addr = (regs[op.mem_base] + op.mem_imm) & MASK32
                completion = self.memory.access(
                    addr, kind == KIND_STORE, slot, start
                )
            else:
                completion = start + op.delay
            slot_last[slot] = start
            if timeline is not None:
                # One Chrome-trace event per op on the slot's track:
                # the drifted issue interval (paper Section VI-C).
                timeline.op(slot, start, completion, op.name, dec.addr)
            for dst in op.dsts:
                reg_cycle[dst] = completion
            if completion > self.max_completion:
                self.max_completion = completion
            if branch_model is not None and kind == KIND_CTRL:
                if branch_model.observe_op(op, regs, dec.addr, dec.size):
                    refill = completion + branch_model.penalty
                    if refill > pending_floor:
                        pending_floor = refill
        self.fetch_floor = pending_floor

    @property
    def cycles(self) -> int:
        return self.max_completion

    # -- superblock fusion --------------------------------------------------

    def block_compiler(self) -> Optional["_DoeBlockCompiler"]:
        if self.timeline is not None:
            # Per-op timeline events need the observe path.
            return None
        return _DoeBlockCompiler(self)

    def config_signature(self) -> str:
        sig = (
            f"DOE:w{self.issue_width}:nop{int(self.count_nop_issue)}"
            f":mem={hierarchy_signature(self.memory)}"
        )
        if self.branch_model is not None:
            sig += f":branch={self.branch_model.signature()}"
        return sig


class _DoeBlockCompiler(BlockCompiler):
    """Emit DOE slot-drift accounting as flat superblock statements.

    Fused bodies are single-issue (only direct-eligible plans fuse),
    so exactly one slot — slot 0 — drifts: its last start cycle lives
    in the local ``_yst``; consecutive NOP issue bumps fold into the
    next operation's start constant.  Register-ready cycles are kept
    in per-register locals ``_yr<n>``: registers read before being
    written load from ``reg_write_cycle`` in the prologue, registers
    written in the block store back once in the flush — intermediate
    list traffic (and dead overwrites) disappears.

    Two properties of a straight-line body justify folding the
    observe loop's clamps:

    * ``fetch_floor`` is loop-invariant (it only moves on a
      mispredicted *control* op, and control ops terminate blocks;
      with a branch model attached the terminator stays on the
      per-instruction observe path anyway), and slot-0 start cycles
      strictly increase, so the floor clamp can only fire on the
      first operation of the block;
    * NOP issue bumps fold into the next operation's start constant.

    All state is re-derived from the model argument ``m`` per call —
    see :class:`_AieBlockCompiler` for why.
    """

    def begin(self) -> None:
        self.uses_regs = False
        self._n_instr = 0
        self._n_ops = 0
        #: Folded slot-0 issue bumps of preceding NOP instructions.
        self._nop_bias = 0
        self._mem = False
        self._core = False  # any non-NOP op emitted
        #: Registers read before any in-block write (prologue loads).
        self._loaded: set = set()
        #: Registers written in the block so far (flush stores).
        self._written: set = set()

    def instr(self, dec: DecodedInstruction) -> Optional[List[str]]:
        op = dec.single
        if op is None or op.slot != 0:
            return None
        kind = op.kind_code
        if kind == KIND_CTRL:
            return None  # control ops never appear in bodies; be safe
        self._n_instr += 1
        if kind == KIND_NOP:
            if self.model.count_nop_issue:
                self._nop_bias += 1
            return []
        return self._emit_op(op, kind)

    def term(self, dec: DecodedInstruction) -> Optional[List[str]]:
        if self.model.branch_model is not None:
            # Mispredictions move the fetch floor and need ``observe``.
            return None
        op = dec.single
        if op is None or op.slot != 0:
            return None
        kind = op.kind_code
        if kind == KIND_LOAD or kind == KIND_STORE:
            return None
        self._n_instr += 1
        return self._emit_op(op, kind)

    def _emit_op(self, op, kind: int) -> List[str]:
        self._n_ops += 1
        out: List[str] = [f"_yst += {1 + self._nop_bias}"]
        self._nop_bias = 0
        if not self._core:
            out.append("if _yfl > _yst: _yst = _yfl")
        self._core = True
        for src in dict.fromkeys(op.srcs):
            if src not in self._written:
                self._loaded.add(src)
            out.append(f"if _yr{src} > _yst: _yst = _yr{src}")
        dsts = tuple(dict.fromkeys(op.dsts))
        target = f"_yr{dsts[0]}" if dsts else "_yx"
        if kind == KIND_LOAD or kind == KIND_STORE:
            self._mem = True
            self.uses_regs = True
            out.append(
                f"{target} = _yacc((regs[{op.mem_base}] + {op.mem_imm})"
                f" & 4294967295, {kind == KIND_STORE}, 0, _yst)"
            )
        elif op.delay:
            out.append(f"{target} = _yst + {op.delay}")
        else:
            out.append(f"{target} = _yst")
        if dsts:
            self._written.update(dsts)
            for dst in dsts[1:]:
                out.append(f"_yr{dst} = {target}")
        out.append(f"if {target} > _ymx: _ymx = {target}")
        return out

    def flush(self) -> List[str]:
        out: List[str] = []
        if self._core:
            start = f"_yst + {self._nop_bias}" if self._nop_bias else "_yst"
            out.append(f"m.slot_last_start[0] = {start}")
            out.append("m.max_completion = _ymx")
            for dst in sorted(self._written):
                out.append(f"_yrc[{dst}] = _yr{dst}")
        elif self._nop_bias:
            out.append(f"m.slot_last_start[0] += {self._nop_bias}")
        if self._n_instr:
            out.append(f"m.instructions += {self._n_instr}")
        if self._n_ops:
            out.append(f"m.ops += {self._n_ops}")
        return out

    def prologue(self) -> List[str]:
        if not self._core:
            return []
        out: List[str] = []
        if self._loaded or self._written:
            out.append("_yrc = m.reg_write_cycle")
        for src in sorted(self._loaded):
            out.append(f"_yr{src} = _yrc[{src}]")
        out.append("_yst = m.slot_last_start[0]")
        out.append("_yfl = m.fetch_floor")
        out.append("_ymx = m.max_completion")
        if self._mem:
            out.append("_yacc = m.memory.access")
        return out
