"""Common interface of the cycle-approximation models (paper Section VI).

A cycle model is attached to the interpreter and *observes* every
executed instruction pre-commit (so source-register values, in
particular memory-address base registers, are still the values the
operations read).  It maintains its own notion of time; the simulator
never models the pipeline structurally.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim.decoder import DecodedInstruction


class BlockCompiler:
    """Per-model emitter of fused timing statements (superblock engine).

    A cycle model that can prove its accounting for a straight-line
    body is expressible as flat statements returns one of these from
    :meth:`CycleModel.block_compiler`.  The superblock translator then
    interleaves the emitted timing statements with the functional
    statements of each instruction — *before* the instruction's own
    writes, reproducing the pre-commit register view of the buffered
    per-instruction ``observe`` path, so fused cycle counts stay
    bitwise-identical.

    Protocol (all statements are unindented single lines; the
    translator indents them into the generated function):

    * :meth:`begin` resets the per-emission state; one emission covers
      one generated function.
    * :meth:`instr` returns the timing statements for one body
      instruction, or None when this instruction cannot be fused (the
      whole plan then falls back to per-instruction observation).
    * :meth:`term` returns the timing statements for a plain branch
      terminator, or None when the terminator must stay buffered
      (e.g. a branch-misprediction model needs ``observe``).
    * :meth:`flush` returns the write-back statements for the prefix
      emitted *so far* — counter increments and scalar state stored
      back onto the model argument ``m``.  It is emitted at every
      function exit: the normal epilogue and each self-modifying-code
      abort site, and must not mutate emission state (an abort site's
      flush covers only its prefix).
    * :meth:`prologue` (queried after emission) returns the binding
      statements deriving locals from ``m``.  Generated functions
      never capture model objects or their mutable lists — ``reset``/
      ``load_state`` replace those wholesale, and cached plans outlive
      both.
    """

    def __init__(self, model) -> None:
        self.model = model
        #: Set during emission when a timing statement reads ``regs``
        #: (effective-address computation); ORed into the functional
        #: body's own flag by the translator.
        self.uses_regs = False

    def begin(self) -> None:
        raise NotImplementedError

    def instr(self, dec: DecodedInstruction) -> Optional[List[str]]:
        raise NotImplementedError

    def term(self, dec: DecodedInstruction) -> Optional[List[str]]:
        raise NotImplementedError

    def flush(self) -> List[str]:
        raise NotImplementedError

    def prologue(self) -> List[str]:
        raise NotImplementedError


class CycleModel:
    """Base class for ILP / AIE / DOE."""

    name = "abstract"

    def __init__(self, num_regs: int = 32) -> None:
        self.num_regs = num_regs
        #: Completion cycle of the last write to each register.
        self.reg_write_cycle: List[int] = [0] * num_regs
        #: Operations counted (non-NOP).
        self.ops = 0
        #: Instructions observed.
        self.instructions = 0

    def observe(self, dec: DecodedInstruction, regs: Sequence[int]) -> None:
        """Account for one executed instruction (called pre-commit)."""
        raise NotImplementedError

    #: Optional :class:`repro.telemetry.TimelineRecorder`.  When set,
    #: models that compute per-operation issue intervals (AIE/DOE)
    #: emit one Chrome-trace event per executed operation on the
    #: operation's slot track; None (the default) costs one attribute
    #: load per observed instruction.
    timeline = None

    #: Optional batched fast path for the superblock engine: models
    #: whose accounting never reads current register *values* (ILP)
    #: override this with a method taking ``(plan, regs)`` that
    #: observes all of ``plan.decs`` in one call, letting translated
    #: blocks run without per-instruction pauses.  Models that read
    #: ``regs`` pre-commit (AIE/DOE compute effective addresses from
    #: base registers) must leave it None — the engine then falls back
    #: to per-instruction ``observe`` with buffered commits, keeping
    #: cycle counts bit-identical across engines.
    observe_block = None

    def block_compiler(self) -> Optional[BlockCompiler]:
        """Emitter fusing this model's accounting into translated plans.

        Models that can express their per-instruction accounting as
        flat statements (AIE/DOE) return a :class:`BlockCompiler`;
        the default None keeps the per-instruction ``observe`` path.
        Models must return None whenever a configuration needs the
        per-instruction hook anyway (e.g. an attached ``timeline``
        records one event per executed operation).
        """
        return None

    def config_signature(self) -> str:
        """Timing-relevant configuration as a stable string.

        Used by the persistent plan cache to namespace fused variants:
        two models whose signatures match must emit identical fused
        code for the same plan.  The default covers models without
        tunable timing parameters; subclasses append theirs.
        """
        return self.name

    @property
    def cycles(self) -> int:
        """Approximated total cycle count so far."""
        raise NotImplementedError

    def reset(self) -> None:
        self.reg_write_cycle = [0] * self.num_regs
        self.ops = 0
        self.instructions = 0

    def reset_timing(self) -> None:
        """Zero the timing clock while keeping learned *content*.

        The sampling tier (:mod:`repro.framework.sampling`) warms a
        detailed model before each measured interval and needs the
        cycle clock re-based to zero without discarding what warming
        built up: cache tags stay resident and branch-predictor tables
        stay trained, but every absolute-cycle timestamp (register
        scoreboard, cache line availability, port reservations) is
        cleared — a stale timestamp from a previous interval's timeline
        would otherwise leak stalls into the fresh one.  Subclasses
        extend this; the base clears the register scoreboard only.
        """
        self.reg_write_cycle = [0] * self.num_regs

    # -- checkpointing ------------------------------------------------------

    def save_state(self) -> Dict[str, object]:
        """Model state as plain data (:mod:`repro.snapshot` contract).

        Subclasses extend the dict via ``super().save_state()``; the
        ``name`` field lets :meth:`load_state` reject a checkpoint
        taken under a different model.
        """
        return {
            "name": self.name,
            "reg_write_cycle": list(self.reg_write_cycle),
            "ops": self.ops,
            "instructions": self.instructions,
        }

    def load_state(self, data: Dict[str, object]) -> None:
        """Inverse of :meth:`save_state` on a same-configured model."""
        if data.get("name") != self.name:
            raise ValueError(
                f"checkpoint cycle-model state is for {data.get('name')!r}, "
                f"this model is {self.name!r}"
            )
        reg_cycle = [int(c) for c in data["reg_write_cycle"]]
        if len(reg_cycle) != self.num_regs:
            raise ValueError(
                f"checkpoint tracks {len(reg_cycle)} registers, "
                f"model tracks {self.num_regs}"
            )
        self.reg_write_cycle = reg_cycle
        self.ops = int(data["ops"])
        self.instructions = int(data["instructions"])

    # -- reporting ---------------------------------------------------------

    @property
    def ops_per_cycle(self) -> float:
        c = self.cycles
        return self.ops / c if c else 0.0

    def summary(self) -> str:
        return (
            f"{self.name}: {self.cycles} cycles, {self.ops} ops, "
            f"{self.ops_per_cycle:.3f} ops/cycle"
        )
