"""Atomic Instruction Execution cycle model (paper Section VI-B).

All operations of an instruction are issued in the same cycle(s); the
next instruction issues only after every operation of the previous one
finished.  The instruction's delay is the maximum of its operations'
delays, with memory operations routed through the memory hierarchy
approximation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim.decoder import (
    DecodedInstruction,
    KIND_CTRL,
    KIND_LOAD,
    KIND_NOP,
    KIND_STORE,
)
from .base import BlockCompiler, CycleModel
from .branch import BranchModel
from .memmodel import (
    MASK32,
    MemoryModule,
    build_hierarchy,
    hierarchy_signature,
    load_hierarchy_state,
    save_hierarchy_state,
)


class AieModel(CycleModel):
    """Lock-step issue: instruction-atomic timing.

    ``branch_model`` optionally adds the misprediction extension: a
    mispredicted control operation charges the refill penalty before
    the next instruction issues.
    """

    name = "AIE"

    def __init__(
        self,
        memory: Optional[MemoryModule] = None,
        num_regs: int = 32,
        *,
        branch_model: Optional[BranchModel] = None,
    ) -> None:
        super().__init__(num_regs)
        self.memory = memory if memory is not None else build_hierarchy()
        self.current_cycle = 0
        self.branch_model = branch_model

    def reset(self) -> None:
        super().reset()
        self.memory.reset()
        self.current_cycle = 0
        if self.branch_model is not None:
            self.branch_model.reset()

    def reset_timing(self) -> None:
        # Content (cache tags, predictor tables) stays warm; the clock
        # and all timestamps derived from it restart at zero.
        super().reset_timing()
        self.memory.reset_timing()
        self.current_cycle = 0

    def save_state(self):
        data = super().save_state()
        data["current_cycle"] = self.current_cycle
        data["memory"] = save_hierarchy_state(self.memory)
        data["branch"] = (
            self.branch_model.save_state()
            if self.branch_model is not None else None
        )
        return data

    def load_state(self, data) -> None:
        super().load_state(data)
        self.current_cycle = int(data["current_cycle"])
        load_hierarchy_state(self.memory, data["memory"])
        branch = data.get("branch")
        if self.branch_model is not None:
            if branch is None:
                raise ValueError(
                    "checkpoint has no branch-model state but this model "
                    "has a branch predictor attached"
                )
            self.branch_model.load_state(branch)
        elif branch is not None:
            raise ValueError(
                "checkpoint carries branch-model state; attach the same "
                "predictor to restore it"
            )

    def observe(self, dec: DecodedInstruction, regs: Sequence[int]) -> None:
        self.instructions += 1
        issue = self.current_cycle
        max_completion = issue + 1  # an empty/NOP-only instruction still issues
        penalty = 0
        timeline = self.timeline
        for op in dec.ops:
            kind = op.kind_code
            if kind == KIND_NOP:
                continue
            self.ops += 1
            if kind == KIND_LOAD or kind == KIND_STORE:
                addr = (regs[op.mem_base] + op.mem_imm) & MASK32
                completion = self.memory.access(
                    addr, kind == KIND_STORE, op.slot, issue
                )
            else:
                completion = issue + op.delay
            if timeline is not None:
                timeline.op(op.slot, issue, completion, op.name, dec.addr)
            if completion > max_completion:
                max_completion = completion
            if self.branch_model is not None and kind == KIND_CTRL:
                if self.branch_model.observe_op(op, regs, dec.addr,
                                                dec.size):
                    penalty = self.branch_model.penalty
        self.current_cycle = max_completion + penalty

    @property
    def cycles(self) -> int:
        return self.current_cycle

    # -- superblock fusion --------------------------------------------------

    def block_compiler(self) -> Optional["_AieBlockCompiler"]:
        if self.timeline is not None:
            # Per-op timeline events need the observe path.
            return None
        return _AieBlockCompiler(self)

    def config_signature(self) -> str:
        sig = f"AIE:mem={hierarchy_signature(self.memory)}"
        if self.branch_model is not None:
            sig += f":branch={self.branch_model.signature()}"
        return sig


class _AieBlockCompiler(BlockCompiler):
    """Emit AIE accounting as flat statements for superblock bodies.

    Superblock bodies contain no control operations (a control op
    terminates the block) and are single-issue (only direct-eligible
    plans fuse), so per instruction the observe loop above reduces to:

    * non-memory: ``current_cycle += max(1, delay)`` — a translate-time
      constant, merged across runs of consecutive instructions;
    * memory: one hierarchy query at the issue cycle, then
      ``current_cycle = max(issue + 1, completion)``.

    The generated function receives the model as argument ``m`` and
    re-derives all state from it each call, so plans survive
    ``reset``/``load_state`` and persistent-cache reuse.  Timing
    locals use a ``_y`` prefix (functional locals use ``_t_``).
    """

    def begin(self) -> None:
        self.uses_regs = False
        self._n_instr = 0
        self._n_ops = 0
        #: Accumulated constant cycle advance not yet materialised as a
        #: ``_ycc`` update (flushed before each dynamic statement).
        self._pending = 0
        self._mem = False

    def _flush_pending(self, out: List[str]) -> None:
        if self._pending:
            out.append(f"_ycc += {self._pending}")
            self._pending = 0

    def instr(self, dec: DecodedInstruction) -> Optional[List[str]]:
        op = dec.single
        if op is None:
            return None
        kind = op.kind_code
        self._n_instr += 1
        if kind == KIND_NOP:
            self._pending += 1
            return []
        if kind == KIND_LOAD or kind == KIND_STORE:
            self._n_ops += 1
            self._mem = True
            self.uses_regs = True
            out: List[str] = []
            self._flush_pending(out)
            out.append(
                f"_yx = _yacc((regs[{op.mem_base}] + {op.mem_imm})"
                f" & 4294967295, {kind == KIND_STORE}, {op.slot}, _ycc)"
            )
            out.append("_ycc = _yx if _yx > _ycc + 1 else _ycc + 1")
            return out
        if kind == KIND_CTRL:
            return None  # control ops never appear in bodies; be safe
        self._n_ops += 1
        self._pending += max(1, op.delay)
        return []

    def term(self, dec: DecodedInstruction) -> Optional[List[str]]:
        if self.model.branch_model is not None:
            # Mispredictions need the per-instruction observe hook.
            return None
        op = dec.single
        if op is None or op.kind_code in (KIND_LOAD, KIND_STORE):
            return None
        self._n_instr += 1
        self._n_ops += 1
        self._pending += max(1, op.delay)
        return []

    def flush(self) -> List[str]:
        out: List[str] = []
        if self._mem:
            cc = f"_ycc + {self._pending}" if self._pending else "_ycc"
            out.append(f"m.current_cycle = {cc}")
        elif self._pending:
            out.append(f"m.current_cycle += {self._pending}")
        if self._n_instr:
            out.append(f"m.instructions += {self._n_instr}")
        if self._n_ops:
            out.append(f"m.ops += {self._n_ops}")
        return out

    def prologue(self) -> List[str]:
        if not self._mem:
            return []
        return ["_ycc = m.current_cycle", "_yacc = m.memory.access"]
