"""Atomic Instruction Execution cycle model (paper Section VI-B).

All operations of an instruction are issued in the same cycle(s); the
next instruction issues only after every operation of the previous one
finished.  The instruction's delay is the maximum of its operations'
delays, with memory operations routed through the memory hierarchy
approximation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..sim.decoder import (
    DecodedInstruction,
    KIND_CTRL,
    KIND_LOAD,
    KIND_NOP,
    KIND_STORE,
)
from .base import CycleModel
from .branch import BranchModel
from .memmodel import (
    MASK32,
    MemoryModule,
    build_hierarchy,
    load_hierarchy_state,
    save_hierarchy_state,
)


class AieModel(CycleModel):
    """Lock-step issue: instruction-atomic timing.

    ``branch_model`` optionally adds the misprediction extension: a
    mispredicted control operation charges the refill penalty before
    the next instruction issues.
    """

    name = "AIE"

    def __init__(
        self,
        memory: Optional[MemoryModule] = None,
        num_regs: int = 32,
        *,
        branch_model: Optional[BranchModel] = None,
    ) -> None:
        super().__init__(num_regs)
        self.memory = memory if memory is not None else build_hierarchy()
        self.current_cycle = 0
        self.branch_model = branch_model

    def reset(self) -> None:
        super().reset()
        self.memory.reset()
        self.current_cycle = 0
        if self.branch_model is not None:
            self.branch_model.reset()

    def save_state(self):
        data = super().save_state()
        data["current_cycle"] = self.current_cycle
        data["memory"] = save_hierarchy_state(self.memory)
        data["branch"] = (
            self.branch_model.save_state()
            if self.branch_model is not None else None
        )
        return data

    def load_state(self, data) -> None:
        super().load_state(data)
        self.current_cycle = int(data["current_cycle"])
        load_hierarchy_state(self.memory, data["memory"])
        branch = data.get("branch")
        if self.branch_model is not None:
            if branch is None:
                raise ValueError(
                    "checkpoint has no branch-model state but this model "
                    "has a branch predictor attached"
                )
            self.branch_model.load_state(branch)
        elif branch is not None:
            raise ValueError(
                "checkpoint carries branch-model state; attach the same "
                "predictor to restore it"
            )

    def observe(self, dec: DecodedInstruction, regs: Sequence[int]) -> None:
        self.instructions += 1
        issue = self.current_cycle
        max_completion = issue + 1  # an empty/NOP-only instruction still issues
        penalty = 0
        timeline = self.timeline
        for op in dec.ops:
            kind = op.kind_code
            if kind == KIND_NOP:
                continue
            self.ops += 1
            if kind == KIND_LOAD or kind == KIND_STORE:
                addr = (regs[op.mem_base] + op.mem_imm) & MASK32
                completion = self.memory.access(
                    addr, kind == KIND_STORE, op.slot, issue
                )
            else:
                completion = issue + op.delay
            if timeline is not None:
                timeline.op(op.slot, issue, completion, op.name, dec.addr)
            if completion > max_completion:
                max_completion = completion
            if self.branch_model is not None and kind == KIND_CTRL:
                if self.branch_model.observe_op(op, regs, dec.addr,
                                                dec.size):
                    penalty = self.branch_model.penalty
        self.current_cycle = max_completion + penalty

    @property
    def cycles(self) -> int:
        return self.current_cycle
