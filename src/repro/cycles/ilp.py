"""Theoretical instruction-level-parallelism measurement (Section VI-A).

Predicts the performance of a KAHRISMA VLIW instance with an unlimited
number of parallel operations, unlimited renaming registers and an
ideal memory with the L1 delay (3 cycles) and unlimited ports.  In such
a machine parallelism is limited only by true data dependencies:

* each register records the completion cycle of its last write;
* an instruction starts at the maximum write cycle of its sources;
* ...but not before the completion of the last *branch* (on a VLIW only
  operations up to the next branch can be scheduled together);
* loads/stores are pessimistically serialised against the last store's
  *start* cycle — the same no-alias-analysis model the compiler's
  scheduler uses, so the measurement reflects exploitable parallelism;
* completion = start + operation delay (3 cycles for memory).

The input is the dynamic RISC instruction stream in compiler order.
The resulting ops/cycle is the theoretical upper bound the paper uses
as the ISA-selection indicator.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.decoder import (
    DecodedInstruction,
    KIND_CTRL,
    KIND_HALT,
    KIND_LOAD,
    KIND_NOP,
    KIND_STORE,
)
from .base import CycleModel

#: The ideal memory of the ILP model: the paper's L1 access delay.
IDEAL_MEMORY_DELAY = 3


class IlpModel(CycleModel):
    """Upper-bound ILP measurement over the RISC stream.

    ``pessimistic_memory`` enables the paper's default no-alias model
    (loads/stores serialised against the last store); disabling it
    models a compiler with perfect alias analysis — the ablation bench
    quantifies how much ILP the pessimistic model hides.
    """

    name = "ILP"

    def __init__(self, num_regs: int = 32,
                 *, pessimistic_memory: bool = True) -> None:
        super().__init__(num_regs)
        self.pessimistic_memory = pessimistic_memory
        self.last_branch_completion = 0
        self.last_store_start = 0
        self.max_completion = 0

    def reset(self) -> None:
        super().reset()
        self.last_branch_completion = 0
        self.last_store_start = 0
        self.max_completion = 0

    def observe(self, dec: DecodedInstruction, regs: Sequence[int]) -> None:
        self.instructions += 1
        reg_cycle = self.reg_write_cycle
        for op in dec.ops:
            kind = op.kind_code
            if kind == KIND_NOP:
                continue
            self.ops += 1
            start = self.last_branch_completion
            for src in op.srcs:
                c = reg_cycle[src]
                if c > start:
                    start = c
            if kind == KIND_LOAD or kind == KIND_STORE:
                if self.pessimistic_memory:
                    if self.last_store_start > start:
                        start = self.last_store_start
                    if kind == KIND_STORE:
                        self.last_store_start = start
                completion = start + IDEAL_MEMORY_DELAY
            else:
                completion = start + op.delay
            if kind == KIND_CTRL or kind == KIND_HALT:
                self.last_branch_completion = completion
            for dst in op.dsts:
                reg_cycle[dst] = completion
            if completion > self.max_completion:
                self.max_completion = completion

    def save_state(self):
        data = super().save_state()
        data["last_branch_completion"] = self.last_branch_completion
        data["last_store_start"] = self.last_store_start
        data["max_completion"] = self.max_completion
        return data

    def load_state(self, data) -> None:
        super().load_state(data)
        self.last_branch_completion = int(data["last_branch_completion"])
        self.last_store_start = int(data["last_store_start"])
        self.max_completion = int(data["max_completion"])

    def observe_block(self, plan, regs: Sequence[int]) -> None:
        """Superblock fast path: observe a whole plan in one call.

        Valid because this model never reads current register values —
        only dependence indices — so observing before the block's
        writes commit is indistinguishable from interleaved observes.
        """
        observe = self.observe
        for dec in plan.decs:
            observe(dec, regs)

    def config_signature(self) -> str:
        return f"ILP:pess{int(self.pessimistic_memory)}"

    @property
    def cycles(self) -> int:
        return self.max_completion

    @property
    def ilp(self) -> float:
        """Theoretical operations per cycle (the Figure-4 y-value)."""
        return self.ops_per_cycle
