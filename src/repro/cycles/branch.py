"""Branch-misprediction cycle approximation (the paper's future work).

Section VIII: *"In future we plan to integrate cycle-approximation
models for branch misprediction into our simulator."*  This module
implements that extension.

A :class:`BranchModel` owns a direction predictor for conditional
branches, perfect target prediction for direct jumps/calls (a BTB with
no conflict misses), and a return-address stack for ``jr``-style
indirect returns.  Cycle models consult it per control operation; a
misprediction charges a configurable pipeline-refill penalty and stalls
instruction fetch until the branch resolves.

Because the models observe the *functional* execution, the actual
branch outcome is recomputed from the pre-commit register values — no
interpreter changes are needed and perfect-prediction mode (the
Table II setup) remains the default everywhere.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.decoder import DecodedOp

MASK32 = 0xFFFFFFFF

#: Conditional-branch evaluators: mnemonic -> f(a, b) -> taken.
_CONDITIONS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _s32(a) < _s32(b),
    "bge": lambda a, b: _s32(a) >= _s32(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}


def _s32(x: int) -> int:
    x &= MASK32
    return x - 0x100000000 if x & 0x80000000 else x


class BranchPredictor:
    """Direction predictor interface for conditional branches."""

    name = "abstract"

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all learned state."""

    def save_state(self) -> Dict[str, object]:
        """Learned state as plain data (stateless predictors: empty)."""
        return {"name": self.name}

    def load_state(self, data: Dict[str, object]) -> None:
        if data.get("name") != self.name:
            raise ValueError(
                f"checkpoint predictor state is for {data.get('name')!r}, "
                f"this predictor is {self.name!r}"
            )


class NotTakenPredictor(BranchPredictor):
    """Static: always predict not-taken (fall-through fetch)."""

    name = "static-not-taken"

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass


class BackwardTakenPredictor(BranchPredictor):
    """Static BTFN: backward branches (loops) taken, forward not.

    Needs the branch displacement; the model passes it via
    :meth:`set_displacement` before each prediction.
    """

    name = "static-btfn"

    def __init__(self) -> None:
        self._displacement = 0

    def set_displacement(self, displacement: int) -> None:
        self._displacement = displacement

    def predict(self, pc: int) -> bool:
        return self._displacement < 0

    def update(self, pc: int, taken: bool) -> None:
        pass


class BimodalPredictor(BranchPredictor):
    """Per-PC 2-bit saturating counters (classic bimodal table)."""

    name = "bimodal"

    def __init__(self, table_bits: int = 10) -> None:
        self.table_bits = table_bits
        self._mask = (1 << table_bits) - 1
        self._counters: List[int] = [2] * (1 << table_bits)  # weak taken

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(counter + 1, 3)
        else:
            self._counters[index] = max(counter - 1, 0)

    def reset(self) -> None:
        self._counters = [2] * (1 << self.table_bits)

    def save_state(self) -> Dict[str, object]:
        return {"name": self.name, "counters": list(self._counters)}

    def load_state(self, data: Dict[str, object]) -> None:
        super().load_state(data)
        counters = [int(c) for c in data["counters"]]
        if len(counters) != len(self._counters):
            raise ValueError("bimodal table size mismatch")
        self._counters = counters


class GsharePredictor(BranchPredictor):
    """Global-history predictor: 2-bit counters indexed by PC xor GHR."""

    name = "gshare"

    def __init__(self, table_bits: int = 10, history_bits: int = 8) -> None:
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._counters: List[int] = [2] * (1 << table_bits)
        self._history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(counter + 1, 3)
        else:
            self._counters[index] = max(counter - 1, 0)
        self._history = ((self._history << 1) | int(taken)) \
            & self._history_mask

    def reset(self) -> None:
        self._counters = [2] * (1 << self.table_bits)
        self._history = 0

    def save_state(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "counters": list(self._counters),
            "history": self._history,
        }

    def load_state(self, data: Dict[str, object]) -> None:
        super().load_state(data)
        counters = [int(c) for c in data["counters"]]
        if len(counters) != len(self._counters):
            raise ValueError("gshare table size mismatch")
        self._counters = counters
        self._history = int(data["history"])


class BranchModel:
    """Misprediction bookkeeping shared by the cycle models.

    Per control operation, :meth:`observe_op` decides whether the
    fetch unit would have followed the right path; on a misprediction
    the caller charges ``penalty`` refill cycles after the branch
    resolves (its issue cycle, since KAHRISMA branches resolve in one
    cycle).
    """

    def __init__(
        self,
        predictor: Optional[BranchPredictor] = None,
        *,
        penalty: int = 3,
        ras_depth: int = 16,
    ) -> None:
        self.predictor = predictor if predictor is not None \
            else BimodalPredictor()
        self.penalty = penalty
        self.ras_depth = ras_depth
        self._ras: List[int] = []
        self.conditional_branches = 0
        self.mispredictions = 0
        self.ras_mispredictions = 0

    def reset(self) -> None:
        self.predictor.reset()
        self._ras = []
        self.conditional_branches = 0
        self.mispredictions = 0
        self.ras_mispredictions = 0

    def signature(self) -> str:
        """Stable configuration string (plan-cache namespacing)."""
        return (
            f"{self.predictor.name}:p{self.penalty}:ras{self.ras_depth}"
        )

    # -- checkpointing ------------------------------------------------------

    def save_state(self) -> Dict[str, object]:
        """Predictor tables, return-address stack and counters."""
        return {
            "predictor": self.predictor.save_state(),
            "ras": list(self._ras),
            "conditional_branches": self.conditional_branches,
            "mispredictions": self.mispredictions,
            "ras_mispredictions": self.ras_mispredictions,
        }

    def load_state(self, data: Dict[str, object]) -> None:
        """Inverse of :meth:`save_state` (same predictor config)."""
        self.predictor.load_state(data["predictor"])
        ras = [int(a) for a in data["ras"]]
        if len(ras) > self.ras_depth:
            raise ValueError("checkpoint RAS deeper than this model's")
        self._ras = ras
        self.conditional_branches = int(data["conditional_branches"])
        self.mispredictions = int(data["mispredictions"])
        self.ras_mispredictions = int(data["ras_mispredictions"])

    # -- per-operation hook -------------------------------------------------

    def observe_op(
        self, op: DecodedOp, regs: Sequence[int], addr: int, size: int
    ) -> bool:
        """Return True if this control op mispredicts.

        ``addr``/``size`` locate the instruction (for RAS bookkeeping
        of calls).  Non-control ops must not be passed in.
        """
        name = op.name
        condition = _CONDITIONS.get(name)
        if condition is not None:
            self.conditional_branches += 1
            a = regs[op.srcs[0]]
            b = regs[op.srcs[1]]
            taken = condition(a, b)
            pc = addr + 4 * op.slot
            if isinstance(self.predictor, BackwardTakenPredictor):
                names = [f.name for f in op.entry.value_fields]
                self.predictor.set_displacement(
                    op.vals[names.index("imm")]
                )
            predicted = self.predictor.predict(pc)
            self.predictor.update(pc, taken)
            if predicted != taken:
                self.mispredictions += 1
                return True
            return False
        if name == "jal":
            if len(self._ras) < self.ras_depth:
                self._ras.append(addr + size)
            return False  # direct target: perfect BTB
        if name == "jalr":
            # Indirect call: push the return address; the target is
            # assumed BTB-predicted (calls go to stable targets).
            if len(self._ras) < self.ras_depth:
                self._ras.append(addr + size)
            return False
        if name == "jr":
            target = regs[op.srcs[0]]
            predicted = self._ras.pop() if self._ras else None
            if predicted != target:
                self.ras_mispredictions += 1
                self.mispredictions += 1
                return True
            return False
        # j, halt, switchtarget, simop: no speculation involved.
        return False

    @property
    def misprediction_rate(self) -> float:
        if not self.conditional_branches:
            return 0.0
        return self.mispredictions / self.conditional_branches

    def summary(self) -> str:
        return (
            f"branches={self.conditional_branches} "
            f"mispredicted={self.mispredictions} "
            f"({self.misprediction_rate * 100:.1f}%), "
            f"ras misses={self.ras_mispredictions}, "
            f"penalty={self.penalty}"
        )
