"""Cycle-approximation models: ILP, AIE, DOE + memory hierarchy."""

from .aie import AieModel
from .base import CycleModel
from .branch import (
    BackwardTakenPredictor,
    BimodalPredictor,
    BranchModel,
    BranchPredictor,
    GsharePredictor,
    NotTakenPredictor,
)
from .doe import DoeModel
from .ilp import IDEAL_MEMORY_DELAY, IlpModel
from .memmodel import (
    Cache,
    ConnectionLimit,
    HierarchyConfig,
    MainMemory,
    MemoryModule,
    build_hierarchy,
    find_cache,
)

__all__ = [
    "AieModel",
    "BackwardTakenPredictor",
    "BimodalPredictor",
    "BranchModel",
    "BranchPredictor",
    "GsharePredictor",
    "NotTakenPredictor",
    "Cache",
    "ConnectionLimit",
    "CycleModel",
    "DoeModel",
    "HierarchyConfig",
    "IDEAL_MEMORY_DELAY",
    "IlpModel",
    "MainMemory",
    "MemoryModule",
    "build_hierarchy",
    "find_cache",
]
