"""Lowering of ADL behaviour fragments to simulation functions.

This is the heart of the TargetGen utility (paper Section V): for each
operation the ADL carries a behaviour fragment, and TargetGen generates
the operation's *simulation function* from it.  We generate genuine
Python source text (inspectable, and emittable as a module by
:mod:`repro.targetgen.codegen`) and ``exec`` it to obtain the callable.

Generated simulation functions have the uniform signature::

    def sim_<name>(state, v, ip, next_ip, regwr, memwr):
        ...
        return <new-ip or None>

``v`` is the tuple of decoded field values (the paper's *decode
structure* content), in :attr:`Operation.value_fields` order.  Register
and memory writes are *buffered* into ``regwr`` / ``memwr`` and applied
by the interpreter only after every parallel operation of the
instruction has computed — semantically identical to the paper's
recursive simulation-function calls (Section V-B), which also perform
all register reads before any write-back.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List

from ..adl.behavior import BehaviorError, parse_behavior
from ..adl.model import Operation

MASK32 = 0xFFFFFFFF

#: Memory-load intrinsics and the local aliases they compile to.
_LOADS = {"M1": "ld1", "M2": "ld2", "M4": "ld4"}
_STORE_SIZES = {"S1": 1, "S2": 2, "S4": 4}
_HELPERS = {"s8", "s16", "s32", "sdiv", "srem"}


def s8(x: int) -> int:
    x &= 0xFF
    return x - 0x100 if x & 0x80 else x


def s16(x: int) -> int:
    x &= 0xFFFF
    return x - 0x10000 if x & 0x8000 else x


def s32(x: int) -> int:
    x &= MASK32
    return x - 0x100000000 if x & 0x80000000 else x


def sdiv(a: int, b: int) -> int:
    """Truncating signed division; division by zero yields -1."""
    a, b = s32(a), s32(b)
    if b == 0:
        return -1
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def srem(a: int, b: int) -> int:
    """Truncating signed remainder; by zero yields the dividend."""
    a, b = s32(a), s32(b)
    if b == 0:
        return a
    return a - sdiv(a, b) * b


#: Globals visible to generated simulation functions.
SIM_GLOBALS: Dict[str, object] = {
    "s8": s8,
    "s16": s16,
    "s32": s32,
    "sdiv": sdiv,
    "srem": srem,
}


class _Emitter:
    """Translate validated behaviour AST nodes into Python source."""

    def __init__(self, op: Operation) -> None:
        self.op = op
        self.field_names = {f.name for f in op.value_fields}
        self.locals: set = set()
        self.uses_regs = False
        self.uses_loads: set = set()

    # -- expressions ---------------------------------------------------

    def expr(self, node: ast.expr) -> str:
        if isinstance(node, ast.Constant):
            return repr(node.value)
        if isinstance(node, ast.Name):
            if node.id == "NIP":
                return "next_ip"
            if node.id == "IP":
                return "ip"
            if node.id in self.field_names or node.id in self.locals:
                return node.id
            raise BehaviorError(
                f"operation {self.op.name!r}: unknown name {node.id!r}"
            )
        if isinstance(node, ast.BinOp):
            return f"({self.expr(node.left)} {_BINOPS[type(node.op)]} {self.expr(node.right)})"
        if isinstance(node, ast.UnaryOp):
            return f"({_UNARYOPS[type(node.op)]}{self.expr(node.operand)})"
        if isinstance(node, ast.BoolOp):
            joiner = " and " if isinstance(node.op, ast.And) else " or "
            return "(" + joiner.join(self.expr(v) for v in node.values) + ")"
        if isinstance(node, ast.Compare):
            parts = [self.expr(node.left)]
            for op_, comp in zip(node.ops, node.comparators):
                parts.append(_CMPOPS[type(op_)])
                parts.append(self.expr(comp))
            return "(" + " ".join(parts) + ")"
        if isinstance(node, ast.IfExp):
            return (
                f"({self.expr(node.body)} if {self.expr(node.test)} "
                f"else {self.expr(node.orelse)})"
            )
        if isinstance(node, ast.Call):
            return self._call_expr(node)
        raise BehaviorError(
            f"operation {self.op.name!r}: unsupported expression "
            f"{type(node).__name__}"
        )

    def _call_expr(self, node: ast.Call) -> str:
        name = node.func.id  # validated to be ast.Name by parse_behavior
        args = [self.expr(a) for a in node.args]
        if name == "R":
            self.uses_regs = True
            return f"regs[{args[0]}]"
        if name in _LOADS:
            self.uses_loads.add(name)
            return f"{_LOADS[name]}({args[0]})"
        if name in _HELPERS:
            return f"{name}({', '.join(args)})"
        raise BehaviorError(
            f"operation {self.op.name!r}: {name}() is not a value intrinsic"
        )

    # -- statements ----------------------------------------------------

    def stmt(self, node: ast.stmt, indent: str, out: List[str]) -> None:
        if isinstance(node, ast.Pass):
            out.append(f"{indent}pass")
            return
        if isinstance(node, ast.Assign):
            target = node.targets[0].id  # validated as plain Name
            self.locals.add(target)
            out.append(f"{indent}{target} = {self.expr(node.value)}")
            return
        if isinstance(node, ast.If):
            out.append(f"{indent}if {self.expr(node.test)}:")
            for sub in node.body:
                self.stmt(sub, indent + "    ", out)
            if node.orelse:
                out.append(f"{indent}else:")
                for sub in node.orelse:
                    self.stmt(sub, indent + "    ", out)
            return
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            self._call_stmt(node.value, indent, out)
            return
        raise BehaviorError(
            f"operation {self.op.name!r}: unsupported statement "
            f"{type(node).__name__}"
        )

    def _call_stmt(self, node: ast.Call, indent: str, out: List[str]) -> None:
        name = node.func.id
        args = [self.expr(a) for a in node.args]
        if name == "W":
            out.append(
                f"{indent}regwr.append(({args[0]}, ({args[1]}) & {MASK32}))"
            )
        elif name in _STORE_SIZES:
            size = _STORE_SIZES[name]
            out.append(f"{indent}memwr.append(({size}, {args[0]}, {args[1]}))")
        elif name == "BR":
            out.append(f"{indent}return next_ip + (({args[0]}) << 2)")
        elif name == "JABS":
            out.append(f"{indent}return ({args[0]}) & {MASK32}")
        elif name == "SWITCH":
            out.append(f"{indent}state.switch_isa({args[0]})")
        elif name == "SIM":
            out.append(f"{indent}return state.simop({args[0]})")
        elif name == "HALT":
            out.append(f"{indent}state.halted = True")
        else:
            # A value intrinsic used for its side effect — emit as-is.
            out.append(f"{indent}{self._call_expr(node)}")


_BINOPS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.FloorDiv: "//",
    ast.Mod: "%", ast.LShift: "<<", ast.RShift: ">>",
    ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^",
}
_UNARYOPS = {ast.USub: "-", ast.Invert: "~", ast.Not: "not "}
_CMPOPS = {
    ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
    ast.Gt: ">", ast.GtE: ">=",
}


def sim_function_name(op: Operation) -> str:
    return f"sim_{op.name}"


def generate_sim_function_source(op: Operation) -> str:
    """Generate the Python source of one operation's simulation function."""
    tree = parse_behavior(op.name, op.behavior)
    emitter = _Emitter(op)
    body: List[str] = []
    for stmt in tree.body:
        emitter.stmt(stmt, "    ", body)

    prologue: List[str] = []
    if emitter.uses_regs:
        prologue.append("    regs = state.regs")
    for intrinsic in sorted(emitter.uses_loads):
        alias = _LOADS[intrinsic]
        size = intrinsic[1]
        prologue.append(f"    {alias} = state.mem.load{size}")
    for index, f in enumerate(op.value_fields):
        prologue.append(f"    {f.name} = v[{index}]")

    lines = [f"def {sim_function_name(op)}(state, v, ip, next_ip, regwr, memwr):"]
    doc = op.behavior.replace("\n", "; ")
    lines.append(f'    """Generated from ADL behaviour: {doc}"""')
    lines.extend(prologue)
    lines.extend(body)
    if not body or not body[-1].lstrip().startswith("return"):
        lines.append("    return None")
    return "\n".join(lines) + "\n"


def compile_sim_function(op: Operation) -> Callable:
    """Compile one operation's behaviour into its simulation function."""
    source = generate_sim_function_source(op)
    namespace: Dict[str, object] = dict(SIM_GLOBALS)
    exec(compile(source, f"<targetgen:{op.name}>", "exec"), namespace)
    return namespace[sim_function_name(op)]
