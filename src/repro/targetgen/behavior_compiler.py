"""Lowering of ADL behaviour fragments to simulation functions.

This is the heart of the TargetGen utility (paper Section V): for each
operation the ADL carries a behaviour fragment, and TargetGen generates
the operation's *simulation function* from it.  We generate genuine
Python source text (inspectable, and emittable as a module by
:mod:`repro.targetgen.codegen`) and ``exec`` it to obtain the callable.

Generated simulation functions have the uniform signature::

    def sim_<name>(state, v, ip, next_ip, regwr, memwr):
        ...
        return <new-ip or None>

``v`` is the tuple of decoded field values (the paper's *decode
structure* content), in :attr:`Operation.value_fields` order.  Register
and memory writes are *buffered* into ``regwr`` / ``memwr`` and applied
by the interpreter only after every parallel operation of the
instruction has computed — semantically identical to the paper's
recursive simulation-function calls (Section V-B), which also perform
all register reads before any write-back.

For the superblock translation engine a second, *direct* variant is
generated where provably safe::

    def simd_<name>(state, v, ip, next_ip):
        ...  # writes registers/memory immediately, no buffers

Buffering exists to give parallel VLIW slots read-before-write
semantics; a single-issue instruction only needs it when the behaviour
itself reads a register or memory location *after* writing one in an
earlier statement.  :func:`direct_eligible` performs that (conservative,
source-order) analysis; control-flow operations are never eligible.
Inside a superblock's straight-line body, calling the direct variant is
observably identical to buffer-then-commit, and roughly halves the
per-operation Python work.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Tuple

from ..adl.behavior import BehaviorError, parse_behavior
from ..adl.model import Operation

MASK32 = 0xFFFFFFFF

#: Memory-load intrinsics and the local aliases they compile to.
_LOADS = {"M1": "ld1", "M2": "ld2", "M4": "ld4"}
_STORE_SIZES = {"S1": 1, "S2": 2, "S4": 4}
_HELPERS = {"s8", "s16", "s32", "sdiv", "srem"}


def s8(x: int) -> int:
    x &= 0xFF
    return x - 0x100 if x & 0x80 else x


def s16(x: int) -> int:
    x &= 0xFFFF
    return x - 0x10000 if x & 0x8000 else x


def s32(x: int) -> int:
    x &= MASK32
    return x - 0x100000000 if x & 0x80000000 else x


def sdiv(a: int, b: int) -> int:
    """Truncating signed division; division by zero yields -1."""
    a, b = s32(a), s32(b)
    if b == 0:
        return -1
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def srem(a: int, b: int) -> int:
    """Truncating signed remainder; by zero yields the dividend."""
    a, b = s32(a), s32(b)
    if b == 0:
        return a
    return a - sdiv(a, b) * b


#: Globals visible to generated simulation functions.
SIM_GLOBALS: Dict[str, object] = {
    "s8": s8,
    "s16": s16,
    "s32": s32,
    "sdiv": sdiv,
    "srem": srem,
}


class _Emitter:
    """Translate validated behaviour AST nodes into Python source.

    ``direct`` switches W/S lowering from buffer appends to immediate
    register/memory writes (the superblock engine's translated mode).
    ``subst`` maps field names (and ``IP``/``NIP``) to literal source
    text, used when inlining an op instance into a superblock body;
    ``local_prefix`` keeps behaviour-local variables of different
    inlined instructions from colliding.
    """

    def __init__(
        self,
        op: Operation,
        *,
        direct: bool = False,
        subst: Optional[Dict[str, str]] = None,
        local_prefix: str = "",
    ) -> None:
        self.op = op
        self.direct = direct
        self.subst = subst
        self.local_prefix = local_prefix
        self.field_names = {f.name for f in op.value_fields}
        self.locals: set = set()
        self.uses_regs = False
        self.uses_loads: set = set()
        self.uses_stores: set = set()

    # -- expressions ---------------------------------------------------

    def expr(self, node: ast.expr) -> str:
        if isinstance(node, ast.Constant):
            return repr(node.value)
        if isinstance(node, ast.Name):
            subst = self.subst
            if node.id == "NIP":
                return subst["NIP"] if subst else "next_ip"
            if node.id == "IP":
                return subst["IP"] if subst else "ip"
            if node.id in self.field_names:
                return subst[node.id] if subst else node.id
            if node.id in self.locals:
                return self.local_prefix + node.id
            raise BehaviorError(
                f"operation {self.op.name!r}: unknown name {node.id!r}"
            )
        if isinstance(node, ast.BinOp):
            return f"({self.expr(node.left)} {_BINOPS[type(node.op)]} {self.expr(node.right)})"
        if isinstance(node, ast.UnaryOp):
            return f"({_UNARYOPS[type(node.op)]}{self.expr(node.operand)})"
        if isinstance(node, ast.BoolOp):
            joiner = " and " if isinstance(node.op, ast.And) else " or "
            return "(" + joiner.join(self.expr(v) for v in node.values) + ")"
        if isinstance(node, ast.Compare):
            parts = [self.expr(node.left)]
            for op_, comp in zip(node.ops, node.comparators):
                parts.append(_CMPOPS[type(op_)])
                parts.append(self.expr(comp))
            return "(" + " ".join(parts) + ")"
        if isinstance(node, ast.IfExp):
            return (
                f"({self.expr(node.body)} if {self.expr(node.test)} "
                f"else {self.expr(node.orelse)})"
            )
        if isinstance(node, ast.Call):
            return self._call_expr(node)
        raise BehaviorError(
            f"operation {self.op.name!r}: unsupported expression "
            f"{type(node).__name__}"
        )

    def _call_expr(self, node: ast.Call) -> str:
        name = node.func.id  # validated to be ast.Name by parse_behavior
        args = [self.expr(a) for a in node.args]
        if name == "R":
            self.uses_regs = True
            return f"regs[{args[0]}]"
        if name in _LOADS:
            self.uses_loads.add(name)
            return f"{_LOADS[name]}({args[0]})"
        if name in _HELPERS:
            return f"{name}({', '.join(args)})"
        raise BehaviorError(
            f"operation {self.op.name!r}: {name}() is not a value intrinsic"
        )

    # -- statements ----------------------------------------------------

    def stmt(self, node: ast.stmt, indent: str, out: List[str]) -> None:
        if isinstance(node, ast.Pass):
            out.append(f"{indent}pass")
            return
        if isinstance(node, ast.Assign):
            target = node.targets[0].id  # validated as plain Name
            value = self.expr(node.value)  # before target becomes local
            self.locals.add(target)
            out.append(f"{indent}{self.local_prefix}{target} = {value}")
            return
        if isinstance(node, ast.If):
            out.append(f"{indent}if {self.expr(node.test)}:")
            for sub in node.body:
                self.stmt(sub, indent + "    ", out)
            if node.orelse:
                out.append(f"{indent}else:")
                for sub in node.orelse:
                    self.stmt(sub, indent + "    ", out)
            return
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            self._call_stmt(node.value, indent, out)
            return
        raise BehaviorError(
            f"operation {self.op.name!r}: unsupported statement "
            f"{type(node).__name__}"
        )

    def _call_stmt(self, node: ast.Call, indent: str, out: List[str]) -> None:
        name = node.func.id
        args = [self.expr(a) for a in node.args]
        if name == "W":
            if self.direct:
                # Immediate write; the guard keeps r0 hard-wired to 0
                # (folded away when the target register is a literal).
                if args[0].isdigit():
                    if int(args[0]) != 0:
                        self.uses_regs = True
                        out.append(
                            f"{indent}regs[{args[0]}] = "
                            f"({args[1]}) & {MASK32}"
                        )
                    return
                self.uses_regs = True
                out.append(f"{indent}if {args[0]}:")
                out.append(
                    f"{indent}    regs[{args[0]}] = ({args[1]}) & {MASK32}"
                )
            else:
                out.append(
                    f"{indent}regwr.append(({args[0]}, ({args[1]}) & {MASK32}))"
                )
        elif name in _STORE_SIZES:
            size = _STORE_SIZES[name]
            if self.direct:
                self.uses_stores.add(size)
                out.append(f"{indent}st{size}({args[0]}, {args[1]})")
            else:
                out.append(
                    f"{indent}memwr.append(({size}, {args[0]}, {args[1]}))"
                )
        elif name == "BR":
            nip = self.subst["NIP"] if self.subst else "next_ip"
            out.append(f"{indent}return {nip} + (({args[0]}) << 2)")
        elif name == "JABS":
            out.append(f"{indent}return ({args[0]}) & {MASK32}")
        elif name == "SWITCH":
            out.append(f"{indent}state.switch_isa({args[0]})")
        elif name == "SIM":
            out.append(f"{indent}return state.simop({args[0]})")
        elif name == "HALT":
            out.append(f"{indent}state.halted = True")
        else:
            # A value intrinsic used for its side effect — emit as-is.
            out.append(f"{indent}{self._call_expr(node)}")


_BINOPS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.FloorDiv: "//",
    ast.Mod: "%", ast.LShift: "<<", ast.RShift: ">>",
    ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^",
}
_UNARYOPS = {ast.USub: "-", ast.Invert: "~", ast.Not: "not "}
_CMPOPS = {
    ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
    ast.Gt: ">", ast.GtE: ">=",
}


def sim_function_name(op: Operation) -> str:
    return f"sim_{op.name}"


def direct_function_name(op: Operation) -> str:
    return f"simd_{op.name}"


#: Operation kinds that may get a direct variant.  Control-transfer,
#: simop, switch and halt operations always run buffered (they are
#: superblock terminators anyway); NOPs need no function at all.
_DIRECT_KINDS = frozenset(("alu", "load", "store"))

_WRITE_INTRINSICS = frozenset(("W",)) | frozenset(_STORE_SIZES)
_READ_INTRINSICS = frozenset(("R",)) | frozenset(_LOADS)


def _contains_intrinsic(node: ast.AST, names: frozenset) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id in names
        ):
            return True
    return False


def direct_eligible(op: Operation) -> bool:
    """Whether immediate (unbuffered) writes preserve ``op``'s semantics.

    Within one statement Python evaluates a call's arguments before the
    write they feed, so reads *inside* a writing statement are safe.
    Unsafe is only a register/memory read in a *later* statement after
    some earlier statement wrote — buffered semantics would return the
    pre-instruction value, direct writes the new one.  The check walks
    statements in source order (branch arms sequentially, which is
    conservative) and rejects on the first read-after-write.
    """
    if op.kind not in _DIRECT_KINDS:
        return False
    try:
        tree = parse_behavior(op.name, op.behavior)
    except BehaviorError:
        return False

    def scan(stmts, wrote: bool) -> Tuple[bool, bool]:
        """Returns (eligible, wrote_after)."""
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                if wrote and _contains_intrinsic(stmt.test, _READ_INTRINSICS):
                    return False, wrote
                ok, wrote = scan(stmt.body, wrote)
                if not ok:
                    return False, wrote
                ok, wrote = scan(stmt.orelse, wrote)
                if not ok:
                    return False, wrote
                continue
            if wrote and _contains_intrinsic(stmt, _READ_INTRINSICS):
                return False, wrote
            if _contains_intrinsic(stmt, _WRITE_INTRINSICS):
                wrote = True
        return True, wrote

    ok, _ = scan(tree.body, False)
    return ok


def generate_direct_sim_source(op: Operation) -> Optional[str]:
    """Source of the direct variant, or None when not eligible."""
    if not direct_eligible(op):
        return None
    tree = parse_behavior(op.name, op.behavior)
    emitter = _Emitter(op, direct=True)
    body: List[str] = []
    for stmt in tree.body:
        emitter.stmt(stmt, "    ", body)

    prologue: List[str] = []
    if emitter.uses_regs:
        prologue.append("    regs = state.regs")
    for intrinsic in sorted(emitter.uses_loads):
        alias = _LOADS[intrinsic]
        size = intrinsic[1]
        prologue.append(f"    {alias} = state.mem.load{size}")
    for size in sorted(emitter.uses_stores):
        prologue.append(f"    st{size} = state.mem.store{size}")
    for index, f in enumerate(op.value_fields):
        prologue.append(f"    {f.name} = v[{index}]")

    lines = [f"def {direct_function_name(op)}(state, v, ip, next_ip):"]
    doc = op.behavior.replace("\n", "; ")
    lines.append(f'    """Direct-write variant generated from: {doc}"""')
    lines.extend(prologue)
    lines.extend(body)
    return "\n".join(lines) + "\n"


def compile_direct_sim_function(op: Operation) -> Optional[Callable]:
    """Compile the direct variant; None when the op is not eligible."""
    source = generate_direct_sim_source(op)
    if source is None:
        return None
    namespace: Dict[str, object] = dict(SIM_GLOBALS)
    exec(compile(source, f"<targetgen-direct:{op.name}>", "exec"), namespace)
    return namespace[direct_function_name(op)]


#: Parsed behaviour trees, memoised for the superblock translator (it
#: inlines the same few dozen operations thousands of times; the tree
#: is read-only so sharing is safe).
_PARSE_CACHE: Dict[Tuple[str, str], ast.Module] = {}


def _parse_cached(op: Operation) -> ast.Module:
    key = (op.name, op.behavior)
    tree = _PARSE_CACHE.get(key)
    if tree is None:
        tree = parse_behavior(op.name, op.behavior)
        _PARSE_CACHE[key] = tree
    return tree


#: (lines, uses_regs, load intrinsics, store sizes) per op instance.
InlinedStmts = Tuple[Tuple[str, ...], bool, frozenset, frozenset]

_INLINE_CACHE: Dict[Tuple, InlinedStmts] = {}
_USES_IP: Dict[Tuple[str, str], bool] = {}


def inline_direct_stmts(
    op: Operation,
    values: Tuple[int, ...],
    ip: int,
    next_ip: int,
    *,
    indent: str = "    ",
) -> InlinedStmts:
    """Inline one op *instance* as direct-write statements.

    The superblock translator calls this for every instruction of a
    straight-line body: decoded field values, the instruction address
    and its successor are substituted as integer literals, turning the
    whole block into one flat Python function with no per-instruction
    calls.  The caller must have checked eligibility (the op's
    ``direct_fn`` is not None).

    Behaviour-local variables get a fixed ``_t_`` prefix: validation
    guarantees locals are assigned before read, so re-using the names
    across inlined instructions is safe.  Results are memoised per
    ``(op, values)`` — real programs repeat the same instruction
    encodings constantly — except for the rare behaviour that mentions
    ``IP``/``NIP``, whose literals differ per address.
    """
    op_key = (op.name, op.behavior)
    uses_ip = _USES_IP.get(op_key)
    if uses_ip is None:
        uses_ip = any(
            isinstance(node, ast.Name) and node.id in ("IP", "NIP")
            for node in ast.walk(_parse_cached(op))
        )
        _USES_IP[op_key] = uses_ip
    if not uses_ip:
        key = (op_key, values, indent)
        cached = _INLINE_CACHE.get(key)
        if cached is not None:
            return cached
    tree = _parse_cached(op)
    subst = {
        f.name: repr(values[index])
        for index, f in enumerate(op.value_fields)
    }
    subst["IP"] = repr(ip)
    subst["NIP"] = repr(next_ip)
    emitter = _Emitter(op, direct=True, subst=subst, local_prefix="_t_")
    out: List[str] = []
    for stmt in tree.body:
        emitter.stmt(stmt, indent, out)
    result: InlinedStmts = (
        tuple(out),
        emitter.uses_regs,
        frozenset(emitter.uses_loads),
        frozenset(emitter.uses_stores),
    )
    if not uses_ip:
        _INLINE_CACHE[(op_key, values, indent)] = result
    return result


def _resolve_literal(
    node: ast.expr, fields: Dict[str, int]
) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name):
        return fields.get(node.id)
    return None


def _collect_reads(node: ast.AST):
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
            if sub.func.id == "R":
                yield ("reg", sub.args[0])
            elif sub.func.id in _LOADS:
                yield ("mem", None)


def _control_inline_safe(
    stmts, written: set, fields: Dict[str, int]
) -> Optional[set]:
    """Per-instance read-after-write check with literal register numbers.

    The generic :func:`direct_eligible` must reject e.g. ``jalr`` (its
    ``JABS(R(rs1))`` follows ``W(rd, NIP)``), but with the decoded
    field values known the write target and the later read are concrete
    registers — the hazard only exists when they collide.  Returns the
    written-register set, or None when direct lowering is unsafe.
    """
    for stmt in stmts:
        if isinstance(stmt, ast.If):
            for kind, arg in _collect_reads(stmt.test):
                if written:
                    reg = _resolve_literal(arg, fields) if kind == "reg" else None
                    if kind == "mem" or reg is None or reg in written:
                        return None
            w_then = _control_inline_safe(stmt.body, set(written), fields)
            if w_then is None:
                return None
            w_else = _control_inline_safe(stmt.orelse, set(written), fields)
            if w_else is None:
                return None
            written |= w_then | w_else
            continue
        for kind, arg in _collect_reads(stmt):
            if written:
                reg = _resolve_literal(arg, fields) if kind == "reg" else None
                if kind == "mem" or reg is None or reg in written:
                    return None
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
            ):
                if sub.func.id == "W":
                    target = _resolve_literal(sub.args[0], fields)
                    if target is None:
                        return None
                    if target != 0:
                        written.add(target)
                elif sub.func.id in _STORE_SIZES:
                    return None  # control ops never store; stay buffered
    return written


def inline_control_stmts(
    op: Operation,
    values: Tuple[int, ...],
    ip: int,
    next_ip: int,
    *,
    indent: str = "    ",
) -> Optional[InlinedStmts]:
    """Inline a branch/jump terminator instance as direct statements.

    Every path through the emitted lines ends in ``return <ip>`` (a
    trailing fall-through return is appended), so a superblock's whole
    body *and* terminator collapse into one flat function.  Returns
    None when the op is not a plain control transfer or when the
    per-instance read-after-write check fails.
    """
    if op.kind != "branch":
        return None
    tree = _parse_cached(op)
    fields = {
        f.name: values[index] for index, f in enumerate(op.value_fields)
    }
    fields["IP"] = ip
    fields["NIP"] = next_ip
    if _control_inline_safe(tree.body, set(), fields) is None:
        return None
    subst = {name: repr(value) for name, value in fields.items()}
    emitter = _Emitter(op, direct=True, subst=subst, local_prefix="_t_")
    out: List[str] = []
    try:
        for stmt in tree.body:
            emitter.stmt(stmt, indent, out)
    except BehaviorError:
        return None
    out.append(f"{indent}return {next_ip}")
    return (
        tuple(out),
        emitter.uses_regs,
        frozenset(emitter.uses_loads),
        frozenset(emitter.uses_stores),
    )


def generate_sim_function_source(op: Operation) -> str:
    """Generate the Python source of one operation's simulation function."""
    tree = parse_behavior(op.name, op.behavior)
    emitter = _Emitter(op)
    body: List[str] = []
    for stmt in tree.body:
        emitter.stmt(stmt, "    ", body)

    prologue: List[str] = []
    if emitter.uses_regs:
        prologue.append("    regs = state.regs")
    for intrinsic in sorted(emitter.uses_loads):
        alias = _LOADS[intrinsic]
        size = intrinsic[1]
        prologue.append(f"    {alias} = state.mem.load{size}")
    for index, f in enumerate(op.value_fields):
        prologue.append(f"    {f.name} = v[{index}]")

    lines = [f"def {sim_function_name(op)}(state, v, ip, next_ip, regwr, memwr):"]
    doc = op.behavior.replace("\n", "; ")
    lines.append(f'    """Generated from ADL behaviour: {doc}"""')
    lines.extend(prologue)
    lines.extend(body)
    if not body or not body[-1].lstrip().startswith("return"):
        lines.append("    return None")
    return "\n".join(lines) + "\n"


def compile_sim_function(op: Operation) -> Callable:
    """Compile one operation's behaviour into its simulation function."""
    source = generate_sim_function_source(op)
    namespace: Dict[str, object] = dict(SIM_GLOBALS)
    exec(compile(source, f"<targetgen:{op.name}>", "exec"), namespace)
    return namespace[sim_function_name(op)]
