"""Operation tables generated from the ADL.

The paper's simulator keeps one operation table per ISA; each entry
contains the operation's name, size, fields, implicit registers and a
pointer to its simulation function (Section V).  Only the table of the
currently active ISA is used during instruction detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..adl.model import Architecture, Isa, Operation
from ..adl.validate import check_architecture
from .behavior_compiler import (
    compile_direct_sim_function,
    compile_sim_function,
)


@dataclass(frozen=True)
class OpTableEntry:
    """One decoded-operation descriptor plus its simulation function."""

    op: Operation
    sim_fn: Callable
    #: Decode-time extraction order (mirrors Operation.value_fields).
    value_fields: Tuple = ()
    #: Indices into the decoded value tuple holding source / destination
    #: register numbers (precomputed for the cycle models).
    src_value_indices: Tuple[int, ...] = ()
    dst_value_indices: Tuple[int, ...] = ()
    #: Unbuffered simulation function for single-issue straight-line
    #: execution (superblock engine); None when not provably safe.
    direct_fn: Optional[Callable] = None

    def decode(self, word: int) -> Tuple[int, ...]:
        """Extract all value fields of ``word`` (the decode structure)."""
        return tuple(f.extract(word) for f in self.value_fields)

    def encode(self, values: Dict[str, int]) -> int:
        """Inverse of :meth:`decode`: build the operation word."""
        word = self.op.const_value
        for f in self.value_fields:
            word |= f.insert(values[f.name])
        return word


class OperationTable:
    """Detection and decode table for one ISA."""

    def __init__(self, isa: Isa) -> None:
        self.isa = isa
        self.entries: List[OpTableEntry] = []
        self.by_name: Dict[str, OpTableEntry] = {}
        for op in isa.operations:
            vfields = op.value_fields
            names = [f.name for f in vfields]
            entry = OpTableEntry(
                op=op,
                sim_fn=compile_sim_function(op),
                direct_fn=compile_direct_sim_function(op),
                value_fields=vfields,
                src_value_indices=tuple(names.index(n) for n in op.src_fields),
                dst_value_indices=tuple(names.index(n) for n in op.dst_fields),
            )
            self.entries.append(entry)
            self.by_name[op.name] = entry
        # Fast path: every KAHRISMA operation is distinguished by the
        # opcode byte; fall back to the generic constant-field scan if a
        # future ISA breaks that property.
        self._opcode_index: Optional[Dict[int, OpTableEntry]] = None
        self._build_opcode_index()

    def _build_opcode_index(self) -> None:
        index: Dict[int, OpTableEntry] = {}
        for entry in self.entries:
            try:
                opcode_field = entry.op.field("opcode")
            except KeyError:
                self._opcode_index = None
                return
            if (opcode_field.hi, opcode_field.lo) != (31, 24):
                self._opcode_index = None
                return
            key = opcode_field.const
            if key in index:
                self._opcode_index = None
                return
            index[key] = entry
        self._opcode_index = index

    def detect(self, word: int) -> Optional[OpTableEntry]:
        """Find the operation whose constant fields match ``word``.

        This is the paper's *instruction detection* step.  Returns
        ``None`` for an undefined encoding.
        """
        index = self._opcode_index
        if index is not None:
            entry = index.get((word >> 24) & 0xFF)
            if entry is not None and entry.op.matches(word):
                return entry
            return None
        for entry in self.entries:
            if entry.op.matches(word):
                return entry
        return None


class TargetDescription:
    """All per-architecture tables the simulator needs, generated once.

    This object is TargetGen's output for the simulator: the register
    table and one operation table per ISA.
    """

    def __init__(self, arch: Architecture, *, validate: bool = True) -> None:
        if validate:
            check_architecture(arch)
        self.arch = arch
        self.register_table: Tuple[str, ...] = tuple(
            r.name for r in arch.register_file.registers
        )
        self.optables: Dict[int, OperationTable] = {}
        shared: Dict[int, OperationTable] = {}
        for isa in arch.isas:
            key = id(isa.operations)
            if key in shared and shared[key].isa.operations is isa.operations:
                # Re-use compiled simulation functions across ISAs that
                # share an operation tuple, but keep a per-ISA table so
                # issue widths stay distinct.
                base = shared[key]
                table = OperationTable.__new__(OperationTable)
                table.isa = isa
                table.entries = base.entries
                table.by_name = base.by_name
                table._opcode_index = base._opcode_index
            else:
                table = OperationTable(isa)
                shared[key] = table
            self.optables[isa.ident] = table

    def optable(self, isa_id: int) -> OperationTable:
        return self.optables[isa_id]


_CACHE: Dict[int, TargetDescription] = {}


def build_target(arch: Architecture) -> TargetDescription:
    """Build (and memoise) the target description for ``arch``."""
    key = id(arch)
    target = _CACHE.get(key)
    if target is None or target.arch is not arch:
        target = TargetDescription(arch)
        _CACHE[key] = target
    return target
