"""TargetGen: retargeting-code generation from the ADL (paper Fig. 2/3).

Consumes an :class:`~repro.adl.model.Architecture` and produces the
simulator's register table, per-ISA operation tables and simulation
functions, the libc stub assembly file, and — mirroring the paper's
source-fragment generation — an emittable Python module with the same
content.
"""

from .asmgen import generate_libc_stubs, mangle
from .behavior_compiler import (
    compile_sim_function,
    generate_sim_function_source,
    s8,
    s16,
    s32,
    sdiv,
    srem,
)
from .docgen import generate_isa_reference, write_isa_reference
from .codegen import (
    generate_simulator_module,
    load_generated_module,
    write_simulator_module,
)
from .optable import OperationTable, OpTableEntry, TargetDescription, build_target

__all__ = [
    "OperationTable",
    "OpTableEntry",
    "TargetDescription",
    "build_target",
    "compile_sim_function",
    "generate_isa_reference",
    "generate_libc_stubs",
    "generate_sim_function_source",
    "generate_simulator_module",
    "load_generated_module",
    "mangle",
    "s8",
    "s16",
    "s32",
    "sdiv",
    "srem",
    "write_isa_reference",
    "write_simulator_module",
]
