"""ISA reference documentation generated from the ADL.

Another TargetGen output: a Markdown reference of every ISA and
operation — encoding diagram, operand syntax, behaviour, latency and
functional unit — rendered from the same architecture description that
drives the compiler, assembler and simulator.  ``kahrisma targetgen
--emit-doc isa.md`` regenerates it.
"""

from __future__ import annotations

import io
from typing import List

from ..adl.model import Architecture, Operation


def _encoding_diagram(op: Operation) -> str:
    """Render the bit layout, MSB first, e.g.
    ``[31:24 opcode=0x01][23:19 rd][18:14 rs1][13:9 rs2][8:0 0]``."""
    parts: List[str] = []
    for field in sorted(op.fields, key=lambda f: -f.hi):
        if field.role == "pad":
            label = "0"
        elif field.const is not None:
            label = f"{field.name}={field.const:#x}"
        else:
            label = field.name + ("±" if field.signed else "")
        parts.append(f"[{field.hi}:{field.lo} {label}]")
    return "".join(parts)


def _syntax(op: Operation) -> str:
    if not op.asm_operands:
        return op.name
    return f"{op.name} " + ", ".join(op.asm_operands)


def generate_isa_reference(arch: Architecture) -> str:
    """Render the Markdown ISA reference for ``arch``."""
    out = io.StringIO()
    out.write(f"# {arch.name} — ISA reference\n\n")
    out.write("Generated from the architecture description by "
              "`repro.targetgen.docgen`; do not edit by hand.\n\n")

    out.write("## Instruction set architectures\n\n")
    out.write("| id | name | issue width | instruction size | EDPEs |\n")
    out.write("|---|---|---|---|---|\n")
    for isa in arch.isas:
        out.write(
            f"| {isa.ident} | `{isa.name}` | {isa.issue_width} | "
            f"{isa.instr_size} bytes | {isa.resources} |\n"
        )
    out.write(
        "\nAn n-issue instruction is n consecutive 32-bit operation "
        "words; `switchtarget <id>` activates another ISA at runtime.\n\n"
    )

    out.write("## Registers\n\n")
    out.write("| register | role |\n|---|---|\n")
    for reg in arch.register_file.registers:
        role = reg.role or "general purpose"
        out.write(f"| `{reg.name}` | {role} |\n")
    out.write("\n")

    out.write("## Operations\n\n")
    out.write("All ISAs share one operation set; latencies are in "
              "cycles (memory operations additionally pay the "
              "memory-hierarchy delay).\n\n")
    operations = arch.isas[0].operations
    by_kind: dict = {}
    for op in operations:
        by_kind.setdefault(op.kind, []).append(op)
    kind_titles = {
        "alu": "Arithmetic / logic",
        "load": "Memory loads",
        "store": "Memory stores",
        "branch": "Control flow",
        "switch": "Reconfiguration",
        "simop": "Simulator services",
        "nop": "No-operation",
        "halt": "Machine control",
    }
    for kind in ("alu", "load", "store", "branch", "switch", "simop",
                 "nop", "halt"):
        ops = by_kind.get(kind)
        if not ops:
            continue
        out.write(f"### {kind_titles[kind]}\n\n")
        for op in ops:
            out.write(f"#### `{_syntax(op)}`\n\n")
            out.write(f"- encoding: `{_encoding_diagram(op)}`\n")
            out.write(f"- behaviour: `{op.behavior.replace(chr(10), '; ')}`\n")
            out.write(f"- latency: {op.delay} cycle"
                      f"{'s' if op.delay != 1 else ''}, unit: "
                      f"`{op.fu_class}`\n")
            if op.implicit_reads:
                regs = ", ".join(f"r{r}" for r in op.implicit_reads)
                out.write(f"- implicitly reads: {regs}\n")
            if op.implicit_writes:
                regs = ", ".join(f"r{r}" for r in op.implicit_writes)
                out.write(f"- implicitly writes: {regs}\n")
            out.write("\n")
    return out.getvalue()


def write_isa_reference(arch: Architecture, path: str) -> str:
    text = generate_isa_reference(arch)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return text
