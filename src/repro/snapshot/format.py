"""Checkpoint file format: versioned, digest-checked JSON envelope.

A checkpoint is one self-contained file::

    {
      "schema":  "kahrisma-checkpoint",
      "version": 1,
      "digest":  "<sha256 of the canonical payload encoding>",
      "payload": { ... }
    }

The payload (see :mod:`repro.snapshot.capture`) contains only JSON
types — binary data (memory pages, stdout, input) is zlib+base64
encoded by the capture layer.  The digest is computed over the
*canonical* payload encoding (sorted keys, no whitespace), so any
corruption or hand-editing is detected at load time, and two
checkpoints of identical simulator state are bitwise-identical files —
the property the determinism tests build on.

``version`` is bumped on any incompatible payload change; readers
reject versions they do not understand rather than guessing.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict

SCHEMA = "kahrisma-checkpoint"
FORMAT_VERSION = 1

#: Conventional checkpoint file suffix (``kahrisma run --checkpoint-dir``).
FILE_SUFFIX = ".kchk"


class CheckpointError(Exception):
    """A checkpoint could not be written, parsed, verified or applied."""


def _canonical(payload: Dict[str, object]) -> bytes:
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"payload is not serialisable: {exc}") from exc


def payload_digest(payload: Dict[str, object]) -> str:
    """sha256 hex digest of the canonical payload encoding."""
    return hashlib.sha256(_canonical(payload)).hexdigest()


def encode_checkpoint(payload: Dict[str, object]) -> bytes:
    """Wrap a payload in the versioned, digest-checked envelope."""
    envelope = {
        "schema": SCHEMA,
        "version": FORMAT_VERSION,
        "digest": payload_digest(payload),
        "payload": payload,
    }
    return json.dumps(
        envelope, sort_keys=True, separators=(",", ":"), allow_nan=False,
    ).encode("utf-8")


def decode_checkpoint(data: bytes) -> Dict[str, object]:
    """Parse and verify an envelope; returns the payload.

    Raises :class:`CheckpointError` on malformed JSON, wrong schema,
    unsupported version or a digest mismatch.
    """
    try:
        envelope = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"not a checkpoint file: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("schema") != SCHEMA:
        raise CheckpointError(
            f"not a checkpoint file (schema={envelope.get('schema')!r} "
            f"if it parsed at all)"
            if isinstance(envelope, dict)
            else "not a checkpoint file (top level is not an object)"
        )
    version = envelope.get("version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise CheckpointError("checkpoint payload missing or not an object")
    expected = envelope.get("digest")
    actual = payload_digest(payload)
    if expected != actual:
        raise CheckpointError(
            f"checkpoint digest mismatch: file says {expected!r}, "
            f"payload hashes to {actual!r} (corrupted or edited)"
        )
    return payload


def write_checkpoint(path: str, payload: Dict[str, object]) -> None:
    """Encode and atomically write one checkpoint file.

    The write goes to ``<path>.tmp`` first and is renamed into place,
    so a crash mid-write never leaves a truncated checkpoint behind.
    """
    import os

    data = encode_checkpoint(payload)
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(data)
    os.replace(tmp, path)


def read_checkpoint(path: str) -> Dict[str, object]:
    """Read and verify one checkpoint file; returns the payload."""
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    return decode_checkpoint(data)
