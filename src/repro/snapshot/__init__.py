"""Checkpoint/restore subsystem (``docs/checkpointing.md``).

Layering, bottom up:

:mod:`~repro.snapshot.format`
    The on-disk envelope — versioned, digest-checked canonical JSON.
:mod:`~repro.snapshot.capture`
    Payload encode/decode: complete simulator state (registers, sparse
    memory pages, syscall emulation, cycle-model state, statistics) at
    an instruction boundary, plus the incremental page encoder and the
    canonical memory digest used by the determinism tests.
:mod:`~repro.snapshot.runner`
    Periodic checkpointing around an interpreter and turning a
    checkpoint back into a runnable program.
"""

from .capture import (
    IncrementalPageEncoder,
    RestoredRun,
    decode_memory,
    encode_memory,
    memory_digest,
    restore_run,
    snapshot_run,
)
from .format import (
    FILE_SUFFIX,
    FORMAT_VERSION,
    SCHEMA,
    CheckpointError,
    decode_checkpoint,
    encode_checkpoint,
    payload_digest,
    read_checkpoint,
    write_checkpoint,
)
from .runner import (
    CheckpointedRun,
    ResumedProgram,
    checkpoint_path,
    load_checkpoint_program,
    run_with_checkpoints,
)

__all__ = [
    "SCHEMA",
    "FORMAT_VERSION",
    "FILE_SUFFIX",
    "CheckpointError",
    "payload_digest",
    "encode_checkpoint",
    "decode_checkpoint",
    "write_checkpoint",
    "read_checkpoint",
    "IncrementalPageEncoder",
    "encode_memory",
    "decode_memory",
    "memory_digest",
    "snapshot_run",
    "restore_run",
    "RestoredRun",
    "run_with_checkpoints",
    "CheckpointedRun",
    "checkpoint_path",
    "load_checkpoint_program",
    "ResumedProgram",
]
