"""Capture and restore of complete simulator state.

A checkpoint payload describes everything a run needs to continue from
an instruction boundary:

``state``
    Architectural state (register file, IP, active ISA, halt flag,
    cumulative ``simop``/ISA-switch counters) from
    :meth:`repro.sim.state.ProcessorState.save_state`.
``memory``
    Every resident, non-zero sparse page, zlib-compressed and
    base64-encoded.  All-zero pages are skipped: a never-touched page
    and an explicitly zeroed page are indistinguishable to the
    simulated program.
``syscalls``
    The C-library emulation state — LCG ``rand`` state, heap break,
    captured stdout, input cursor — from
    :meth:`repro.sim.syscalls.Syscalls.save_state`.  Because `rand`
    and `clock` are fully deterministic, this plus ``state``/``memory``
    is a *complete* description of the run.
``stats``
    Cumulative :class:`~repro.sim.stats.SimStats` of the whole run up
    to the checkpoint (already merged across earlier segments).
``model``
    The attached cycle model's :meth:`save_state` dict (AIE/DOE slot
    drift, memory-hierarchy content and timing, branch predictor), or
    None for a purely functional run.
``meta``
    Free-form provenance: cumulative instruction count, engine name,
    workload label.

The determinism contract and its limits are documented in
``docs/checkpointing.md``.
"""

from __future__ import annotations

import base64
import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..adl.model import Architecture
from ..sim.memory import Memory, PAGE_SHIFT, PAGE_SIZE
from ..sim.state import ProcessorState
from ..sim.stats import SimStats
from ..sim.syscalls import Syscalls
from .format import CheckpointError


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:
        raise CheckpointError(f"invalid base64 in checkpoint: {exc}") from exc


def _encode_page(page) -> Optional[str]:
    """zlib+base64 of one page; None when the page is all zero."""
    if not any(page):
        return None
    return _b64(zlib.compress(bytes(page), 6))


class IncrementalPageEncoder:
    """Page encoder that re-encodes only pages written since last time.

    The first :meth:`encode` call enables the memory's dirty-page
    tracking and encodes every resident non-zero page; subsequent calls
    pop the dirty set and re-encode only those pages, reusing the
    cached blobs for everything else.  Checkpoint files stay fully
    self-contained — the incrementality saves *encoding* cost (the
    dominant part of a periodic checkpoint), not file bytes.
    """

    def __init__(self) -> None:
        self._cache: Dict[int, str] = {}
        self._primed = False

    def encode(self, mem: Memory) -> Dict[str, str]:
        if not self._primed:
            mem.enable_dirty_tracking()
            mem.pop_dirty_pages()  # stores before priming are in _pages
            self._primed = True
            self._cache = {}
            for base_addr, page in mem.pages():
                blob = _encode_page(page)
                if blob is not None:
                    self._cache[base_addr >> PAGE_SHIFT] = blob
            return dict_keyed_by_str(self._cache)
        for index in mem.pop_dirty_pages():
            page = mem.page(index)
            blob = _encode_page(page) if page is not None else None
            if blob is None:
                self._cache.pop(index, None)
            else:
                self._cache[index] = blob
        return dict_keyed_by_str(self._cache)


def dict_keyed_by_str(pages: Dict[int, str]) -> Dict[str, str]:
    """JSON object keys must be strings; page indices become decimal."""
    return {str(index): blob for index, blob in pages.items()}


def encode_memory(mem: Memory) -> Dict[str, str]:
    """One-shot page encoding (no dirty tracking involved)."""
    out: Dict[str, str] = {}
    for base_addr, page in mem.pages():
        blob = _encode_page(page)
        if blob is not None:
            out[str(base_addr >> PAGE_SHIFT)] = blob
    return out


def decode_memory(pages: Dict[str, str]) -> Dict[int, bytes]:
    """Inverse of :func:`encode_memory`: page index → raw page bytes."""
    out: Dict[int, bytes] = {}
    for key, blob in pages.items():
        try:
            index = int(key)
        except ValueError:
            raise CheckpointError(f"bad page index {key!r}")
        try:
            data = zlib.decompress(_unb64(blob))
        except zlib.error as exc:
            raise CheckpointError(
                f"page {index:#x} fails to decompress: {exc}"
            ) from exc
        if len(data) != PAGE_SIZE:
            raise CheckpointError(
                f"page {index:#x} decompresses to {len(data)} bytes, "
                f"expected {PAGE_SIZE}"
            )
        out[index] = data
    return out


def memory_digest(mem: Memory) -> str:
    """Canonical sha256 of the memory image.

    Skips all-zero pages so the digest is independent of which pages
    happen to be materialised — two semantically equal memories always
    hash equal.  Used by the determinism tests and the CI gate.
    """
    h = hashlib.sha256()
    for base_addr, page in mem.pages():
        if not any(page):
            continue
        h.update(base_addr.to_bytes(8, "little"))
        h.update(page)
    return h.hexdigest()


# -- whole-run capture ----------------------------------------------------


def snapshot_run(
    state: ProcessorState,
    syscalls: Syscalls,
    *,
    stats: SimStats,
    cycle_model=None,
    memory_encoder: Optional[IncrementalPageEncoder] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Serialise a run at an instruction boundary into a payload dict.

    ``stats`` must be the *cumulative* statistics of the whole run so
    far (the caller merges segments); ``memory_encoder`` enables
    incremental page encoding across periodic checkpoints.
    """
    if cycle_model is not None and not hasattr(cycle_model, "save_state"):
        raise CheckpointError(
            f"cycle model {type(cycle_model).__name__} does not support "
            f"checkpointing (no save_state)"
        )
    pages = (
        memory_encoder.encode(state.mem)
        if memory_encoder is not None
        else encode_memory(state.mem)
    )
    sys_state = syscalls.save_state()
    payload: Dict[str, object] = {
        "arch": state.arch.name,
        "state": state.save_state(),
        "memory": {"page_size": PAGE_SIZE, "pages": pages},
        "syscalls": {
            "stdout": _b64(sys_state["stdout"]),
            "input": _b64(sys_state["input"]),
            "heap_base": sys_state["heap_base"],
            "heap_ptr": sys_state["heap_ptr"],
            "input_pos": sys_state["input_pos"],
            "rand_state": sys_state["rand_state"],
        },
        # Wall-clock timing is a property of the host run, not of the
        # simulated state; zeroing it keeps checkpoint files bitwise
        # reproducible (resumed runs time only their own segment).
        "stats": {**stats.to_dict(), "elapsed_seconds": 0.0},
        "model": (
            cycle_model.save_state() if cycle_model is not None else None
        ),
        "meta": dict(meta) if meta else {},
    }
    return payload


@dataclass
class RestoredRun:
    """A checkpoint applied to fresh simulator objects."""

    state: ProcessorState
    syscalls: Syscalls
    #: Cumulative stats of the run up to the checkpoint; merge the
    #: resumed segment's stats into a copy of this.
    base_stats: SimStats
    meta: Dict[str, object] = field(default_factory=dict)


def restore_run(
    payload: Dict[str, object],
    arch: Architecture,
    *,
    cycle_model=None,
) -> RestoredRun:
    """Rebuild processor state and syscall emulation from a payload.

    Returns *fresh* objects: a new :class:`ProcessorState` (with a new
    sparse :class:`Memory` holding exactly the checkpointed pages) and
    a new :class:`Syscalls` already installed on it.  Construct a new
    :class:`~repro.sim.interpreter.Interpreter` on the result — its
    decode caches start cold and re-register their code-write watches
    as they re-translate, which is what keeps self-modifying-code
    detection correct after a restore.

    ``cycle_model``: when given and the payload carries model state,
    the state is loaded into it (configuration must match).  A payload
    *without* model state leaves a supplied model at reset — that is
    the parallel-shard mode, where each shard's cycle model cold-starts
    from a functional checkpoint (see ``docs/checkpointing.md`` for the
    accuracy caveat).
    """
    if payload.get("arch") != arch.name:
        raise CheckpointError(
            f"checkpoint is for architecture {payload.get('arch')!r}, "
            f"restoring onto {arch.name!r}"
        )
    try:
        state_data = payload["state"]
        mem_data = payload["memory"]
        sys_data = payload["syscalls"]
        stats_data = payload["stats"]
    except KeyError as exc:
        raise CheckpointError(f"checkpoint payload missing {exc}") from exc
    if mem_data.get("page_size") != PAGE_SIZE:
        raise CheckpointError(
            f"checkpoint page size {mem_data.get('page_size')} does not "
            f"match this build's {PAGE_SIZE}"
        )

    state = ProcessorState(arch, isa_id=int(state_data["isa_id"]))
    try:
        state.load_state(state_data)
    except Exception as exc:
        raise CheckpointError(f"bad architectural state: {exc}") from exc
    state.mem.restore_pages(decode_memory(mem_data["pages"]))

    syscalls = Syscalls()
    try:
        syscalls.load_state({
            "stdout": _unb64(sys_data["stdout"]),
            "input": _unb64(sys_data["input"]),
            "heap_base": sys_data["heap_base"],
            "heap_ptr": sys_data["heap_ptr"],
            "input_pos": sys_data["input_pos"],
            "rand_state": sys_data["rand_state"],
        })
    except KeyError as exc:
        raise CheckpointError(f"syscall state missing {exc}") from exc
    syscalls.install(state)

    try:
        base_stats = SimStats.from_dict(stats_data)
    except TypeError as exc:
        raise CheckpointError(f"bad stats in checkpoint: {exc}") from exc

    model_data = payload.get("model")
    if cycle_model is not None and model_data is not None:
        try:
            cycle_model.load_state(model_data)
        except ValueError as exc:
            raise CheckpointError(str(exc)) from exc

    meta = payload.get("meta") or {}
    return RestoredRun(state=state, syscalls=syscalls,
                       base_stats=base_stats, meta=dict(meta))
