"""Periodic checkpointing and resume around the interpreter.

:func:`run_with_checkpoints` drives an :class:`Interpreter` in
``checkpoint_every``-sized slices, writing one checkpoint file at each
slice boundary; :func:`load_checkpoint_program` turns a checkpoint file
back into a ready-to-run :class:`~repro.binutils.loader.LoadedProgram`.
Both are engine-agnostic: a checkpoint taken under one engine resumes
under any other, because only architectural (not engine) state is
captured.

Checkpoint boundaries are *instruction* boundaries.  Under the
superblock engine a budget-bounded run finishes the tail instructions
of a partially-fitting block one at a time, so slicing changes which
loop executes some instructions — architectural state and the
architectural statistics are unaffected (that is the determinism
contract), while host-side engine counters (lookups, prediction hits)
legitimately differ.  ``docs/checkpointing.md`` spells this out.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..adl.model import Architecture
from ..binutils.loader import LoadedProgram, debug_info_from_elf
from ..sim.debuginfo import DebugInfo
from ..sim.interpreter import Interpreter
from ..sim.stats import SimStats
from ..sim.syscalls import Syscalls
from .capture import IncrementalPageEncoder, restore_run, snapshot_run
from .format import FILE_SUFFIX, CheckpointError, read_checkpoint, write_checkpoint

_UNLIMITED = 1 << 62


def checkpoint_path(directory: str, instructions: int,
                    prefix: str = "ckpt") -> str:
    """Canonical file name: ``<dir>/<prefix>-<instructions>.kchk``."""
    return os.path.join(
        directory, f"{prefix}-{instructions:012d}{FILE_SUFFIX}"
    )


@dataclass
class CheckpointedRun:
    """Result of :func:`run_with_checkpoints`."""

    #: Whole-run cumulative statistics (base + all executed slices).
    stats: SimStats
    #: Paths of the checkpoint files written, in instruction order.
    checkpoints: List[str] = field(default_factory=list)


def run_with_checkpoints(
    interp: Interpreter,
    syscalls: Syscalls,
    *,
    every: int,
    directory: str,
    max_instructions: Optional[int] = None,
    base_stats: Optional[SimStats] = None,
    workload: Optional[str] = None,
    prefix: str = "ckpt",
) -> CheckpointedRun:
    """Run to halt (or budget), checkpointing every ``every`` instructions.

    ``base_stats`` carries the cumulative statistics of earlier
    segments when the interpreter itself was constructed from a
    restored checkpoint; every file written contains base + progress so
    far, so any checkpoint alone is sufficient to resume the whole run.
    """
    if every <= 0:
        raise ValueError("checkpoint_every must be positive")
    os.makedirs(directory, exist_ok=True)
    base = base_stats.copy() if base_stats is not None else SimStats()
    encoder = IncrementalPageEncoder()
    budget = _UNLIMITED if max_instructions is None else max_instructions
    paths: List[str] = []
    while not interp.state.halted:
        done = interp.stats.executed_instructions
        if done >= budget:
            break
        interp.run(max_instructions=min(every, budget - done))
        if interp.state.halted:
            break  # final state is the run result; no checkpoint needed
        if interp.cancelled:
            # Cooperative cancellation fired inside the slice: the
            # caller (pipeline.run) writes the final resumable
            # checkpoint; looping on would spin forever at 0 progress.
            break
        merged = base.copy()
        merged.merge(interp.stats)
        payload = snapshot_run(
            interp.state, syscalls,
            stats=merged,
            cycle_model=interp.cycle_model,
            memory_encoder=encoder,
            meta={
                "instructions": merged.executed_instructions,
                "engine": interp.engine,
                "workload": workload,
            },
        )
        path = checkpoint_path(
            directory, merged.executed_instructions, prefix
        )
        write_checkpoint(path, payload)
        paths.append(path)
        if interp.events is not None:
            interp.events.emit(
                "checkpoint",
                path=path,
                instructions=merged.executed_instructions,
            )
    final = base.copy()
    final.merge(interp.stats)
    return CheckpointedRun(stats=final, checkpoints=paths)


@dataclass
class ResumedProgram:
    """A checkpoint turned back into a runnable program."""

    program: LoadedProgram
    #: Cumulative stats up to the checkpoint; merge the new segment in.
    base_stats: SimStats
    meta: Dict[str, object] = field(default_factory=dict)


def load_checkpoint_program(
    source,
    arch: Architecture,
    *,
    elf=None,
    cycle_model=None,
) -> ResumedProgram:
    """Rebuild a :class:`LoadedProgram` from a checkpoint.

    ``source`` is a checkpoint file path or an already-decoded payload
    dict.  ``elf`` (optional) re-attaches debug information — the
    checkpoint itself carries none, since symbolisation is a host-side
    concern.  ``cycle_model`` is restored in place when the checkpoint
    carries model state (see :func:`repro.snapshot.capture.restore_run`).
    """
    payload = read_checkpoint(source) if isinstance(source, str) else source
    restored = restore_run(payload, arch, cycle_model=cycle_model)
    debug = debug_info_from_elf(elf) if elf is not None else DebugInfo()
    program = LoadedProgram(
        state=restored.state,
        syscalls=restored.syscalls,
        debug_info=debug,
        elf=elf,
    )
    return ResumedProgram(
        program=program,
        base_stats=restored.base_stats,
        meta=restored.meta,
    )
