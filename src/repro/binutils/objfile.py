"""Relocatable object files: the assembler's output, the linker's input.

A thin semantic layer over :mod:`repro.binutils.elf`: named sections
with byte contents, a symbol table, relocations, function ranges and
the two line maps (assembly and C source) that end up in the custom
ELF sections ``.kahrisma.asmmap`` and ``.kdbg.lines``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.debuginfo import LineMap
from .elf import (
    ElfError,
    ElfFile,
    ElfRelocation,
    ElfSection,
    ElfSymbol,
    ET_REL,
    SHF_ALLOC,
    SHF_EXECINSTR,
    SHF_WRITE,
    SHT_NOBITS,
    SHT_PROGBITS,
    STB_GLOBAL,
    STB_LOCAL,
    STT_FUNC,
    STT_NOTYPE,
    STT_OBJECT,
)

#: Section properties: (sh_type, sh_flags, alignment).
SECTION_KINDS = {
    ".text": (SHT_PROGBITS, SHF_ALLOC | SHF_EXECINSTR, 4),
    ".rodata": (SHT_PROGBITS, SHF_ALLOC, 4),
    ".data": (SHT_PROGBITS, SHF_ALLOC | SHF_WRITE, 4),
    ".bss": (SHT_NOBITS, SHF_ALLOC | SHF_WRITE, 4),
}

ASMMAP_SECTION = ".kahrisma.asmmap"
DBGLINE_SECTION = ".kdbg.lines"


@dataclass
class Symbol:
    name: str
    section: str
    offset: int
    is_global: bool = False
    is_function: bool = False
    size: int = 0


@dataclass
class Relocation:
    section: str
    offset: int
    reloc_type: int
    symbol: str
    addend: int = 0


@dataclass
class ObjectFile:
    """One relocatable translation unit."""

    name: str = "<object>"
    sections: Dict[str, bytearray] = field(default_factory=dict)
    bss_size: int = 0
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    relocations: List[Relocation] = field(default_factory=list)
    #: Section-relative line maps (addresses are .text offsets).
    asm_map: LineMap = field(default_factory=LineMap)
    src_map: LineMap = field(default_factory=LineMap)

    def section_data(self, name: str) -> bytearray:
        if name == ".bss":
            raise ElfError(".bss carries no data")
        return self.sections.setdefault(name, bytearray())

    def section_size(self, name: str) -> int:
        if name == ".bss":
            return self.bss_size
        return len(self.sections.get(name, b""))

    def define_symbol(
        self,
        name: str,
        section: str,
        offset: int,
        *,
        is_global: bool = False,
        is_function: bool = False,
        size: int = 0,
    ) -> Symbol:
        if name in self.symbols:
            raise ElfError(f"{self.name}: duplicate symbol {name!r}")
        sym = Symbol(name, section, offset, is_global, is_function, size)
        self.symbols[name] = sym
        return sym

    # -- ELF round-trip -------------------------------------------------------

    def to_elf(self) -> ElfFile:
        elf = ElfFile(e_type=ET_REL)
        for sec_name, (sh_type, flags, align) in SECTION_KINDS.items():
            if sec_name == ".bss":
                if self.bss_size:
                    elf.add_section(
                        ElfSection(
                            ".bss", SHT_NOBITS, flags,
                            nobits_size=self.bss_size, addralign=align,
                        )
                    )
                continue
            data = self.sections.get(sec_name)
            if data:
                elf.add_section(
                    ElfSection(
                        sec_name, sh_type, flags,
                        data=bytes(data), addralign=align,
                    )
                )
        if len(self.asm_map):
            elf.add_section(
                ElfSection(ASMMAP_SECTION, SHT_PROGBITS,
                           data=self.asm_map.encode())
            )
        if len(self.src_map):
            elf.add_section(
                ElfSection(DBGLINE_SECTION, SHT_PROGBITS,
                           data=self.src_map.encode())
            )
        for sym in self.symbols.values():
            if sym.section and elf.section(sym.section) is None:
                # Symbol in an empty section: emit the section anyway so
                # the reference stays valid.
                sh_type, flags, align = SECTION_KINDS[sym.section]
                elf.add_section(
                    ElfSection(sym.section, sh_type, flags, addralign=align)
                )
            elf.symbols.append(
                ElfSymbol(
                    name=sym.name,
                    value=sym.offset,
                    size=sym.size,
                    binding=STB_GLOBAL if sym.is_global else STB_LOCAL,
                    sym_type=STT_FUNC if sym.is_function else (
                        STT_OBJECT if sym.section in (".data", ".rodata", ".bss")
                        else STT_NOTYPE
                    ),
                    section=sym.section,
                )
            )
        # Undefined symbols referenced by relocations.
        defined = set(self.symbols)
        for rel in self.relocations:
            if rel.symbol not in defined:
                defined.add(rel.symbol)
                elf.symbols.append(
                    ElfSymbol(name=rel.symbol, binding=STB_GLOBAL, section="")
                )
            elf.relocations.append(
                ElfRelocation(
                    section=rel.section,
                    offset=rel.offset,
                    reloc_type=rel.reloc_type,
                    symbol=rel.symbol,
                    addend=rel.addend,
                )
            )
        return elf

    @classmethod
    def from_elf(cls, elf: ElfFile, name: str = "<elf>") -> "ObjectFile":
        if elf.e_type != ET_REL:
            raise ElfError(f"{name}: not a relocatable object")
        obj = cls(name=name)
        for sec in elf.sections:
            if sec.name == ".bss":
                obj.bss_size = sec.size
            elif sec.name in SECTION_KINDS:
                obj.sections[sec.name] = bytearray(sec.data)
            elif sec.name == ASMMAP_SECTION:
                obj.asm_map = LineMap.decode(sec.data)
            elif sec.name == DBGLINE_SECTION:
                obj.src_map = LineMap.decode(sec.data)
        for sym in elf.symbols:
            if not sym.is_defined:
                continue
            obj.symbols[sym.name] = Symbol(
                name=sym.name,
                section=sym.section,
                offset=sym.value,
                is_global=sym.is_global,
                is_function=sym.sym_type == STT_FUNC,
                size=sym.size,
            )
        for rel in elf.relocations:
            obj.relocations.append(
                Relocation(rel.section, rel.offset, rel.reloc_type,
                           rel.symbol, rel.addend)
            )
        return obj
