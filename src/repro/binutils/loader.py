"""ELF loader: executable file → initialised processor state.

Paper Section V: the ELF file is loaded into the simulated memory, the
start address initialises the IP, and the initial ISA comes from the
command line or the ADL default — we additionally honour the entry ISA
the linker recorded in ``e_flags``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..adl.model import Architecture
from ..sim.debuginfo import DebugInfo, LineMap
from ..sim.errors import SimulationError
from ..sim.state import ProcessorState
from ..sim.syscalls import Syscalls
from .elf import ElfFile, ET_EXEC, PT_LOAD, STT_FUNC
from .objfile import ASMMAP_SECTION, DBGLINE_SECTION


@dataclass
class LoadedProgram:
    """Everything needed to simulate one executable."""

    state: ProcessorState
    syscalls: Syscalls
    debug_info: DebugInfo
    elf: ElfFile

    @property
    def output(self) -> str:
        return self.syscalls.output_text()


def debug_info_from_elf(elf: ElfFile) -> DebugInfo:
    """Build symbolisation info from an ELF's debug sections.

    Shared by the loader and checkpoint resume — a checkpoint carries
    no debug information, so resuming re-derives it from the original
    executable when one is supplied.
    """
    debug = DebugInfo()
    asmmap = elf.section(ASMMAP_SECTION)
    if asmmap is not None:
        debug.asm_map = LineMap.decode(asmmap.data)
    lines = elf.section(DBGLINE_SECTION)
    if lines is not None:
        debug.src_map = LineMap.decode(lines.data)
    for sym in elf.symbols:
        if sym.sym_type == STT_FUNC and sym.size:
            debug.add_function(sym.name, sym.value, sym.size)
    return debug


def load_executable(
    elf: ElfFile,
    arch: Architecture,
    *,
    isa_id: Optional[int] = None,
    input_data: bytes = b"",
    rand_seed: int = 1,
) -> LoadedProgram:
    """Load an executable ELF and return a ready-to-run program.

    ``isa_id`` overrides the entry ISA (the paper's command-line
    parameter); by default the linker-recorded entry ISA is used.
    """
    if elf.e_type != ET_EXEC:
        raise SimulationError("not an executable ELF")
    entry_isa = elf.flags if isa_id is None else isa_id
    state = ProcessorState(arch, isa_id=entry_isa)

    image_end = 0
    for phdr, data in elf.segments:
        if phdr.p_type != PT_LOAD:
            continue
        state.mem.store_bytes(phdr.vaddr, data)
        # memsz > filesz: .bss, already zero in our sparse memory.
        image_end = max(image_end, phdr.vaddr + phdr.memsz)

    state.ip = elf.entry
    state.setup_stack()

    heap_base = (image_end + 0xFFF) & ~0xFFF
    syscalls = Syscalls(
        heap_base=heap_base, input_data=input_data, rand_seed=rand_seed
    )
    syscalls.install(state)

    return LoadedProgram(state=state, syscalls=syscalls,
                         debug_info=debug_info_from_elf(elf), elf=elf)
