"""Linker: combines relocatable objects into an executable ELF.

Mirrors the paper's flow (Section IV): object files are linked into the
application binary, stored in ELF.  The linker lays out sections,
resolves symbols (local symbols within their object, global symbols
across all objects), applies the KAHRISMA relocations, injects the
auto-generated C-library stub object (Section V-E) and merges the
debug line maps into the executable's custom sections.

The entry ISA is recorded in the ELF header's ``e_flags`` so the
simulator can initialise its active-ISA state (Section V-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..adl.model import Architecture
from ..sim.debuginfo import LineMap
from ..sim.state import TEXT_BASE
from ..targetgen.asmgen import generate_libc_stubs
from .assembler import Assembler
from .elf import (
    ElfFile,
    ElfSection,
    ElfSymbol,
    ET_EXEC,
    PF_R,
    PF_W,
    PF_X,
    ProgramHeader,
    PT_LOAD,
    R_KAH_ABS32,
    R_KAH_HI18,
    R_KAH_LO14,
    R_KAH_PC14,
    R_KAH_PC24,
    RELOC_NAMES,
    SHF_ALLOC,
    SHF_EXECINSTR,
    SHF_WRITE,
    SHT_NOBITS,
    SHT_PROGBITS,
    STB_GLOBAL,
    STB_LOCAL,
    STT_FUNC,
    STT_OBJECT,
)
from .objfile import ASMMAP_SECTION, DBGLINE_SECTION, ObjectFile

MASK32 = 0xFFFFFFFF

_LAYOUT_ORDER = (".text", ".rodata", ".data", ".bss")


class LinkError(Exception):
    """Unresolved symbols, duplicate definitions, overflowing fields."""


@dataclass
class LinkInfo:
    """Address map produced alongside the executable (for tooling)."""

    section_bases: Dict[str, int]
    section_sizes: Dict[str, int]
    symbols: Dict[str, int]
    image_end: int


def link(
    objects: Iterable[ObjectFile],
    arch: Architecture,
    *,
    entry_symbol: str,
    entry_isa: int,
    text_base: int = TEXT_BASE,
    include_libc: bool = True,
) -> Tuple[ElfFile, LinkInfo]:
    """Link ``objects`` into an executable ELF.

    ``entry_symbol`` is looked up after symbol resolution (typically the
    ISA-mangled main, e.g. ``$risc$main``); ``entry_isa`` is the ISA the
    processor must start in, stored in ``e_flags``.
    """
    objects = list(objects)
    if include_libc:
        stub_asm = generate_libc_stubs(arch)
        stub_obj = Assembler(arch).assemble(stub_asm, "<libc-stubs>")
        objects.append(stub_obj)

    # -- layout ---------------------------------------------------------
    section_sizes = {name: 0 for name in _LAYOUT_ORDER}
    placement: List[Dict[str, int]] = []  # per object: section -> offset
    for obj in objects:
        offsets: Dict[str, int] = {}
        for name in _LAYOUT_ORDER:
            size = obj.section_size(name)
            aligned = (section_sizes[name] + 3) & ~3
            offsets[name] = aligned
            section_sizes[name] = aligned + size
        placement.append(offsets)

    section_bases: Dict[str, int] = {}
    cursor = text_base
    for name in _LAYOUT_ORDER:
        cursor = (cursor + 15) & ~15
        section_bases[name] = cursor
        cursor += section_sizes[name]
    image_end = cursor

    def obj_section_addr(index: int, section: str) -> int:
        return section_bases[section] + placement[index][section]

    # -- symbol resolution ------------------------------------------------
    global_symbols: Dict[str, int] = {}
    global_owner: Dict[str, str] = {}
    local_symbols: List[Dict[str, int]] = []
    functions: List[Tuple[str, int, int]] = []
    data_symbols: List[Tuple[str, int, int, str]] = []
    for index, obj in enumerate(objects):
        locals_here: Dict[str, int] = {}
        for sym in obj.symbols.values():
            addr = obj_section_addr(index, sym.section) + sym.offset
            locals_here[sym.name] = addr
            if sym.is_global:
                if sym.name in global_symbols:
                    raise LinkError(
                        f"duplicate global symbol {sym.name!r} in "
                        f"{obj.name} (first defined in "
                        f"{global_owner[sym.name]})"
                    )
                global_symbols[sym.name] = addr
                global_owner[sym.name] = obj.name
            if sym.is_function:
                functions.append((sym.name, addr, sym.size))
            elif sym.section in (".data", ".rodata", ".bss"):
                data_symbols.append((sym.name, addr, sym.size, sym.section))
        local_symbols.append(locals_here)

    # -- build output section images ----------------------------------------
    images = {
        name: bytearray(section_sizes[name])
        for name in (".text", ".rodata", ".data")
    }
    for index, obj in enumerate(objects):
        for name in (".text", ".rodata", ".data"):
            data = obj.sections.get(name)
            if data:
                off = placement[index][name]
                images[name][off:off + len(data)] = data

    # -- relocation -------------------------------------------------------------
    undefined: Dict[str, str] = {}
    for index, obj in enumerate(objects):
        for rel in obj.relocations:
            sym_addr = local_symbols[index].get(rel.symbol)
            if sym_addr is None:
                sym_addr = global_symbols.get(rel.symbol)
            if sym_addr is None:
                undefined.setdefault(rel.symbol, obj.name)
                continue
            place = obj_section_addr(index, rel.section) + rel.offset
            image = images[rel.section]
            image_off = placement[index][rel.section] + rel.offset
            _apply_reloc(
                image, image_off, rel.reloc_type, sym_addr, rel.addend,
                place, rel.symbol,
            )
    if undefined:
        missing = ", ".join(
            f"{name!r} (referenced from {owner})"
            for name, owner in sorted(undefined.items())
        )
        raise LinkError(f"undefined symbols: {missing}")

    # -- entry -------------------------------------------------------------
    entry_addr = global_symbols.get(entry_symbol)
    if entry_addr is None:
        raise LinkError(f"entry symbol {entry_symbol!r} not defined")

    # -- merge debug maps ----------------------------------------------------
    asm_map = LineMap()
    src_map = LineMap()
    for index, obj in enumerate(objects):
        text_addr = obj_section_addr(index, ".text")
        for entry in obj.asm_map:
            asm_map.add(entry.addr + text_addr, entry.file, entry.line)
        for entry in obj.src_map:
            src_map.add(entry.addr + text_addr, entry.file, entry.line)

    # -- assemble the executable ELF -------------------------------------------
    elf = ElfFile(e_type=ET_EXEC, entry=entry_addr, flags=entry_isa)
    elf.add_section(
        ElfSection(".text", SHT_PROGBITS, SHF_ALLOC | SHF_EXECINSTR,
                   addr=section_bases[".text"], data=bytes(images[".text"]),
                   addralign=16)
    )
    if section_sizes[".rodata"]:
        elf.add_section(
            ElfSection(".rodata", SHT_PROGBITS, SHF_ALLOC,
                       addr=section_bases[".rodata"],
                       data=bytes(images[".rodata"]), addralign=16)
        )
    if section_sizes[".data"]:
        elf.add_section(
            ElfSection(".data", SHT_PROGBITS, SHF_ALLOC | SHF_WRITE,
                       addr=section_bases[".data"],
                       data=bytes(images[".data"]), addralign=16)
        )
    if section_sizes[".bss"]:
        elf.add_section(
            ElfSection(".bss", SHT_NOBITS, SHF_ALLOC | SHF_WRITE,
                       addr=section_bases[".bss"],
                       nobits_size=section_sizes[".bss"], addralign=16)
        )
    if len(asm_map):
        elf.add_section(
            ElfSection(ASMMAP_SECTION, SHT_PROGBITS, data=asm_map.encode())
        )
    if len(src_map):
        elf.add_section(
            ElfSection(DBGLINE_SECTION, SHT_PROGBITS, data=src_map.encode())
        )

    for name, addr, size in functions:
        elf.symbols.append(
            ElfSymbol(name=name, value=addr, size=size,
                      binding=STB_GLOBAL if name in global_symbols else STB_LOCAL,
                      sym_type=STT_FUNC, section=".text")
        )
    for name, addr, size, section in data_symbols:
        elf.symbols.append(
            ElfSymbol(name=name, value=addr, size=size,
                      binding=STB_GLOBAL if name in global_symbols else STB_LOCAL,
                      sym_type=STT_OBJECT, section=section)
        )

    # Program headers: text RX, then one RW segment covering
    # rodata+data+bss (rodata is mapped read-only in real systems; the
    # simulator does not enforce page protection).
    elf.segments.append(
        (
            ProgramHeader(PT_LOAD, 0, section_bases[".text"],
                          len(images[".text"]), len(images[".text"]),
                          PF_R | PF_X),
            bytes(images[".text"]),
        )
    )
    data_start = section_bases[".rodata"]
    file_blob = bytearray()
    file_end = data_start
    for name in (".rodata", ".data"):
        base = section_bases[name]
        if section_sizes[name] == 0:
            continue
        file_blob += b"\x00" * (base - file_end)
        file_blob += images[name]
        file_end = base + section_sizes[name]
    mem_end = image_end
    if file_blob or section_sizes[".bss"]:
        elf.segments.append(
            (
                ProgramHeader(PT_LOAD, 0, data_start, len(file_blob),
                              mem_end - data_start, PF_R | PF_W),
                bytes(file_blob),
            )
        )

    info = LinkInfo(
        section_bases=section_bases,
        section_sizes=section_sizes,
        symbols={**global_symbols},
        image_end=image_end,
    )
    return elf, info


def _apply_reloc(
    image: bytearray, offset: int, reloc_type: int, sym_addr: int,
    addend: int, place: int, symbol: str,
) -> None:
    value = sym_addr + addend
    word = int.from_bytes(image[offset:offset + 4], "little")
    if reloc_type == R_KAH_ABS32:
        word = value & MASK32
    elif reloc_type == R_KAH_HI18:
        word = (word & ~0x3FFFF) | ((value >> 14) & 0x3FFFF)
    elif reloc_type == R_KAH_LO14:
        word = (word & ~0x3FFF) | (value & 0x3FFF)
    elif reloc_type in (R_KAH_PC14, R_KAH_PC24):
        delta = value - place
        if delta % 4:
            raise LinkError(
                f"branch target {symbol!r} not word-aligned (delta {delta})"
            )
        words = delta >> 2
        width = 14 if reloc_type == R_KAH_PC14 else 24
        limit = 1 << (width - 1)
        if not (-limit <= words < limit):
            raise LinkError(
                f"branch to {symbol!r} out of range for "
                f"{RELOC_NAMES[reloc_type]} ({words} words)"
            )
        mask = (1 << width) - 1
        word = (word & ~mask) | (words & mask)
    else:
        raise LinkError(f"unknown relocation type {reloc_type}")
    image[offset:offset + 4] = word.to_bytes(4, "little")
