"""Binary utilities: ELF32, assembler, linker, loader (paper Section IV)."""

from .assembler import Assembler, AsmError, REGISTER_ALIASES
from .elf import (
    ElfError,
    ElfFile,
    ElfRelocation,
    ElfSection,
    ElfSymbol,
    EM_KAHRISMA,
    ET_EXEC,
    ET_REL,
    R_KAH_ABS32,
    R_KAH_HI18,
    R_KAH_LO14,
    R_KAH_PC14,
    R_KAH_PC24,
)
from .linker import LinkError, LinkInfo, link
from .loader import LoadedProgram, load_executable
from .objfile import ASMMAP_SECTION, DBGLINE_SECTION, ObjectFile

__all__ = [
    "ASMMAP_SECTION",
    "AsmError",
    "Assembler",
    "DBGLINE_SECTION",
    "ElfError",
    "ElfFile",
    "ElfRelocation",
    "ElfSection",
    "ElfSymbol",
    "EM_KAHRISMA",
    "ET_EXEC",
    "ET_REL",
    "LinkError",
    "LinkInfo",
    "LoadedProgram",
    "ObjectFile",
    "R_KAH_ABS32",
    "R_KAH_HI18",
    "R_KAH_LO14",
    "R_KAH_PC14",
    "R_KAH_PC24",
    "REGISTER_ALIASES",
    "link",
    "load_executable",
]
