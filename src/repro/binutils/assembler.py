"""Two-pass, mixed-ISA assembler (paper Section IV).

Translates KAHRISMA assembly into relocatable object files.  The ISA
can be switched mid-file with the ``.isa`` pseudo directive — exactly
the mechanism the paper's assembler uses to support mixed-ISA assembly
files.  While a VLIW ISA is active, instructions are bundles written
``{ op ; op ; ... }`` and are padded with ``nop`` to the issue width.

The assembler also stores the assembly line map (address → assembly
file/line) that the simulator uses for debugging (Section V-C); it is
emitted into the custom ``.kahrisma.asmmap`` ELF section.  ``.loc``
directives emitted by the compiler feed the C source line map.

Syntax summary::

    # comment
    .isa vliw4              # switch target ISA
    .text / .data / .rodata / .bss
    .global sym
    .func sym / .endfunc    # function range (symbol size)
    .word 1, label, sym+8
    .half 1, 2   .byte 3    .ascii "s"  .asciiz "s"
    .space 16    .align 4
    .file 1 "dct.kc"        # source file table (compiler-emitted)
    .loc 1 42               # current address maps to file 1 line 42
    label:
    add r3, r4, r5          # RISC instruction
    { add r3, r4, r5 ; lw r6, 0(r7) }   # VLIW bundle
    li r4, 123456           # pseudo: expands to lui+ori
    la r4, table            # pseudo: %hi/%lo pair
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..adl.model import Architecture
from ..targetgen.optable import OperationTable, TargetDescription, build_target
from .elf import (
    R_KAH_ABS32,
    R_KAH_HI18,
    R_KAH_LO14,
    R_KAH_PC14,
    R_KAH_PC24,
)
from .objfile import ObjectFile, Relocation

MASK32 = 0xFFFFFFFF


class AsmError(Exception):
    """Assembly-time error with file/line context."""

    def __init__(self, message: str, filename: str = "?", line: int = 0) -> None:
        super().__init__(f"{filename}:{line}: {message}")
        self.filename = filename
        self.line = line


#: Register aliases accepted in operands (besides r0..r31).
REGISTER_ALIASES: Dict[str, int] = {
    "zero": 0, "at": 1, "v0": 2, "v1": 3,
    "a0": 4, "a1": 5, "a2": 6, "a3": 7,
    "t0": 8, "t1": 9, "t2": 10, "t3": 11,
    "t4": 12, "t5": 13, "t6": 14, "t7": 15,
    "s0": 16, "s1": 17, "s2": 18, "s3": 19,
    "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "t8": 24, "t9": 25, "t10": 26, "t11": 27,
    "gp": 28, "fp": 29, "sp": 30, "ra": 31,
}

_LABEL_RE = re.compile(r"^([A-Za-z_$.][\w$.]*):")
_SYMBOL_RE = re.compile(r"^[A-Za-z_$.][\w$.]*$")

IMM14_MIN, IMM14_MAX = -(1 << 13), (1 << 13) - 1


@dataclass
class _ParsedOp:
    mnemonic: str
    operands: List[str]


@dataclass
class _Item:
    kind: str  # "label" | "instr" | directive name
    line: int
    #: label name / directive args / list of _ParsedOp for instr
    payload: object = None
    #: filled by pass 1
    section: str = ""
    offset: int = 0
    isa_id: int = 0
    size: int = 0


@dataclass
class _Reference:
    """A symbolic operand awaiting a relocation."""

    symbol: str
    reloc_type: int
    addend: int = 0


class Assembler:
    """Retargeted from the ADL: operand syntax comes from the operation
    tables TargetGen built."""

    def __init__(
        self,
        arch: Architecture,
        target: Optional[TargetDescription] = None,
    ) -> None:
        self.arch = arch
        self.target = target if target is not None else build_target(arch)

    # -- public API -----------------------------------------------------------

    def assemble(self, source: str, filename: str = "<asm>") -> ObjectFile:
        items = self._parse(source, filename)
        obj = ObjectFile(name=filename)
        self._pass1(items, obj, filename)
        self._pass2(items, obj, filename)
        return obj

    # -- parsing ----------------------------------------------------------------

    def _parse(self, source: str, filename: str) -> List[_Item]:
        items: List[_Item] = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw).strip()
            while line:
                match = _LABEL_RE.match(line)
                if match:
                    items.append(_Item("label", lineno, match.group(1)))
                    line = line[match.end():].strip()
                    continue
                break
            if not line:
                continue
            if line.startswith("."):
                parts = line.split(None, 1)
                name = parts[0][1:]
                args = parts[1].strip() if len(parts) > 1 else ""
                items.append(_Item(name, lineno, args))
                continue
            if line.startswith("{"):
                if not line.endswith("}"):
                    raise AsmError("bundle must close on the same line",
                                   filename, lineno)
                body = line[1:-1].strip()
                ops = [
                    self._parse_op(part, filename, lineno)
                    for part in body.split(";")
                    if part.strip()
                ]
                if not ops:
                    raise AsmError("empty bundle", filename, lineno)
                items.append(_Item("instr", lineno, ops))
                continue
            items.append(
                _Item("instr", lineno, [self._parse_op(line, filename, lineno)])
            )
        return items

    @staticmethod
    def _parse_op(text: str, filename: str, lineno: int) -> _ParsedOp:
        text = text.strip()
        if not text:
            raise AsmError("empty operation", filename, lineno)
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operands: List[str] = []
        if len(parts) > 1:
            operands = [p.strip() for p in _split_operands(parts[1])]
        return _ParsedOp(mnemonic, operands)

    # -- pass 1: layout -----------------------------------------------------------

    def _pass1(self, items: List[_Item], obj: ObjectFile, filename: str) -> None:
        section = ".text"
        offsets = {".text": 0, ".data": 0, ".rodata": 0, ".bss": 0}
        isa = self.arch.isa_by_id[self.arch.default_isa]
        func_stack: List[Tuple[str, int]] = []

        for item in items:
            item.section = section
            item.offset = offsets[section]
            item.isa_id = isa.ident
            kind = item.kind
            if kind == "label":
                name = item.payload
                if name in obj.symbols:
                    raise AsmError(f"duplicate label {name!r}",
                                   filename, item.line)
                obj.define_symbol(name, section, offsets[section])
            elif kind == "instr":
                if section != ".text":
                    raise AsmError("instructions outside .text",
                                   filename, item.line)
                ops: List[_ParsedOp] = item.payload
                expanded: List[_ParsedOp] = []
                if isa.issue_width == 1:
                    for op in ops:
                        expanded.extend(
                            self._expand_pseudo(op, filename, item.line)
                        )
                    item.size = 4 * len(expanded)
                else:
                    if len(ops) > isa.issue_width:
                        raise AsmError(
                            f"bundle of {len(ops)} operations exceeds "
                            f"issue width {isa.issue_width}",
                            filename, item.line,
                        )
                    for op in ops:
                        exp = self._expand_pseudo(op, filename, item.line)
                        if len(exp) != 1:
                            raise AsmError(
                                f"pseudo {op.mnemonic!r} not allowed inside "
                                f"a bundle", filename, item.line,
                            )
                        expanded.extend(exp)
                    while len(expanded) < isa.issue_width:
                        expanded.append(_ParsedOp("nop", []))
                    item.size = isa.instr_size
                item.payload = expanded
                offsets[section] += item.size
            elif kind == "isa":
                try:
                    isa = self.arch.isa_named(item.payload)
                except KeyError:
                    raise AsmError(f"unknown ISA {item.payload!r}",
                                   filename, item.line)
            elif kind in (".text", "text", "data", "rodata", "bss"):
                section = "." + kind.lstrip(".")
                item.section = section
                item.offset = offsets[section]
            elif kind == "global":
                pass  # handled in pass 2 (symbol may not exist yet)
            elif kind == "func":
                func_stack.append((item.payload.strip(), offsets[".text"]))
            elif kind == "endfunc":
                if not func_stack:
                    raise AsmError(".endfunc without .func",
                                   filename, item.line)
                name, start = func_stack.pop()
                sym = obj.symbols.get(name)
                if sym is None:
                    raise AsmError(
                        f".func symbol {name!r} has no label",
                        filename, item.line,
                    )
                sym.is_function = True
                sym.size = offsets[".text"] - start
            elif kind in ("word", "half", "byte", "ascii", "asciiz",
                          "space", "align", "file", "loc"):
                offsets[section] += self._data_size(
                    kind, item.payload, section, offsets[section],
                    filename, item.line,
                )
            else:
                raise AsmError(f"unknown directive .{kind}",
                               filename, item.line)
        if func_stack:
            raise AsmError(f".func {func_stack[-1][0]!r} never closed",
                           filename, items[-1].line if items else 0)
        obj.bss_size = offsets[".bss"]

    def _data_size(
        self, kind: str, args: str, section: str, offset: int,
        filename: str, line: int,
    ) -> int:
        if kind == "word":
            return 4 * len(_split_operands(args))
        if kind == "half":
            return 2 * len(_split_operands(args))
        if kind == "byte":
            return len(_split_operands(args))
        if kind in ("ascii", "asciiz"):
            text = _parse_string(args, filename, line)
            return len(text) + (1 if kind == "asciiz" else 0)
        if kind == "space":
            return _parse_int(args, filename, line)
        if kind == "align":
            alignment = _parse_int(args, filename, line)
            if alignment & (alignment - 1):
                raise AsmError(".align expects a power of two",
                               filename, line)
            return (-offset) % alignment
        return 0  # .file / .loc

    # -- pass 2: encoding ------------------------------------------------------------

    def _pass2(self, items: List[_Item], obj: ObjectFile, filename: str) -> None:
        src_files: Dict[int, str] = {}
        for item in items:
            kind = item.kind
            if kind == "global":
                name = item.payload.strip()
                sym = obj.symbols.get(name)
                if sym is None:
                    raise AsmError(
                        f".global for undefined symbol {name!r}",
                        filename, item.line,
                    )
                sym.is_global = True
            elif kind == "file":
                parts = item.payload.split(None, 1)
                ident = _parse_int(parts[0], filename, item.line)
                src_files[ident] = _parse_string(parts[1], filename, item.line)
            elif kind == "loc":
                parts = item.payload.split()
                ident = _parse_int(parts[0], filename, item.line)
                srcline = _parse_int(parts[1], filename, item.line)
                src_file = src_files.get(ident)
                if src_file is None:
                    raise AsmError(f".loc references unknown file {ident}",
                                   filename, item.line)
                obj.src_map.add(item.offset, src_file, srcline)
            elif kind == "instr":
                self._encode_instruction(item, obj, filename)
            elif kind in ("word", "half", "byte", "ascii", "asciiz",
                          "space", "align"):
                self._encode_data(item, obj, filename)

    def _encode_instruction(
        self, item: _Item, obj: ObjectFile, filename: str
    ) -> None:
        optable = self.target.optable(item.isa_id)
        text = obj.section_data(".text")
        assert len(text) == item.offset, "pass1/pass2 layout divergence"
        obj.asm_map.add(item.offset, filename, item.line)
        ops: List[_ParsedOp] = item.payload
        is_bundle = optable.isa.issue_width > 1
        controls = 0
        for slot, op in enumerate(ops):
            entry = optable.by_name.get(op.mnemonic)
            if entry is None:
                raise AsmError(
                    f"unknown operation {op.mnemonic!r} for ISA "
                    f"{optable.isa.name!r}", filename, item.line,
                )
            if is_bundle and (entry.op.is_control or entry.op.kind == "simop"):
                controls += 1
                if controls > 1:
                    raise AsmError(
                        "more than one control operation in bundle",
                        filename, item.line,
                    )
            word_offset = item.offset + 4 * slot
            # Branch offsets are relative to the end of the instruction:
            # the bundle end for VLIW, the next word for RISC (where each
            # expanded pseudo op is its own instruction).
            instr_end = item.offset + item.size if is_bundle else word_offset + 4
            word = self._encode_op(
                entry, op, obj, word_offset, instr_end, filename, item.line
            )
            text += word.to_bytes(4, "little")

    def _encode_op(
        self, entry, op: _ParsedOp, obj: ObjectFile,
        word_offset: int, instr_end: int, filename: str, line: int,
    ) -> int:
        templates = entry.op.asm_operands
        if len(op.operands) != len(templates):
            raise AsmError(
                f"{op.mnemonic}: expected {len(templates)} operands "
                f"({', '.join(templates)}), got {len(op.operands)}",
                filename, line,
            )
        values: Dict[str, int] = {}
        for template, operand in zip(templates, op.operands):
            if template.endswith("(rs1)"):
                offset_txt, base_txt = _split_mem_operand(
                    operand, filename, line
                )
                values["rs1"] = _parse_register(base_txt, filename, line)
                values["imm"] = self._imm_or_reloc(
                    entry, "imm", offset_txt, obj, word_offset, instr_end,
                    filename, line,
                )
                continue
            # The ADL field role decides the operand kind, so custom
            # operations with arbitrary register field names assemble
            # without assembler changes.
            role = entry.op.field(template).role
            if role in ("reg_dst", "reg_src"):
                values[template] = _parse_register(operand, filename, line)
            else:  # immediate
                values[template] = self._imm_or_reloc(
                    entry, template, operand, obj, word_offset, instr_end,
                    filename, line,
                )
        try:
            return entry.encode(values)
        except Exception as exc:
            raise AsmError(f"{op.mnemonic}: {exc}", filename, line)

    def _imm_or_reloc(
        self, entry, fieldname: str, text: str, obj: ObjectFile,
        word_offset: int, instr_end: int, filename: str, line: int,
    ) -> int:
        text = text.strip()
        value = _try_parse_int(text)
        if value is not None:
            return value
        if text.startswith("%hi(") and text.endswith(")"):
            sym, addend = _parse_symref(text[4:-1], filename, line)
            obj.relocations.append(
                Relocation(".text", word_offset, R_KAH_HI18, sym, addend)
            )
            return 0
        if text.startswith("%lo(") and text.endswith(")"):
            sym, addend = _parse_symref(text[4:-1], filename, line)
            obj.relocations.append(
                Relocation(".text", word_offset, R_KAH_LO14, sym, addend)
            )
            return 0
        # Bare symbol: PC-relative branch/jump target.
        sym, addend = _parse_symref(text, filename, line)
        kind = entry.op.kind
        width = entry.op.field(fieldname).width
        if kind != "branch":
            raise AsmError(
                f"symbolic operand {text!r} only allowed on branches "
                f"(use %hi/%lo elsewhere)", filename, line,
            )
        reloc = R_KAH_PC24 if width >= 24 else R_KAH_PC14
        # addend encodes the distance from the op word to the end of the
        # instruction, so the linker can compute target - instruction_end.
        obj.relocations.append(
            Relocation(
                ".text", word_offset, reloc, sym,
                addend + (word_offset - instr_end),
            )
        )
        return 0

    def _encode_data(self, item: _Item, obj: ObjectFile, filename: str) -> None:
        kind = item.kind
        if item.section == ".bss":
            if kind not in ("space", "align"):
                raise AsmError(f".{kind} not allowed in .bss",
                               filename, item.line)
            return
        data = obj.section_data(item.section)
        assert len(data) == item.offset, "pass1/pass2 layout divergence"
        args = item.payload
        if kind == "word":
            for part in _split_operands(args):
                value = _try_parse_int(part)
                if value is None:
                    sym, addend = _parse_symref(part, filename, item.line)
                    obj.relocations.append(
                        Relocation(item.section, len(data), R_KAH_ABS32,
                                   sym, addend)
                    )
                    value = 0
                data += (value & MASK32).to_bytes(4, "little")
        elif kind == "half":
            for part in _split_operands(args):
                data += (_parse_int(part, filename, item.line) & 0xFFFF
                         ).to_bytes(2, "little")
        elif kind == "byte":
            for part in _split_operands(args):
                data.append(_parse_int(part, filename, item.line) & 0xFF)
        elif kind in ("ascii", "asciiz"):
            data += _parse_string(args, filename, item.line).encode("latin-1")
            if kind == "asciiz":
                data.append(0)
        elif kind == "space":
            data += b"\x00" * _parse_int(args, filename, item.line)
        elif kind == "align":
            alignment = _parse_int(args, filename, item.line)
            data += b"\x00" * ((-len(data)) % alignment)

    # -- pseudo instructions ------------------------------------------------------

    def _expand_pseudo(
        self, op: _ParsedOp, filename: str, line: int
    ) -> List[_ParsedOp]:
        name = op.mnemonic
        operands = op.operands

        def need(n: int) -> None:
            if len(operands) != n:
                raise AsmError(
                    f"{name}: expected {n} operands", filename, line
                )

        if name == "li":
            need(2)
            rd, imm_txt = operands
            value = _try_parse_int(imm_txt)
            if value is None:
                # li with a symbol degenerates to la.
                return self._expand_pseudo(
                    _ParsedOp("la", operands), filename, line
                )
            value &= MASK32
            signed = value - (1 << 32) if value & 0x80000000 else value
            if IMM14_MIN <= signed <= IMM14_MAX:
                return [_ParsedOp("addi", [rd, "r0", str(signed)])]
            high, low = value >> 14, value & 0x3FFF
            result = [_ParsedOp("lui", [rd, str(high)])]
            if low:
                result.append(_ParsedOp("ori", [rd, rd, str(low)]))
            return result
        if name == "la":
            need(2)
            rd, sym = operands
            return [
                _ParsedOp("lui", [rd, f"%hi({sym})"]),
                _ParsedOp("ori", [rd, rd, f"%lo({sym})"]),
            ]
        if name == "mv":
            need(2)
            return [_ParsedOp("addi", [operands[0], operands[1], "0"])]
        if name == "neg":
            need(2)
            return [_ParsedOp("sub", [operands[0], "r0", operands[1]])]
        if name == "ret":
            need(0)
            return [_ParsedOp("jr", ["ra"])]
        if name == "call":
            need(1)
            return [_ParsedOp("jal", operands)]
        if name == "b":
            need(1)
            return [_ParsedOp("j", operands)]
        return [op]


# -- token helpers ---------------------------------------------------------------


def _strip_comment(line: str) -> str:
    in_string = False
    for i, ch in enumerate(line):
        if ch == '"':
            in_string = not in_string
        elif ch == "#" and not in_string:
            return line[:i]
    return line


def _split_operands(text: str) -> List[str]:
    """Split on commas not inside parentheses or strings."""
    parts: List[str] = []
    depth = 0
    in_string = False
    current = ""
    for ch in text:
        if ch == '"':
            in_string = not in_string
            current += ch
        elif ch == "(" and not in_string:
            depth += 1
            current += ch
        elif ch == ")" and not in_string:
            depth -= 1
            current += ch
        elif ch == "," and depth == 0 and not in_string:
            parts.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current.strip())
    return parts


def _split_mem_operand(
    text: str, filename: str, line: int
) -> Tuple[str, str]:
    match = re.match(r"^(.*)\(([^)]+)\)$", text.strip())
    if not match:
        raise AsmError(f"expected offset(base), got {text!r}", filename, line)
    offset = match.group(1).strip() or "0"
    return offset, match.group(2).strip()


def _parse_register(text: str, filename: str, line: int) -> int:
    text = text.strip().lower()
    if text in REGISTER_ALIASES:
        return REGISTER_ALIASES[text]
    if text.startswith("r") and text[1:].isdigit():
        index = int(text[1:])
        if 0 <= index < 32:
            return index
    raise AsmError(f"bad register {text!r}", filename, line)


def _try_parse_int(text: str) -> Optional[int]:
    text = text.strip()
    if len(text) >= 3 and text.startswith("'") and text.endswith("'"):
        body = text[1:-1]
        unescaped = body.encode().decode("unicode_escape")
        if len(unescaped) == 1:
            return ord(unescaped)
        return None
    try:
        return int(text, 0)
    except ValueError:
        return None


def _parse_int(text: str, filename: str, line: int) -> int:
    value = _try_parse_int(text)
    if value is None:
        raise AsmError(f"expected integer, got {text.strip()!r}",
                       filename, line)
    return value


def _parse_symref(text: str, filename: str, line: int) -> Tuple[str, int]:
    """Parse ``symbol``, ``symbol+imm`` or ``symbol-imm``."""
    text = text.strip()
    match = re.match(r"^([A-Za-z_$.][\w$.]*)\s*([+-]\s*\d+)?$", text)
    if not match:
        raise AsmError(f"bad symbol reference {text!r}", filename, line)
    addend = 0
    if match.group(2):
        addend = int(match.group(2).replace(" ", ""))
    return match.group(1), addend


def _parse_string(text: str, filename: str, line: int) -> str:
    text = text.strip()
    if len(text) < 2 or not text.startswith('"') or not text.endswith('"'):
        raise AsmError(f"expected string literal, got {text!r}",
                       filename, line)
    return text[1:-1].encode().decode("unicode_escape")
