"""ELF32 container format, reader and writer.

The paper stores object files and application binaries in standard ELF
(Section IV, [13]).  This module implements the ELF32 little-endian
format from the TIS specification: file header, program headers,
section headers, symbol tables, string tables and RELA relocation
sections — enough to be a faithful container for the KAHRISMA
toolchain, including the custom sections the simulator consumes
(assembly line map, debug line table).

Only what the spec requires is implemented; no shortcuts are taken with
the binary layout, so files round-trip byte-exactly through
``ElfFile.write`` / ``ElfFile.read``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# -- constants (TIS ELF32 spec) ---------------------------------------------

ELF_MAGIC = b"\x7fELF"
ELFCLASS32 = 1
ELFDATA2LSB = 1
EV_CURRENT = 1

ET_REL = 1
ET_EXEC = 2

#: Unofficial machine number for the KAHRISMA reproduction.
EM_KAHRISMA = 0x5241

SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_RELA = 4
SHT_NOBITS = 8

SHF_WRITE = 0x1
SHF_ALLOC = 0x2
SHF_EXECINSTR = 0x4

PT_LOAD = 1
PF_X = 0x1
PF_W = 0x2
PF_R = 0x4

STB_LOCAL = 0
STB_GLOBAL = 1
STT_NOTYPE = 0
STT_OBJECT = 1
STT_FUNC = 2
STT_SECTION = 3

SHN_UNDEF = 0
SHN_ABS = 0xFFF1

#: KAHRISMA relocation types (r_info low byte).
R_KAH_NONE = 0
R_KAH_ABS32 = 1
R_KAH_HI18 = 2
R_KAH_LO14 = 3
R_KAH_PC14 = 4
R_KAH_PC24 = 5

RELOC_NAMES = {
    R_KAH_NONE: "NONE",
    R_KAH_ABS32: "ABS32",
    R_KAH_HI18: "HI18",
    R_KAH_LO14: "LO14",
    R_KAH_PC14: "PC14",
    R_KAH_PC24: "PC24",
}

_EHDR = struct.Struct("<16sHHIIIIIHHHHHH")
_SHDR = struct.Struct("<IIIIIIIIII")
_PHDR = struct.Struct("<IIIIIIII")
_SYM = struct.Struct("<IIIBBH")
_RELA = struct.Struct("<IIi")


class ElfError(Exception):
    """Malformed or unsupported ELF input."""


@dataclass
class ElfSection:
    name: str
    sh_type: int = SHT_PROGBITS
    flags: int = 0
    addr: int = 0
    data: bytes = b""
    link: int = 0
    info: int = 0
    addralign: int = 1
    entsize: int = 0
    #: For SHT_NOBITS the size is carried here (data stays empty).
    nobits_size: int = 0

    @property
    def size(self) -> int:
        if self.sh_type == SHT_NOBITS:
            return self.nobits_size
        return len(self.data)


@dataclass
class ElfSymbol:
    name: str
    value: int = 0
    size: int = 0
    binding: int = STB_LOCAL
    sym_type: int = STT_NOTYPE
    #: Section *name* ("" = SHN_UNDEF, "<abs>" = SHN_ABS).
    section: str = ""

    @property
    def is_global(self) -> bool:
        return self.binding == STB_GLOBAL

    @property
    def is_defined(self) -> bool:
        return self.section != ""


@dataclass
class ElfRelocation:
    #: Name of the section the relocation applies to (e.g. ".text").
    section: str
    offset: int
    reloc_type: int
    symbol: str
    addend: int = 0


@dataclass
class ProgramHeader:
    p_type: int
    offset: int
    vaddr: int
    filesz: int
    memsz: int
    flags: int
    align: int = 0x1000


@dataclass
class ElfFile:
    """An ELF object or executable, held fully in memory."""

    e_type: int = ET_REL
    machine: int = EM_KAHRISMA
    entry: int = 0
    flags: int = 0
    sections: List[ElfSection] = field(default_factory=list)
    symbols: List[ElfSymbol] = field(default_factory=list)
    relocations: List[ElfRelocation] = field(default_factory=list)
    segments: List[Tuple[ProgramHeader, bytes]] = field(default_factory=list)

    # -- convenience -------------------------------------------------------

    def section(self, name: str) -> Optional[ElfSection]:
        for sec in self.sections:
            if sec.name == name:
                return sec
        return None

    def add_section(self, sec: ElfSection) -> None:
        if self.section(sec.name) is not None:
            raise ElfError(f"duplicate section {sec.name!r}")
        self.sections.append(sec)

    def symbol(self, name: str) -> Optional[ElfSymbol]:
        for sym in self.symbols:
            if sym.name == name:
                return sym
        return None

    def global_symbols(self) -> List[ElfSymbol]:
        return [s for s in self.symbols if s.is_global]

    # -- writer --------------------------------------------------------------

    def write(self) -> bytes:
        """Serialise to ELF32 bytes."""
        sections = list(self.sections)
        section_names = [s.name for s in sections]

        # Relocation sections (one .rela.<target> per relocated section).
        reloc_by_target: Dict[str, List[ElfRelocation]] = {}
        for rel in self.relocations:
            reloc_by_target.setdefault(rel.section, []).append(rel)

        # Symbol table: locals first (ELF requirement), with the
        # leading NULL symbol.
        symbols = sorted(self.symbols, key=lambda s: s.binding != STB_LOCAL)
        sym_index = {"": 0}
        for i, sym in enumerate(symbols):
            sym_index[sym.name] = i + 1
        first_global = 1 + sum(1 for s in symbols if s.binding == STB_LOCAL)

        strtab = _StringTable()
        for sym in symbols:
            strtab.add(sym.name)

        def section_index(name: str) -> int:
            if name == "":
                return SHN_UNDEF
            if name == "<abs>":
                return SHN_ABS
            try:
                return section_names.index(name) + 1  # +1 for NULL section
            except ValueError:
                raise ElfError(f"symbol/reloc references unknown section {name!r}")

        symtab_data = bytearray(_SYM.pack(0, 0, 0, 0, 0, 0))
        for sym in symbols:
            info = (sym.binding << 4) | (sym.sym_type & 0xF)
            symtab_data += _SYM.pack(
                strtab.offset(sym.name),
                sym.value,
                sym.size,
                info,
                0,
                section_index(sym.section),
            )

        built: List[ElfSection] = list(sections)
        symtab_pos = len(built) + 1
        built.append(
            ElfSection(
                ".symtab",
                SHT_SYMTAB,
                data=bytes(symtab_data),
                link=symtab_pos + 1,  # .strtab follows
                info=first_global,
                addralign=4,
                entsize=_SYM.size,
            )
        )
        built.append(
            ElfSection(".strtab", SHT_STRTAB, data=strtab.data(), addralign=1)
        )
        for target, rels in sorted(reloc_by_target.items()):
            data = bytearray()
            for rel in rels:
                if rel.symbol not in sym_index:
                    raise ElfError(
                        f"relocation references unknown symbol {rel.symbol!r}"
                    )
                info = (sym_index[rel.symbol] << 8) | (rel.reloc_type & 0xFF)
                data += _RELA.pack(rel.offset, info, rel.addend)
            built.append(
                ElfSection(
                    f".rela{target}",
                    SHT_RELA,
                    data=bytes(data),
                    link=symtab_pos,
                    info=section_index(target),
                    addralign=4,
                    entsize=_RELA.size,
                )
            )

        shstrtab = _StringTable()
        for sec in built:
            shstrtab.add(sec.name)
        shstrtab.add(".shstrtab")
        built.append(
            ElfSection(".shstrtab", SHT_STRTAB, data=shstrtab.data())
        )

        # Layout: ehdr, phdrs, segment data, section data, shdrs.
        phnum = len(self.segments)
        offset = _EHDR.size + phnum * _PHDR.size
        blob = bytearray()

        phdrs: List[ProgramHeader] = []
        for phdr, data in self.segments:
            pad = (-offset) % phdr.align if phdr.align else 0
            # Keep segment file offsets congruent with vaddr modulo align.
            if phdr.align:
                pad = (phdr.vaddr - offset) % phdr.align
            blob += b"\x00" * pad
            offset += pad
            placed = ProgramHeader(
                phdr.p_type, offset, phdr.vaddr, len(data), phdr.memsz,
                phdr.flags, phdr.align,
            )
            phdrs.append(placed)
            blob += data
            offset += len(data)

        section_offsets: List[int] = []
        for sec in built:
            if sec.sh_type == SHT_NOBITS:
                section_offsets.append(offset)
                continue
            pad = (-offset) % max(sec.addralign, 1)
            blob += b"\x00" * pad
            offset += pad
            section_offsets.append(offset)
            blob += sec.data
            offset += len(sec.data)

        pad = (-offset) % 4
        blob += b"\x00" * pad
        offset += pad
        shoff = offset

        shdr_blob = bytearray(_SHDR.pack(0, 0, 0, 0, 0, 0, 0, 0, 0, 0))
        for sec, sec_off in zip(built, section_offsets):
            shdr_blob += _SHDR.pack(
                shstrtab.offset(sec.name),
                sec.sh_type,
                sec.flags,
                sec.addr,
                sec_off,
                sec.size,
                sec.link,
                sec.info,
                sec.addralign,
                sec.entsize,
            )

        ident = ELF_MAGIC + bytes(
            [ELFCLASS32, ELFDATA2LSB, EV_CURRENT]
        ) + b"\x00" * 9
        ehdr = _EHDR.pack(
            ident,
            self.e_type,
            self.machine,
            EV_CURRENT,
            self.entry,
            _EHDR.size if phnum else 0,
            shoff,
            self.flags,
            _EHDR.size,
            _PHDR.size if phnum else 0,
            phnum,
            _SHDR.size,
            len(built) + 1,
            len(built),  # .shstrtab is last
        )
        phdr_blob = bytearray()
        for phdr in phdrs:
            phdr_blob += _PHDR.pack(
                phdr.p_type, phdr.offset, phdr.vaddr, phdr.vaddr,
                phdr.filesz, phdr.memsz, phdr.flags, phdr.align,
            )
        return bytes(ehdr) + bytes(phdr_blob) + bytes(blob) + bytes(shdr_blob)

    # -- reader --------------------------------------------------------------

    @classmethod
    def read(cls, data: bytes) -> "ElfFile":
        if len(data) < _EHDR.size or data[:4] != ELF_MAGIC:
            raise ElfError("not an ELF file")
        (
            ident, e_type, machine, version, entry, phoff, shoff, flags,
            _ehsize, phentsize, phnum, shentsize, shnum, shstrndx,
        ) = _EHDR.unpack_from(data, 0)
        if ident[4] != ELFCLASS32 or ident[5] != ELFDATA2LSB:
            raise ElfError("only ELF32 little-endian is supported")
        if version != EV_CURRENT:
            raise ElfError(f"unsupported ELF version {version}")

        result = cls(e_type=e_type, machine=machine, entry=entry, flags=flags)

        raw_shdrs = []
        for i in range(shnum):
            raw_shdrs.append(_SHDR.unpack_from(data, shoff + i * shentsize))
        if shnum:
            shstr_off = raw_shdrs[shstrndx][4]
            shstr_size = raw_shdrs[shstrndx][5]
            shstr = data[shstr_off:shstr_off + shstr_size]
        else:
            shstr = b""

        def cstr(table: bytes, off: int) -> str:
            end = table.index(b"\x00", off)
            return table[off:end].decode("utf-8")

        names: List[str] = []
        parsed: List[Tuple[str, Tuple]] = []
        for raw in raw_shdrs:
            name = cstr(shstr, raw[0]) if shnum else ""
            names.append(name)
            parsed.append((name, raw))

        strtab_cache: Dict[int, bytes] = {}

        def section_body(raw) -> bytes:
            off, size = raw[4], raw[5]
            return data[off:off + size]

        sym_names_by_index: List[str] = []
        for index, (name, raw) in enumerate(parsed):
            sh_type = raw[1]
            if index == 0 or sh_type in (SHT_STRTAB,):
                continue
            if sh_type == SHT_SYMTAB:
                strtab_raw = parsed[raw[6]][1]
                strtab_cache[raw[6]] = section_body(strtab_raw)
                body = section_body(raw)
                count = len(body) // _SYM.size
                for i in range(count):
                    st_name, value, size, info, _other, shndx = _SYM.unpack_from(
                        body, i * _SYM.size
                    )
                    sym_name = cstr(strtab_cache[raw[6]], st_name)
                    sym_names_by_index.append(sym_name)
                    if i == 0:
                        continue
                    if shndx == SHN_UNDEF:
                        sec_name = ""
                    elif shndx == SHN_ABS:
                        sec_name = "<abs>"
                    else:
                        sec_name = names[shndx]
                    result.symbols.append(
                        ElfSymbol(
                            name=sym_name,
                            value=value,
                            size=size,
                            binding=info >> 4,
                            sym_type=info & 0xF,
                            section=sec_name,
                        )
                    )
                continue
            if sh_type == SHT_RELA:
                target = names[raw[7]]
                body = section_body(raw)
                count = len(body) // _RELA.size
                for i in range(count):
                    offset, info, addend = _RELA.unpack_from(
                        body, i * _RELA.size
                    )
                    result.relocations.append(
                        ElfRelocation(
                            section=target,
                            offset=offset,
                            reloc_type=info & 0xFF,
                            symbol=sym_names_by_index[info >> 8],
                            addend=addend,
                        )
                    )
                continue
            result.sections.append(
                ElfSection(
                    name=name,
                    sh_type=sh_type,
                    flags=raw[2],
                    addr=raw[3],
                    data=b"" if sh_type == SHT_NOBITS else section_body(raw),
                    link=raw[6],
                    info=raw[7],
                    addralign=raw[8],
                    entsize=raw[9],
                    nobits_size=raw[5] if sh_type == SHT_NOBITS else 0,
                )
            )

        for i in range(phnum):
            raw = _PHDR.unpack_from(data, phoff + i * phentsize)
            p_type, offset, vaddr, _paddr, filesz, memsz, pflags, align = raw
            result.segments.append(
                (
                    ProgramHeader(p_type, offset, vaddr, filesz, memsz,
                                  pflags, align),
                    data[offset:offset + filesz],
                )
            )
        return result


class _StringTable:
    """ELF string table builder (leading NUL, offsets memoised)."""

    def __init__(self) -> None:
        self._data = bytearray(b"\x00")
        self._offsets: Dict[str, int] = {"": 0}

    def add(self, name: str) -> int:
        if name in self._offsets:
            return self._offsets[name]
        off = len(self._data)
        self._data += name.encode("utf-8") + b"\x00"
        self._offsets[name] = off
        return off

    def offset(self, name: str) -> int:
        return self._offsets[name]

    def data(self) -> bytes:
        return bytes(self._data)
