"""Reproduction of "A cycle-approximate, mixed-ISA simulator for the
KAHRISMA architecture" (Stripf, Koenig, Becker — DATE 2012).

Public API tour::

    from repro import KAHRISMA, build, run
    from repro.cycles import IlpModel, AieModel, DoeModel
    from repro.rtl import RtlPipeline

    built = build(open("app.kc").read(), isa="vliw4")
    result = run(built, cycle_model=DoeModel(issue_width=4))
    print(result.output, result.cycles)

Sub-packages: :mod:`repro.adl` (architecture description),
:mod:`repro.targetgen` (generated simulator fragments),
:mod:`repro.lang` (KC compiler), :mod:`repro.binutils` (ELF assembler/
linker), :mod:`repro.sim` (the interpreter), :mod:`repro.cycles`
(ILP/AIE/DOE models + memory hierarchy), :mod:`repro.rtl`
(cycle-accurate reference), :mod:`repro.framework` (pipeline + ISA
selection), :mod:`repro.programs` (benchmark workloads).
"""

from .adl.kahrisma import (
    ISA_RISC,
    ISA_VLIW2,
    ISA_VLIW4,
    ISA_VLIW6,
    ISA_VLIW8,
    KAHRISMA,
)
from .framework.pipeline import (
    BuildResult,
    RunResult,
    build,
    build_and_run,
    build_benchmark,
    run,
)
from .framework.selection import select_isas

__version__ = "1.0.0"

__all__ = [
    "BuildResult",
    "ISA_RISC",
    "ISA_VLIW2",
    "ISA_VLIW4",
    "ISA_VLIW6",
    "ISA_VLIW8",
    "KAHRISMA",
    "RunResult",
    "build",
    "build_and_run",
    "build_benchmark",
    "run",
    "select_isas",
    "__version__",
]
