"""Sparse byte-addressable simulated memory.

The ELF loader copies segments into this memory and the simulation
functions access it through the ``load*``/``store*`` methods referenced
by the generated code.  The address space is a full 32-bit space backed
lazily by fixed-size pages, so a 16 MiB stack at the top and code at
the bottom cost only the pages actually touched.

All values are little-endian, matching the ELF encoding we emit.
Addresses are masked to 32 bits; unaligned and page-crossing accesses
are supported (the KAHRISMA compiler never emits them, but hand-written
assembly and error cases may).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

MASK32 = 0xFFFFFFFF
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class Memory:
    """Paged sparse memory with word/half/byte accessors."""

    __slots__ = ("_pages",)

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    def _page(self, index: int) -> bytearray:
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    # -- word access (hot path of the interpreter) ----------------------

    def load4(self, addr: int) -> int:
        addr &= MASK32
        off = addr & PAGE_MASK
        if off <= PAGE_SIZE - 4:
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                return 0
            return int.from_bytes(page[off:off + 4], "little")
        return int.from_bytes(self.load_bytes(addr, 4), "little")

    def store4(self, addr: int, value: int) -> None:
        addr &= MASK32
        off = addr & PAGE_MASK
        if off <= PAGE_SIZE - 4:
            self._page(addr >> PAGE_SHIFT)[off:off + 4] = (
                value & MASK32
            ).to_bytes(4, "little")
        else:
            self.store_bytes(addr, (value & MASK32).to_bytes(4, "little"))

    def load2(self, addr: int) -> int:
        addr &= MASK32
        off = addr & PAGE_MASK
        if off <= PAGE_SIZE - 2:
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                return 0
            return page[off] | (page[off + 1] << 8)
        return int.from_bytes(self.load_bytes(addr, 2), "little")

    def store2(self, addr: int, value: int) -> None:
        addr &= MASK32
        off = addr & PAGE_MASK
        if off <= PAGE_SIZE - 2:
            page = self._page(addr >> PAGE_SHIFT)
            page[off] = value & 0xFF
            page[off + 1] = (value >> 8) & 0xFF
        else:
            self.store_bytes(addr, (value & 0xFFFF).to_bytes(2, "little"))

    def load1(self, addr: int) -> int:
        addr &= MASK32
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[addr & PAGE_MASK]

    def store1(self, addr: int, value: int) -> None:
        addr &= MASK32
        self._page(addr >> PAGE_SHIFT)[addr & PAGE_MASK] = value & 0xFF

    # -- bulk access (loader, syscalls) ---------------------------------

    def load_bytes(self, addr: int, length: int) -> bytes:
        addr &= MASK32
        out = bytearray()
        while length > 0:
            off = addr & PAGE_MASK
            chunk = min(length, PAGE_SIZE - off)
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                out.extend(b"\x00" * chunk)
            else:
                out.extend(page[off:off + chunk])
            addr = (addr + chunk) & MASK32
            length -= chunk
        return bytes(out)

    def store_bytes(self, addr: int, data: bytes) -> None:
        addr &= MASK32
        view = memoryview(data)
        while view:
            off = addr & PAGE_MASK
            chunk = min(len(view), PAGE_SIZE - off)
            self._page(addr >> PAGE_SHIFT)[off:off + chunk] = view[:chunk]
            addr = (addr + chunk) & MASK32
            view = view[chunk:]

    def load_cstring(self, addr: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated string (for the libc emulation)."""
        out = bytearray()
        while len(out) < limit:
            b = self.load1(addr)
            if b == 0:
                break
            out.append(b)
            addr = (addr + 1) & MASK32
        return bytes(out)

    def store_cstring(self, addr: int, data: bytes) -> None:
        self.store_bytes(addr, data + b"\x00")

    # -- introspection ---------------------------------------------------

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def pages(self) -> Iterator[Tuple[int, bytes]]:
        """Yield (base address, page bytes) for every resident page."""
        for index in sorted(self._pages):
            yield index << PAGE_SHIFT, bytes(self._pages[index])
