"""Sparse byte-addressable simulated memory.

The ELF loader copies segments into this memory and the simulation
functions access it through the ``load*``/``store*`` methods referenced
by the generated code.  The address space is a full 32-bit space backed
lazily by fixed-size pages, so a 16 MiB stack at the top and code at
the bottom cost only the pages actually touched.

All values are little-endian, matching the ELF encoding we emit.
Addresses are masked to 32 bits; unaligned and page-crossing accesses
are supported (the KAHRISMA compiler never emits them, but hand-written
assembly and error cases may).

Self-modifying code support: consumers that cache decoded instructions
(the decode cache, the superblock engine) register the pages their
decodes came from via :meth:`watch_code` and subscribe a listener via
:meth:`add_code_listener`.  Every store path checks the written page
against the watched set and notifies listeners with the page index and
the exact byte range written, so invalidation can be precise even when
code and data share a page.  With no watched pages the per-store cost
is a single truthiness test.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Set, Tuple

MASK32 = 0xFFFFFFFF
PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

#: Aligned word accesses go through a ``memoryview`` of each page cast
#: to native 32-bit words — one indexed read/write instead of a slice
#: plus int conversion.  The cast uses host byte order, so the fast
#: path is only valid on little-endian hosts (matching the simulated
#: memory's little-endian layout); big-endian hosts take the byte path.
_WORD_VIEWS = sys.byteorder == "little"

#: Listener signature: (page_index, addr, length) of one written range.
CodeWriteListener = Callable[[int, int, int], None]


class Memory:
    """Paged sparse memory with word/half/byte accessors."""

    __slots__ = ("_pages", "_views", "_code_pages", "_code_listeners",
                 "_dirty")

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}
        #: Per-page ``memoryview`` cast to 32-bit words (little-endian
        #: hosts only); maintained alongside ``_pages`` by ``_page``.
        self._views: Dict[int, memoryview] = {}
        self._code_pages: Set[int] = set()
        self._code_listeners: List[CodeWriteListener] = []
        #: Dirty-page set for incremental checkpoints; None (the
        #: default) keeps every store path at a single truthiness test.
        self._dirty: Optional[Set[int]] = None

    def _page(self, index: int) -> bytearray:
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
            if _WORD_VIEWS:
                self._views[index] = memoryview(page).cast("I")
        return page

    # -- word access (hot path of the interpreter) ----------------------

    def load4(self, addr: int) -> int:
        addr &= MASK32
        if addr & 3 == 0 and _WORD_VIEWS:
            view = self._views.get(addr >> PAGE_SHIFT)
            if view is None:
                return 0
            return view[(addr & PAGE_MASK) >> 2]
        off = addr & PAGE_MASK
        if off <= PAGE_SIZE - 4:
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                return 0
            return int.from_bytes(page[off:off + 4], "little")
        return int.from_bytes(self.load_bytes(addr, 4), "little")

    def store4(self, addr: int, value: int) -> None:
        addr &= MASK32
        if addr & 3 == 0 and _WORD_VIEWS:
            index = addr >> PAGE_SHIFT
            view = self._views.get(index)
            if view is None:
                self._page(index)
                view = self._views[index]
            view[(addr & PAGE_MASK) >> 2] = value & MASK32
            d = self._dirty
            if d is not None:
                d.add(index)
            cp = self._code_pages
            if cp and index in cp:
                self._code_written(index, addr, 4)
            return
        off = addr & PAGE_MASK
        if off <= PAGE_SIZE - 4:
            page = addr >> PAGE_SHIFT
            self._page(page)[off:off + 4] = (
                value & MASK32
            ).to_bytes(4, "little")
            d = self._dirty
            if d is not None:
                d.add(page)
            cp = self._code_pages
            if cp and page in cp:
                self._code_written(page, addr, 4)
        else:
            self.store_bytes(addr, (value & MASK32).to_bytes(4, "little"))

    def load2(self, addr: int) -> int:
        addr &= MASK32
        off = addr & PAGE_MASK
        if off <= PAGE_SIZE - 2:
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                return 0
            return page[off] | (page[off + 1] << 8)
        return int.from_bytes(self.load_bytes(addr, 2), "little")

    def store2(self, addr: int, value: int) -> None:
        addr &= MASK32
        off = addr & PAGE_MASK
        if off <= PAGE_SIZE - 2:
            index = addr >> PAGE_SHIFT
            page = self._page(index)
            page[off] = value & 0xFF
            page[off + 1] = (value >> 8) & 0xFF
            d = self._dirty
            if d is not None:
                d.add(index)
            cp = self._code_pages
            if cp and index in cp:
                self._code_written(index, addr, 2)
        else:
            self.store_bytes(addr, (value & 0xFFFF).to_bytes(2, "little"))

    def load1(self, addr: int) -> int:
        addr &= MASK32
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[addr & PAGE_MASK]

    def store1(self, addr: int, value: int) -> None:
        addr &= MASK32
        index = addr >> PAGE_SHIFT
        self._page(index)[addr & PAGE_MASK] = value & 0xFF
        d = self._dirty
        if d is not None:
            d.add(index)
        cp = self._code_pages
        if cp and index in cp:
            self._code_written(index, addr, 1)

    # -- bulk access (loader, syscalls) ---------------------------------

    def load_bytes(self, addr: int, length: int) -> bytes:
        addr &= MASK32
        out = bytearray()
        while length > 0:
            off = addr & PAGE_MASK
            chunk = min(length, PAGE_SIZE - off)
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                out.extend(b"\x00" * chunk)
            else:
                out.extend(page[off:off + chunk])
            addr = (addr + chunk) & MASK32
            length -= chunk
        return bytes(out)

    def store_bytes(self, addr: int, data: bytes) -> None:
        addr &= MASK32
        view = memoryview(data)
        cp = self._code_pages
        d = self._dirty
        while view:
            off = addr & PAGE_MASK
            chunk = min(len(view), PAGE_SIZE - off)
            index = addr >> PAGE_SHIFT
            self._page(index)[off:off + chunk] = view[:chunk]
            if d is not None:
                d.add(index)
            if cp and index in cp:
                self._code_written(index, addr, chunk)
            addr = (addr + chunk) & MASK32
            view = view[chunk:]

    def load_cstring(self, addr: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated string (for the libc emulation)."""
        out = bytearray()
        while len(out) < limit:
            b = self.load1(addr)
            if b == 0:
                break
            out.append(b)
            addr = (addr + 1) & MASK32
        return bytes(out)

    def store_cstring(self, addr: int, data: bytes) -> None:
        self.store_bytes(addr, data + b"\x00")

    # -- self-modifying-code hooks --------------------------------------

    def watch_code(self, addr: int, size: int) -> None:
        """Mark the pages of ``[addr, addr+size)`` as containing code.

        Called by decode caches when they store a decode structure;
        subsequent stores into these pages notify the listeners.
        """
        addr &= MASK32
        first = addr >> PAGE_SHIFT
        last = (addr + max(size, 1) - 1) >> PAGE_SHIFT
        pages = self._code_pages
        for index in range(first, last + 1):
            pages.add(index)

    def add_code_listener(self, listener: CodeWriteListener) -> None:
        """Subscribe to stores into watched code pages."""
        if listener not in self._code_listeners:
            self._code_listeners.append(listener)

    def remove_code_listener(self, listener: CodeWriteListener) -> None:
        if listener in self._code_listeners:
            self._code_listeners.remove(listener)

    def _code_written(self, page: int, addr: int, length: int) -> None:
        for listener in self._code_listeners:
            listener(page, addr, length)

    @property
    def watched_code_pages(self) -> int:
        return len(self._code_pages)

    # -- checkpointing ---------------------------------------------------

    def enable_dirty_tracking(self) -> None:
        """Start recording which pages stores touch.

        Until enabled the tracking costs nothing; afterwards every
        store path pays one set insertion.  Used by the checkpoint
        writer to re-encode only changed pages between two periodic
        checkpoints.
        """
        if self._dirty is None:
            self._dirty = set()

    def pop_dirty_pages(self) -> Set[int]:
        """Return and clear the set of page indices written since the
        last call (empty before :meth:`enable_dirty_tracking`)."""
        dirty = self._dirty
        if not dirty:
            return set()
        self._dirty = set()
        return dirty

    def restore_pages(self, pages: Mapping[int, bytes]) -> None:
        """Replace the whole address space with checkpointed pages.

        Drops every resident page and the code-watch set: the decode
        caches that registered those watches are stale relative to the
        restored image and must re-register as they re-translate
        (listeners stay subscribed — an interpreter attached to this
        memory keeps receiving invalidations for watches added after
        the restore).
        """
        self._pages.clear()
        self._views.clear()
        self._code_pages.clear()
        if self._dirty is not None:
            self._dirty = set()
        for index, data in pages.items():
            if len(data) != PAGE_SIZE:
                raise ValueError(
                    f"page {index:#x} has {len(data)} bytes, "
                    f"expected {PAGE_SIZE}"
                )
            page = bytearray(data)
            self._pages[index] = page
            if _WORD_VIEWS:
                self._views[index] = memoryview(page).cast("I")

    # -- introspection ---------------------------------------------------

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def page(self, index: int) -> Optional[memoryview]:
        """Read-only zero-copy view of one resident page (or None)."""
        page = self._pages.get(index)
        if page is None:
            return None
        return memoryview(page).toreadonly()

    def pages(self) -> Iterator[Tuple[int, memoryview]]:
        """Yield (base address, page view) for every resident page.

        The views are read-only and zero-copy; they alias the live
        page, so consume (or copy) them before the next store.
        """
        for index in sorted(self._pages):
            yield index << PAGE_SHIFT, memoryview(self._pages[index]).toreadonly()
