"""Address-to-source mapping for debugging (paper Section V-C).

The simulator can map an instruction address to the corresponding
assembler file line, C source file line, or function name.  The
assembler stores the assembly line map in a custom ELF section
(``.kahrisma.asmmap``); the compiler emits source line directives that
end up in a second custom section (``.kdbg.lines``, our compact
stand-in for DWARF); function start/end addresses come from the symbol
table.

This module owns the binary encoding of the line-map sections and the
lookup structures; :mod:`repro.binutils` reads/writes the sections.
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class LineEntry:
    addr: int
    file: str
    line: int


class LineMap:
    """Sorted address → (file, line) map with range semantics.

    An entry covers addresses from its own address up to (excluding)
    the next entry's address.
    """

    def __init__(self) -> None:
        self._addrs: List[int] = []
        self._entries: List[LineEntry] = []

    def add(self, addr: int, file: str, line: int) -> None:
        entry = LineEntry(addr, file, line)
        pos = bisect.bisect_left(self._addrs, addr)
        if pos < len(self._addrs) and self._addrs[pos] == addr:
            self._entries[pos] = entry
        else:
            self._addrs.insert(pos, addr)
            self._entries.insert(pos, entry)

    def lookup(self, addr: int) -> Optional[LineEntry]:
        pos = bisect.bisect_right(self._addrs, addr) - 1
        if pos < 0:
            return None
        return self._entries[pos]

    def __len__(self) -> int:
        return len(self._addrs)

    def __iter__(self):
        return iter(self._entries)

    # -- binary encoding (the custom ELF section payload) ----------------

    def encode(self) -> bytes:
        files: List[str] = []
        file_ids: Dict[str, int] = {}
        for entry in self._entries:
            if entry.file not in file_ids:
                file_ids[entry.file] = len(files)
                files.append(entry.file)
        out = bytearray()
        out += struct.pack("<I", len(self._entries))
        for entry in self._entries:
            out += struct.pack(
                "<IHI", entry.addr, file_ids[entry.file], entry.line
            )
        out += struct.pack("<H", len(files))
        for name in files:
            raw = name.encode("utf-8")
            out += struct.pack("<H", len(raw)) + raw
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "LineMap":
        (count,) = struct.unpack_from("<I", data, 0)
        offset = 4
        raw_entries: List[Tuple[int, int, int]] = []
        for _ in range(count):
            addr, file_id, line = struct.unpack_from("<IHI", data, offset)
            raw_entries.append((addr, file_id, line))
            offset += 10
        (nfiles,) = struct.unpack_from("<H", data, offset)
        offset += 2
        files: List[str] = []
        for _ in range(nfiles):
            (length,) = struct.unpack_from("<H", data, offset)
            offset += 2
            files.append(data[offset:offset + length].decode("utf-8"))
            offset += length
        result = cls()
        for addr, file_id, line in raw_entries:
            result.add(addr, files[file_id], line)
        return result

    def shifted(self, delta: int) -> "LineMap":
        """A copy with every address moved by ``delta`` (link-time)."""
        result = LineMap()
        for entry in self._entries:
            result.add(entry.addr + delta, entry.file, entry.line)
        return result


@dataclass(frozen=True)
class FunctionRange:
    name: str
    start: int
    end: int  # exclusive


@dataclass(frozen=True)
class Location:
    """Everything the simulator knows about one instruction address."""

    addr: int
    function: Optional[str] = None
    asm_file: Optional[str] = None
    asm_line: Optional[int] = None
    src_file: Optional[str] = None
    src_line: Optional[int] = None

    def format(self) -> str:
        parts = [f"{self.addr:#010x}"]
        if self.function:
            parts.append(f"in {self.function}")
        if self.src_file is not None:
            parts.append(f"{self.src_file}:{self.src_line}")
        if self.asm_file is not None:
            parts.append(f"[{self.asm_file}:{self.asm_line}]")
        return " ".join(parts)


class DebugInfo:
    """Aggregated debug metadata of one linked executable."""

    def __init__(self) -> None:
        self.asm_map = LineMap()
        self.src_map = LineMap()
        self._fn_starts: List[int] = []
        self._functions: List[FunctionRange] = []

    def add_function(self, name: str, start: int, size: int) -> None:
        fn = FunctionRange(name, start, start + size)
        pos = bisect.bisect_left(self._fn_starts, start)
        self._fn_starts.insert(pos, start)
        self._functions.insert(pos, fn)

    def function_at(self, addr: int) -> Optional[FunctionRange]:
        pos = bisect.bisect_right(self._fn_starts, addr) - 1
        if pos < 0:
            return None
        fn = self._functions[pos]
        return fn if addr < fn.end else None

    @property
    def functions(self) -> Tuple[FunctionRange, ...]:
        return tuple(self._functions)

    def lookup(self, addr: int) -> Location:
        fn = self.function_at(addr)
        asm = self.asm_map.lookup(addr)
        src = self.src_map.lookup(addr)
        return Location(
            addr=addr,
            function=fn.name if fn else None,
            asm_file=asm.file if asm else None,
            asm_line=asm.line if asm else None,
            src_file=src.file if src else None,
            src_line=src.line if src else None,
        )
