"""Processor state: register file, memory, IP and the active ISA.

Paper Section V-D: to support runtime reconfiguration, the processor
state is extended beyond register file and memory to also contain the
*currently active ISA*.  ``switchtarget`` updates it through
:meth:`ProcessorState.switch_isa`; instruction detection always uses
the operation table of the active ISA.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..adl.model import Architecture
from .errors import SimulationError
from .memory import Memory

MASK32 = 0xFFFFFFFF

#: Default memory layout of a simulated process.
TEXT_BASE = 0x00001000
STACK_TOP = 0x00F00000
STACK_SIZE = 0x00100000
#: Return address installed for the entry function; holds a ``halt``
#: operation word followed by NOP words so it decodes as a halting
#: instruction under every issue width.
EXIT_ADDRESS = 0x00000100


class ProcessorState:
    """Architectural state of one simulated hardware thread."""

    __slots__ = (
        "arch",
        "regs",
        "mem",
        "ip",
        "isa_id",
        "halted",
        "exit_code",
        "syscall_handler",
        "isa_switches",
        "simop_count",
        "on_isa_switch",
        "on_simop",
    )

    def __init__(self, arch: Architecture, *, isa_id: Optional[int] = None) -> None:
        self.arch = arch
        self.regs: List[int] = [0] * len(arch.register_file)
        self.mem = Memory()
        self.ip = 0
        #: Initial ISA: optional parameter, else the ADL default
        #: (Section V-D start-up rule).
        self.isa_id = arch.default_isa if isa_id is None else isa_id
        if self.isa_id not in arch.isa_by_id:
            raise SimulationError(f"unknown initial ISA {self.isa_id}")
        self.halted = False
        self.exit_code = 0
        #: Installed by the Syscalls object; called by generated
        #: ``simop`` simulation functions.
        self.syscall_handler: Optional[Callable[["ProcessorState", int], Optional[int]]] = None
        self.isa_switches = 0
        self.simop_count = 0
        #: Host-side observability listeners (installed by the
        #: interpreter when an event stream or flight recorder is
        #: attached; excluded from checkpoints like syscall_handler).
        #: Called even from inside translated plans, because generated
        #: simulation functions route through switch_isa()/simop().
        self.on_isa_switch: Optional[Callable[["ProcessorState", int, int], None]] = None
        self.on_simop: Optional[Callable[["ProcessorState", int], None]] = None

    # -- hooks called from generated simulation functions ----------------

    def switch_isa(self, isa_id: int) -> None:
        """``SWITCHTARGET`` semantics: activate another ISA."""
        if isa_id not in self.arch.isa_by_id:
            raise SimulationError(
                f"switchtarget to undefined ISA {isa_id}", ip=self.ip
            )
        prev = self.isa_id
        self.isa_id = isa_id
        self.isa_switches += 1
        if self.on_isa_switch is not None:
            self.on_isa_switch(self, prev, isa_id)

    def simop(self, ident: int) -> Optional[int]:
        """``SIMOP`` semantics: run an emulated C library function."""
        if self.syscall_handler is None:
            raise SimulationError(
                f"simop {ident} executed but no C-library emulation "
                f"is installed", ip=self.ip,
            )
        self.simop_count += 1
        if self.on_simop is not None:
            self.on_simop(self, ident)
        return self.syscall_handler(self, ident)

    # -- checkpointing ----------------------------------------------------

    def save_state(self) -> Dict[str, object]:
        """Architectural state as plain data (memory is saved separately
        by :mod:`repro.snapshot` — it owns the page encoding)."""
        return {
            "regs": list(self.regs),
            "ip": self.ip,
            "isa_id": self.isa_id,
            "halted": self.halted,
            "exit_code": self.exit_code,
            "isa_switches": self.isa_switches,
            "simop_count": self.simop_count,
        }

    def load_state(self, data: Dict[str, object]) -> None:
        """Inverse of :meth:`save_state` (same architecture required)."""
        regs = list(data["regs"])
        if len(regs) != len(self.regs):
            raise SimulationError(
                f"checkpoint has {len(regs)} registers, architecture "
                f"{self.arch.name!r} has {len(self.regs)}"
            )
        isa_id = int(data["isa_id"])
        if isa_id not in self.arch.isa_by_id:
            raise SimulationError(f"checkpoint references unknown ISA {isa_id}")
        self.regs = regs
        self.ip = int(data["ip"])
        self.isa_id = isa_id
        self.halted = bool(data["halted"])
        self.exit_code = int(data["exit_code"])
        self.isa_switches = int(data["isa_switches"])
        self.simop_count = int(data["simop_count"])

    # -- conveniences -----------------------------------------------------

    @property
    def isa(self):
        return self.arch.isa_by_id[self.isa_id]

    def read_reg(self, index: int) -> int:
        return self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = value & MASK32

    def setup_stack(self) -> None:
        """Initialise SP, FP and the exit return address."""
        sp = self.arch.register_file.by_role("sp")[0].index
        ra = self.arch.register_file.by_role("ra")[0].index
        fp_regs = self.arch.register_file.by_role("fp")
        self.regs[sp] = STACK_TOP
        if fp_regs:
            self.regs[fp_regs[0].index] = STACK_TOP
        self.regs[ra] = EXIT_ADDRESS
        # halt word followed by NOP words: decodes as a halting
        # instruction under any issue width of this architecture.
        halt_op = self.isa.operation("halt")
        self.mem.store4(EXIT_ADDRESS, halt_op.const_value)
        max_width = max(isa.issue_width for isa in self.arch.isas)
        for slot in range(1, max_width):
            self.mem.store4(EXIT_ADDRESS + 4 * slot, 0)
