"""Simulator error types.

The paper stresses error detection during compiler development
(Section V, goal 4): when malicious code is generated, the simulator
must point back at the instruction address, assembly line and source
line.  :class:`SimulationError` carries that context.
"""

from __future__ import annotations

from typing import Optional


class SimulationError(Exception):
    """A fault detected while simulating (bad opcode, bad access...)."""

    def __init__(
        self,
        message: str,
        *,
        ip: Optional[int] = None,
        isa: Optional[str] = None,
        location: Optional[str] = None,
    ) -> None:
        parts = [message]
        if ip is not None:
            parts.append(f"ip={ip:#010x}")
        if isa is not None:
            parts.append(f"isa={isa}")
        if location:
            parts.append(f"at {location}")
        super().__init__(" ".join(parts))
        self.ip = ip
        self.isa = isa
        self.location = location


class DecodeError(SimulationError):
    """No operation of the active ISA matches the fetched word."""


class MemoryError_(SimulationError):
    """Access outside the simulated address space."""
