"""Programmatic debugger over the simulator (paper Section V, goal 4).

The paper lists debugging as a primary simulator use: during compiler
development, "malicious code" must be diagnosed via instruction-address
→ source mapping, an instruction-pointer history and trace data.  This
module packages those facilities behind a breakpoint/step interface:

    dbg = Debugger(program)
    dbg.break_at("quicksort")         # function name or address
    reason = dbg.cont()               # "breakpoint"
    print(dbg.where())                # addr, function, source line
    dbg.step(10)
    print(dbg.read_reg("a0"), hex(dbg.read_word(0x2000)))
    dbg.watch(0x2000)                 # data watchpoint
    dbg.cont()                        # "watchpoint" when 0x2000 changes

Everything is plain method calls — usable from tests, notebooks or an
interactive shell.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..binutils.loader import LoadedProgram
from .interpreter import Interpreter

#: cont()/step() outcomes.
STOP_BREAKPOINT = "breakpoint"
STOP_WATCHPOINT = "watchpoint"
STOP_HALTED = "halted"
STOP_STEPPED = "stepped"
STOP_BUDGET = "budget"

class Debugger:
    """Breakpoints, single-stepping and watchpoints over one program."""

    def __init__(self, program: LoadedProgram, *,
                 ip_history: int = 64) -> None:
        self.program = program
        self.state = program.state
        self.debug_info = program.debug_info
        self.interpreter = Interpreter(
            program.state, ip_history=ip_history, breakpoints=set()
        )
        #: address -> (size, last known value)
        self._watchpoints: Dict[int, Tuple[int, int]] = {}
        self.last_stop = None

    # -- breakpoints -------------------------------------------------------

    def resolve(self, location: Union[int, str]) -> int:
        """Address of a location: an int, a function name (optionally
        without its ISA mangling), or a mangled symbol."""
        if isinstance(location, int):
            return location
        for fn in self.debug_info.functions:
            if fn.name == location:
                return fn.start
        # Unmangled name: $isa$name suffix match.
        for fn in self.debug_info.functions:
            if fn.name.endswith(f"${location}"):
                return fn.start
        raise KeyError(f"no function named {location!r}")

    def break_at(self, location: Union[int, str]) -> int:
        addr = self.resolve(location)
        self.interpreter.breakpoints.add(addr)
        return addr

    def clear_break(self, location: Union[int, str]) -> None:
        self.interpreter.breakpoints.discard(self.resolve(location))

    @property
    def breakpoints(self) -> List[int]:
        return sorted(self.interpreter.breakpoints)

    # -- watchpoints -----------------------------------------------------------

    def watch(self, addr: int, size: int = 4) -> None:
        """Stop when the value at ``addr`` changes."""
        self._watchpoints[addr] = (size, self._read(addr, size))

    def clear_watch(self, addr: int) -> None:
        self._watchpoints.pop(addr, None)

    def _read(self, addr: int, size: int) -> int:
        mem = self.state.mem
        if size == 4:
            return mem.load4(addr)
        if size == 2:
            return mem.load2(addr)
        return mem.load1(addr)

    def _watch_hit(self) -> Optional[int]:
        for addr, (size, old) in self._watchpoints.items():
            new = self._read(addr, size)
            if new != old:
                self._watchpoints[addr] = (size, new)
                return addr
        return None

    # -- execution -----------------------------------------------------------------

    def step(self, count: int = 1) -> str:
        """Execute ``count`` instructions (stops earlier on halt,
        breakpoint or watchpoint)."""
        for _ in range(count):
            if self.state.halted:
                return self._stopped(STOP_HALTED)
            self.interpreter.run(max_instructions=1)
            if self._watchpoints and self._watch_hit() is not None:
                return self._stopped(STOP_WATCHPOINT)
            if self.interpreter.stopped_at_breakpoint:
                return self._stopped(STOP_BREAKPOINT)
            if self.state.halted:
                return self._stopped(STOP_HALTED)
        return self._stopped(STOP_STEPPED)

    def cont(self, max_instructions: int = 100_000_000) -> str:
        """Run until a breakpoint, watchpoint, halt, or the budget."""
        if self._watchpoints:
            # Watchpoints need per-instruction checks.
            remaining = max_instructions
            while remaining > 0:
                outcome = self.step(1)
                if outcome != STOP_STEPPED:
                    return outcome
                remaining -= 1
            return self._stopped(STOP_BUDGET)
        stats_before = self.interpreter.stats.executed_instructions
        self.interpreter.run(max_instructions=max_instructions)
        if self.interpreter.stopped_at_breakpoint:
            return self._stopped(STOP_BREAKPOINT)
        if self.state.halted:
            return self._stopped(STOP_HALTED)
        executed = (
            self.interpreter.stats.executed_instructions - stats_before
        )
        return self._stopped(
            STOP_BUDGET if executed >= max_instructions else STOP_HALTED
        )

    def _stopped(self, reason: str) -> str:
        self.last_stop = reason
        return reason

    # -- inspection ---------------------------------------------------------------

    def read_reg(self, name_or_index: Union[int, str]) -> int:
        if isinstance(name_or_index, int):
            return self.state.regs[name_or_index]
        from ..binutils.assembler import REGISTER_ALIASES

        text = name_or_index.lower()
        if text in REGISTER_ALIASES:
            return self.state.regs[REGISTER_ALIASES[text]]
        if text.startswith("r") and text[1:].isdigit():
            return self.state.regs[int(text[1:])]
        raise KeyError(f"unknown register {name_or_index!r}")

    def read_word(self, addr: int) -> int:
        return self.state.mem.load4(addr)

    def where(self):
        """Location of the current IP (function, asm line, source line)."""
        return self.debug_info.lookup(self.state.ip)

    def backtrace_ips(self) -> List[int]:
        """The recorded instruction-pointer history, oldest first."""
        history = self.interpreter.ip_history
        return list(history) if history is not None else []

    def disassemble_here(self, count: int = 4) -> List[str]:
        from .decoder import decode_instruction
        from .disasm import format_instruction

        table = self.interpreter.target.optable(self.state.isa_id)
        lines = []
        addr = self.state.ip
        for _ in range(count):
            dec = decode_instruction(table, self.state.mem, addr)
            lines.append(f"{addr:#010x}:  {format_instruction(dec)}")
            addr += dec.size
        return lines
