"""Persistent cross-run superblock translation cache.

Hot-plan translation costs an emission + ``compile`` pass per plan
(~0.3 ms); a benchmark with a few hundred hot blocks pays ~0.1 s of
pure translation on every run, and every worker of ``kahrisma
parallel`` pays it again for the *same* program.  This module keeps
translated plan sources and code objects on disk so warm starts skip
translation entirely.

Keying has two levels, mirroring the two ways a cached function can go
stale:

* the **file** key folds in everything that changes the emitted code
  globally: the plan-cache format version, the Python bytecode magic
  number and version (``marshal`` output is CPython-version specific),
  the ELF image digest, the architecture-description digest and
  :data:`~repro.sim.superblock.MAX_BLOCK_LEN`.  Any mismatch selects a
  different file — stale files are simply never read again.
* each **entry** (one plan, keyed by ``isa:entry_ip``) stores a digest
  of the instruction bytes the plan covered.  The engine recomputes
  the digest from live memory at lookup, so plans built over
  self-modified or relocated code miss instead of resurrecting stale
  translations.

Within an entry, variants are namespaced by the observing
configuration (``""`` for purely functional plans, the cycle model's
``config_signature()`` for fused ones) so one file serves functional
fast-forwarding, AIE and DOE runs side by side.

Besides per-plan entries the cache stores **whole-program modules**:
the ahead-of-time tier (:mod:`repro.sim.aot`) translates every
discovered plan into a single generated module per variant namespace
and persists it under the same digest key, so ``kahrisma compile``
output and warm ``--engine aot`` runs share the cache with the
interactive engine's entries.  Modules are megabyte-scale (one source
string plus marshalled bytecode for the whole program), so they live
in *side files* next to the JSON (``plans-<key>.mod-<ns>.bin``,
plain ``marshal``) — warm superblock runs never parse module blobs,
and warm aot runs load them without JSON/base64 overhead.

Writes are atomic (tempfile + ``os.replace``) and merge with the
on-disk state first, under a sidecar file lock (``<file>.lock``,
``flock`` where available, an ``O_EXCL`` spin elsewhere), so any
number of concurrent writers — ``kahrisma parallel`` shard workers,
``kahrisma serve`` worker processes — serialize their
read-merge-write cycles and never corrupt *or drop* each other's
entries.  Lock contention is counted (:attr:`PlanCache.lock_waits`,
exported as ``sim.plancache.lock_waits``); a writer that cannot take
the lock within a bounded wait falls back to the old merge-and-hope
write rather than stalling the simulation.  An optional entry cap
(``limit``, the CLI's ``--plan-cache-limit``) evicts
least-recently-used plan entries at save time so the file cannot grow
unboundedly across runs; evictions are counted for telemetry.
Failures to read or write the cache are silently ignored — the cache
is a pure accelerator, never load-bearing.
"""

from __future__ import annotations

import base64
import importlib.util
import hashlib
import json
import marshal
import os
import sys
import tempfile
from typing import Dict, Optional, Tuple

from ..targetgen.behavior_compiler import SIM_GLOBALS

try:
    import fcntl
except ImportError:  # non-POSIX: O_EXCL spin-lock fallback
    fcntl = None

#: Bump when the on-disk layout or the generated-function calling
#: convention changes.
FORMAT_VERSION = 1

#: Longest a writer waits for the sidecar lock before degrading to an
#: unlocked (merge-and-hope) write.  Generous: the critical section is
#: one JSON read + dump, milliseconds even for big caches.
LOCK_TIMEOUT = 10.0


class _FileLock:
    """Sidecar advisory lock serializing cache-file writers.

    ``flock`` on POSIX (kernel-cleaned on process death); an
    ``O_CREAT|O_EXCL`` spin with a staleness bound elsewhere.  Used as
    a context manager; :attr:`acquired` reports whether the lock was
    actually taken (callers degrade gracefully when it was not) and
    :attr:`contended` whether another writer held it first.
    """

    def __init__(self, path: str, timeout: float = LOCK_TIMEOUT) -> None:
        self.path = path + ".lock"
        self.timeout = timeout
        self.acquired = False
        self.contended = False
        self._fd: Optional[int] = None

    def __enter__(self) -> "_FileLock":
        import time

        deadline = time.monotonic() + self.timeout
        try:
            if fcntl is not None:
                while True:
                    fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
                    try:
                        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    except OSError:
                        self.contended = True
                        stop = False
                        while True:
                            try:
                                fcntl.flock(
                                    fd, fcntl.LOCK_EX | fcntl.LOCK_NB
                                )
                                break
                            except OSError:
                                if time.monotonic() >= deadline:
                                    stop = True
                                    break
                                time.sleep(0.005)
                        if stop:
                            os.close(fd)
                            return self
                    # The holder unlinks the sidecar on release, so the
                    # inode we opened may be orphaned by the time our
                    # flock lands — a lock on it excludes nobody.
                    # Verify the path still names our inode; reopen
                    # otherwise.
                    try:
                        live = (os.stat(self.path).st_ino
                                == os.fstat(fd).st_ino)
                    except OSError:
                        live = False
                    if live:
                        break
                    os.close(fd)
                    if time.monotonic() >= deadline:
                        return self
                self._fd = fd
                self.acquired = True
            else:  # pragma: no cover - non-POSIX fallback
                while True:
                    try:
                        fd = os.open(
                            self.path,
                            os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                            0o644,
                        )
                        self._fd = fd
                        self.acquired = True
                        return self
                    except FileExistsError:
                        self.contended = True
                        try:
                            if (time.time() - os.path.getmtime(self.path)
                                    > self.timeout * 3):
                                os.unlink(self.path)  # stale holder died
                                continue
                        except OSError:
                            pass
                        if time.monotonic() >= deadline:
                            return self
                        time.sleep(0.005)
        except OSError:
            return self  # unlockable filesystem: degrade to unlocked
        return self

    def __exit__(self, *exc) -> None:
        fd = self._fd
        self._fd = None
        if fd is None:
            return
        try:
            if fcntl is not None:
                # Unlink the sidecar *while still holding* the lock so
                # no ``*.lock`` litter outlives the writer; waiters that
                # locked the now-orphaned inode detect it via the inode
                # check in ``__enter__`` and reopen the live path.
                if self.acquired:
                    try:
                        os.unlink(self.path)
                    except OSError:
                        pass
                fcntl.flock(fd, fcntl.LOCK_UN)
                os.close(fd)
            else:  # pragma: no cover
                os.close(fd)
                os.unlink(self.path)
        except OSError:
            pass


def default_cache_dir() -> str:
    """Resolve the cache directory (override: ``KAHRISMA_CACHE_DIR``)."""
    override = os.environ.get("KAHRISMA_CACHE_DIR")
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "kahrisma")


class PlanCache:
    """Digest-keyed store of translated superblock functions.

    Create via :meth:`open`; attach to a
    :class:`~repro.sim.superblock.SuperblockEngine` through the
    interpreter's ``plan_cache`` argument.  ``save()`` is cheap when
    nothing changed, so callers flush unconditionally after a run.
    """

    def __init__(self, path: str, *, limit: Optional[int] = None) -> None:
        self.path = path
        self._entries: Dict[str, dict] = {}
        self._dirty = False
        #: Per-plan entry cap (``--plan-cache-limit``).  ``save()``
        #: evicts least-recently-used entries beyond it so the cache
        #: file cannot grow unboundedly across runs.  None = unlimited.
        self.limit = limit
        #: Entries evicted by this process (telemetry counter).
        self.evictions = 0
        #: Times a save/side-file write found the file lock held by a
        #: concurrent writer and had to wait (``sim.plancache.lock_waits``).
        self.lock_waits = 0
        #: Times the lock could not be taken within :data:`LOCK_TIMEOUT`
        #: and the write proceeded unlocked (best-effort degradation).
        self.lock_timeouts = 0
        #: Logical LRU clock: bumped on every lookup hit and record.
        #: Persisted per entry as ``"t"``; approximate across
        #: concurrent writers, which is all LRU needs.
        self._tick = 0
        #: Per-process cache of deserialised callables (marshal is
        #: cheap but not free; shard loops hit the same entries).
        self._fns: Dict[Tuple[str, str], Dict[str, object]] = {}
        self._load()

    # -- construction -------------------------------------------------------

    @classmethod
    def open(
        cls,
        *,
        elf_digest: str,
        arch_digest: str,
        directory: Optional[str] = None,
        block_len: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> "PlanCache":
        """Open (creating lazily) the cache file for one program/arch."""
        if block_len is None:
            from .superblock import MAX_BLOCK_LEN
            block_len = MAX_BLOCK_LEN
        key = hashlib.sha256(
            "\n".join(
                [
                    f"v{FORMAT_VERSION}",
                    base64.b16encode(importlib.util.MAGIC_NUMBER).decode(),
                    sys.version.split()[0],
                    elf_digest,
                    arch_digest,
                    str(block_len),
                ]
            ).encode()
        ).hexdigest()[:16]
        directory = directory if directory else default_cache_dir()
        return cls(os.path.join(directory, f"plans-{key}.json"),
                   limit=limit)

    # -- persistence --------------------------------------------------------

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return
        if data.get("version") != FORMAT_VERSION:
            return
        entries = data.get("entries")
        if isinstance(entries, dict):
            self._entries = entries
        self._tick = max(
            (int(e.get("t", 0)) for e in self._entries.values()),
            default=0,
        )

    def save(self) -> None:
        """Atomically merge-and-write; no-op when nothing was recorded.

        The read-merge-write cycle runs under the sidecar file lock so
        simultaneous writers (shard workers, serve workers) serialize:
        without it, two writers reading the same base file and
        replacing it in turn silently drop whichever entries the loser
        translated.  When the lock cannot be taken within
        :data:`LOCK_TIMEOUT` the write still happens (merge-and-hope,
        the pre-lock behaviour) — the cache must never stall a run.
        """
        if not self._dirty:
            return
        directory = os.path.dirname(self.path)
        try:
            os.makedirs(directory, exist_ok=True)
            with _FileLock(self.path) as lock:
                if lock.contended:
                    self.lock_waits += 1
                if not lock.acquired:
                    self.lock_timeouts += 1
                self._merge_write()
        except OSError:
            return  # read-only HOME, full disk, ...: run uncached

    def _merge_write(self) -> None:
        """The locked critical section of :meth:`save`."""
        directory = os.path.dirname(self.path)
        try:
            # Merge with the on-disk state: last writer wins per
            # entry, which is fine — every writer compiled from the
            # same bytes.
            merged: Dict[str, dict] = {}
            try:
                with open(self.path, "r", encoding="utf-8") as fh:
                    data = json.load(fh)
                if data.get("version") == FORMAT_VERSION:
                    on_disk = data.get("entries")
                    if isinstance(on_disk, dict):
                        merged.update(on_disk)
            except (OSError, ValueError):
                pass
            for key, entry in self._entries.items():
                existing = merged.get(key)
                if (
                    existing is not None
                    and existing.get("digest") == entry.get("digest")
                ):
                    variants = dict(existing.get("variants", {}))
                    variants.update(entry["variants"])
                    entry = dict(entry, variants=variants)
                merged[key] = entry
            limit = self.limit
            if limit is not None and len(merged) > limit:
                # LRU eviction: drop the stalest plan entries (lowest
                # logical timestamp) until the cap holds.  Modules are
                # exempt — they are the aot engine's working set.
                victims = sorted(
                    merged, key=lambda k: int(merged[k].get("t", 0))
                )[: len(merged) - limit]
                for key in victims:
                    del merged[key]
                self.evictions += len(victims)
            fd, tmp = tempfile.mkstemp(
                dir=directory, prefix=".plans-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(
                        {"version": FORMAT_VERSION, "entries": merged},
                        fh,
                    )
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._entries = merged
            self._dirty = False
        except OSError:
            return  # read-only HOME, full disk, ...: run uncached

    # -- engine interface ---------------------------------------------------

    def lookup(
        self, isa_id: int, entry_ip: int, namespace: str, digest: str
    ) -> Optional[Dict[str, object]]:
        """Return ``{variant: callable}`` or None on a miss.

        A hit may be empty — meaning a previous run attempted
        translation and compiled nothing — which still tells the
        engine not to retry.  ``digest`` must match the bytes the
        entry was built over.
        """
        key = f"{isa_id}:{entry_ip}"
        entry = self._entries.get(key)
        if entry is None or entry.get("digest") != digest:
            return None
        # LRU touch.  Deliberately does not mark the cache dirty: the
        # refreshed timestamps persist whenever a translation (or an
        # eviction) forces a write anyway, which is all the
        # approximate recency order needs.
        self._tick += 1
        entry["t"] = self._tick
        variants = entry.get("variants", {}).get(namespace)
        if variants is None:
            return None
        cached = self._fns.get((key, namespace))
        if cached is not None:
            return cached
        fns: Dict[str, object] = {}
        for name, payload in variants.items():
            fn = _revive(payload, isa_id, entry_ip)
            if fn is None:
                return None  # undecodable payload: treat as a miss
            fns[name] = fn
        self._fns[(key, namespace)] = fns
        return fns

    def record(
        self,
        isa_id: int,
        entry_ip: int,
        span: Tuple[int, int],
        digest: str,
        namespace: str,
        variants: Dict[str, Tuple[str, object]],
    ) -> None:
        """Store freshly translated variants (possibly none) for a plan."""
        key = f"{isa_id}:{entry_ip}"
        entry = self._entries.get(key)
        if entry is None or entry.get("digest") != digest:
            entry = {
                "span": [span[0], span[1]],
                "digest": digest,
                "variants": {},
            }
            self._entries[key] = entry
        self._tick += 1
        entry["t"] = self._tick
        payloads: Dict[str, dict] = {}
        for name, (source, code) in variants.items():
            payloads[name] = {
                "src": source,
                "code": base64.b64encode(marshal.dumps(code)).decode(),
            }
        entry["variants"][namespace] = payloads
        self._fns.pop((key, namespace), None)
        self._dirty = True

    # -- whole-module (ahead-of-time) interface -----------------------------

    def _module_path(self, namespace: str) -> str:
        """Side-file path for one module namespace.

        Namespaces are configuration signatures with arbitrary
        characters, so the filename carries a short digest instead.
        """
        stem = self.path[:-5] if self.path.endswith(".json") else self.path
        tag = hashlib.sha256(namespace.encode()).hexdigest()[:12]
        return f"{stem}.mod-{tag}.bin"

    def module_stamp(self, namespace: str) -> Optional[Tuple[int, int]]:
        """Cheap identity stamp of the stored module: (size, mtime_ns).

        Lets :func:`repro.sim.aot.prepare` serve its per-process memo
        without re-reading (and re-``exec``-ing) a megabyte module on
        every run; None when no module is stored.
        """
        try:
            st = os.stat(self._module_path(namespace))
        except OSError:
            return None
        return (st.st_size, st.st_mtime_ns)

    def lookup_module(self, namespace: str) -> Optional[dict]:
        """Return the stored AOT module payload for ``namespace``.

        The payload is the dict :meth:`record_module` stored (source,
        marshalled code, per-entry metadata); :mod:`repro.sim.aot`
        revives it.  The file key already pins the ELF image, the
        architecture and the block cap, so the namespace — the cycle
        model's configuration signature, ``""`` for functional — is
        the only remaining coordinate.
        """
        try:
            with open(self._module_path(namespace), "rb") as fh:
                payload = marshal.load(fh)
        except (OSError, ValueError, EOFError, TypeError):
            return None
        return payload if isinstance(payload, dict) else None

    def record_module(self, namespace: str, payload: dict) -> None:
        """Store one compiled AOT module (overwriting any old one).

        Written immediately (atomic tempfile + rename): module
        compilation is expensive enough that deferring the write to
        :meth:`save` buys nothing, and an exclusive side file per
        namespace cannot conflict with concurrent entry writers.
        """
        path = self._module_path(namespace)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            # Same sidecar lock as save(): concurrent compiles of the
            # same namespace (e.g. two serve workers racing a cold
            # cache) write identical payloads, so serializing them is
            # about avoiding wasted temp files and torn mtime stamps
            # (module_stamp feeds the per-process revival memo).
            with _FileLock(path) as lock:
                if lock.contended:
                    self.lock_waits += 1
                if not lock.acquired:
                    self.lock_timeouts += 1
                fd, tmp = tempfile.mkstemp(
                    dir=directory, prefix=".mod-", suffix=".tmp"
                )
                try:
                    with os.fdopen(fd, "wb") as fh:
                        marshal.dump(payload, fh)
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
        except (OSError, ValueError):
            return  # best effort, same contract as save()

    def __len__(self) -> int:
        return len(self._entries)


def _revive(payload: dict, isa_id: int, entry_ip: int):
    """Rebuild a callable from a cached payload; None when impossible."""
    code = None
    raw = payload.get("code")
    if raw:
        try:
            code = marshal.loads(base64.b64decode(raw))
        except (ValueError, EOFError, TypeError):
            code = None
    if code is None:
        source = payload.get("src")
        if not source:
            return None
        try:
            code = compile(
                source, f"<plancache:{isa_id}:{entry_ip:#x}>", "exec"
            )
        except SyntaxError:
            return None
    namespace = dict(SIM_GLOBALS)
    try:
        exec(code, namespace)
    except Exception:
        return None
    return namespace.get("_superblock_body")
