"""The interpretation-based simulation loop (paper Sections V, V-A, V-B).

The interpreter fetches, detects, decodes and executes instructions of
the currently active ISA.  Four engines mirror (and extend) the paper's
performance experiment (Table I / Section VII-A):

* ``nocache``    — every instruction is detected and decoded,
* ``cache``      — hash-map lookups only,
* ``predict``    — the 1-bit-predictor-style instruction prediction
                   skips most hash lookups,
* ``superblock`` — straight-line runs are translated into cached
                   execution plans chained block-to-block
                   (:mod:`repro.sim.superblock`),
* ``aot``        — whole-program ahead-of-time translation: a
                   precompiled dense IP→function table dispatches
                   covered blocks (:mod:`repro.sim.aot`), with the
                   interactive superblock engine as the fallback for
                   uncovered or invalidated IPs.

Parallel operations of a VLIW instruction are executed with
read-before-write semantics: every generated simulation function buffers
its register/memory writes, and the interpreter commits them only after
all slots have computed (equivalent to the paper's recursive
simulation-function scheme, Section V-B).

A cycle model (:mod:`repro.cycles`) can observe every executed
instruction pre-commit; a tracer records the per-operation behaviour
for RTL validation (Section V, goal 3).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Optional

from ..targetgen.optable import TargetDescription, build_target
from .decode_cache import DecodeCache
from .decoder import KIND_NOP, decode_instruction
from .errors import SimulationError
from .state import ProcessorState
from .stats import SimStats
from .superblock import SuperblockEngine

_UNLIMITED = 1 << 62

#: Budget-slice size used for cooperative cancellation checks when no
#: event stream dictates a heartbeat cadence (same default cadence).
CANCEL_SLICE = 250_000

#: Valid ``engine=`` arguments, slowest to fastest.
ENGINES = ("nocache", "cache", "predict", "superblock", "aot")


class Interpreter:
    """Drives one :class:`ProcessorState` to completion."""

    def __init__(
        self,
        state: ProcessorState,
        target: Optional[TargetDescription] = None,
        *,
        cycle_model=None,
        tracer=None,
        use_decode_cache: bool = True,
        use_prediction: bool = True,
        engine: Optional[str] = None,
        ip_history: int = 0,
        breakpoints=None,
        profiler=None,
        timeline=None,
        plan_cache=None,
        fuse_cycles: bool = True,
        aot_module=None,
        max_block_len=None,
        events=None,
        flight=None,
        cancel=None,
    ) -> None:
        self.state = state
        self.target = target if target is not None else build_target(state.arch)
        #: Hot-spot profiler (:class:`repro.telemetry.HotspotProfiler`).
        #: ``mode="exact"`` routes execution through the featureful
        #: loop for per-PC attribution; ``mode="block"`` keeps the
        #: superblock fast path and records per executed block.  When a
        #: cycle model is attached it is wrapped so per-instruction
        #: cycle/L1-miss deltas are charged to guest PCs.
        self.profiler = profiler
        #: Chrome-trace recorder (:class:`repro.telemetry.TimelineRecorder`):
        #: attached to the cycle model for per-op slot-track events and
        #: used directly for SMC instant markers.
        self.timeline = timeline
        if timeline is not None and cycle_model is not None:
            cycle_model.timeline = timeline
        if profiler is not None and cycle_model is not None:
            cycle_model = profiler.wrap_model(cycle_model)
        self.cycle_model = cycle_model
        self.tracer = tracer
        if engine is None:
            # Legacy flag spelling of the first three engines.
            if not use_decode_cache:
                engine = "nocache"
            elif not use_prediction:
                engine = "cache"
            else:
                engine = "predict"
        elif engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        else:
            use_decode_cache = engine != "nocache"
            use_prediction = engine in ("predict", "superblock", "aot")
        self.engine = engine
        self.use_decode_cache = use_decode_cache
        self.use_prediction = use_prediction
        self.cache = DecodeCache(self.target)
        #: Superblock translation engine (engine="superblock", and the
        #: interactive fallback of engine="aot").
        self.superblock = (
            SuperblockEngine(self.cache, max_block_len=max_block_len)
            if engine in ("superblock", "aot") else None
        )
        if self.superblock is not None and profiler is not None:
            self.superblock.profiler = profiler
        #: Persistent translation cache (:class:`repro.sim.plancache.
        #: PlanCache`) — flushed at the end of every run().
        self.plan_cache = plan_cache
        if self.superblock is not None:
            model = self.cycle_model
            # Cycle fusion: models offering a block compiler get their
            # accounting compiled into hot plans.  The maker sees the
            # final model configuration (timeline already attached,
            # profiler wrapping applied), so it can refuse.
            maker = (
                getattr(model, "block_compiler", None)
                if fuse_cycles and model is not None else None
            )
            fuser = maker() if maker is not None else None
            self.superblock.fuser = fuser
            # Persisted-variant namespace: purely functional plans and
            # block-observing models share the plain variants; fused
            # plans are keyed by the model's timing configuration.
            # Everything else observes per-instruction — no compiled
            # function exists to persist.
            if model is None:
                cache_ns = ""
            elif fuser is not None:
                cache_ns = model.config_signature()
            elif getattr(model, "observe_block", None) is not None:
                cache_ns = ""
            else:
                cache_ns = None
            if plan_cache is not None and cache_ns is not None:
                self.superblock.plan_cache = plan_cache
                self.superblock.cache_namespace = cache_ns
        #: Ahead-of-time table binding (:class:`repro.sim.aot.AotBinding`,
        #: engine="aot" only).  The module must serve exactly this
        #: run's variant namespace — functional for no model, the
        #: model's configuration signature for fused timing; any other
        #: observing mode has no AOT representation and the engine
        #: degrades to the interactive superblock loop (self.aot None).
        self.aot = None
        if engine == "aot" and aot_module is not None:
            model = self.cycle_model
            if model is None:
                wanted = "" if not aot_module.fused else None
            elif self.superblock.fuser is not None:
                wanted = model.config_signature()
            else:
                wanted = None
            if wanted is not None and aot_module.namespace == wanted:
                self.aot = aot_module.bind(state.mem)
        #: Shared invalidation cell: the memory listener flips it when a
        #: store overwrites translated code, so a running superblock can
        #: abort after the offending instruction commits.
        self._inv = [False]
        if use_decode_cache:
            state.mem.add_code_listener(self._on_code_write)
        self.ip_history = (
            deque(maxlen=ip_history) if ip_history > 0 else None
        )
        #: Instruction addresses that pause execution *before* the
        #: instruction runs (debugging, paper Section V goal 4).  With
        #: breakpoints set, the featureful slow loop is used.
        self.breakpoints = set(breakpoints) if breakpoints else set()
        #: Set when run() returned because a breakpoint was reached.
        self.stopped_at_breakpoint = False
        self._resume_over_breakpoint = False
        self.stats = SimStats()
        #: Live event stream (:class:`repro.telemetry.stream.EventStream`):
        #: run() slices the instruction budget at the stream's heartbeat
        #: cadence (exactly the mechanism periodic checkpointing uses,
        #: so slicing is covered by the determinism gate) and emits
        #: heartbeat/syscall/ISA-switch/SMC/trap events.  Costs nothing
        #: when unset — no engine loop checks for it.
        self.events = events
        #: Flight recorder (:class:`repro.telemetry.flight.FlightRecorder`):
        #: block-granularity trail on the superblock/AOT fast paths via
        #: the engine's observer seam; per-instruction trail on the
        #: interactive engines via the featureful loop.
        self.flight = flight
        #: Cooperative cancellation hook: a zero-argument callable
        #: polled between budget slices (the same seam heartbeats and
        #: periodic checkpoints use, so stopping early is covered by
        #: the determinism contract).  When it returns true, run()
        #: stops at the next slice boundary — an *instruction*
        #: boundary — sets :attr:`cancelled` and returns normally with
        #: the stats so far; the architectural state is resumable
        #: exactly like a checkpoint slice.
        self.cancel = cancel
        #: Set when the last run() stopped because :attr:`cancel` fired.
        self.cancelled = False
        if flight is not None and self.superblock is not None:
            sb = self.superblock
            if sb.profiler is None:
                sb.profiler = flight
            else:
                from ..telemetry.flight import _BlockFanout

                sb.profiler = _BlockFanout(sb.profiler, flight)
        if events is not None or flight is not None:
            self._install_observers()

    # -- public API -------------------------------------------------------

    def run(self, max_instructions: Optional[int] = None) -> SimStats:
        """Run until ``halt`` (or the instruction budget is exhausted).

        Returns the accumulated statistics; also available as
        :attr:`stats` afterwards.
        """
        budget = _UNLIMITED if max_instructions is None else max_instructions
        if self.stopped_at_breakpoint:
            # Resuming from a breakpoint executes its instruction once.
            self._resume_over_breakpoint = True
        self.stopped_at_breakpoint = False
        # The cache counters are the single source of truth for decode
        # and lookup statistics; SimStats gets the per-run delta.
        decodes_before = self.cache.decodes
        lookups_before = self.cache.lookups
        # ``simop_count``/``isa_switches`` live in the (checkpointable)
        # processor state and may be non-zero on a restored run; stats
        # get the per-run delta so resumed segments merge additively.
        simops_before = self.state.simop_count
        switches_before = self.state.isa_switches
        self.cancelled = False
        start = time.perf_counter()
        try:
            if self.events is not None or self.cancel is not None:
                self._dispatch_with_heartbeats(budget, start)
            else:
                self._dispatch(budget)
        except SimulationError as exc:
            self._on_trap(exc)
            raise
        except Exception as exc:  # annotate unexpected faults with the IP
            wrapped = SimulationError(
                f"internal fault: {exc!r}",
                ip=self.state.ip,
                isa=self.state.isa.name,
            )
            self._on_trap(wrapped)
            raise wrapped from exc
        self.stats.elapsed_seconds += time.perf_counter() - start
        self.stats.decoded_instructions += self.cache.decodes - decodes_before
        self.stats.cache_lookups += self.cache.lookups - lookups_before
        self.stats.simops += self.state.simop_count - simops_before
        self.stats.isa_switches += self.state.isa_switches - switches_before
        self.stats.exit_code = self.state.exit_code
        if self.plan_cache is not None:
            self.plan_cache.save()  # no-op unless new plans were compiled
        return self.stats

    def _dispatch(self, budget: int) -> None:
        """Select and run the engine loop for one budget segment."""
        profiler = self.profiler
        if (
            self.tracer is not None
            or self.ip_history is not None
            or self.breakpoints
        ):
            # Tracing, IP history and breakpoints need per-op
            # bookkeeping the translated plans deliberately skip, so
            # every engine falls back to the featureful loop here.
            self._loop_full(budget)
        elif profiler is not None and not (
            self.engine == "superblock" and profiler.mode == "block"
        ):
            # Exact profiling counts every PC: featureful loop.
            # Block-mode profiling of the superblock engine instead
            # records per executed plan and keeps the fast path.
            self._loop_full(budget)
        elif self.flight is not None and self.engine in (
            "nocache", "cache", "predict"
        ):
            # The interactive engines have no block-granularity seam;
            # flight recording uses the featureful loop's
            # per-instruction trail (priced in docs/observability.md).
            self._loop_full(budget)
        elif self.engine == "aot":
            self._loop_aot(budget)
        elif self.engine == "superblock":
            self._loop_superblock(budget)
        elif self.engine == "cache":
            self._loop_cache(budget)
        elif self.engine == "nocache":
            self._loop_nocache(budget)
        else:
            self._loop_predict(budget)

    # -- live events -------------------------------------------------------

    def _dispatch_with_heartbeats(self, budget: int, start: float) -> None:
        """Run in heartbeat-sized slices, emitting one event per slice.

        Architecturally identical to one _dispatch(budget) call: the
        checkpoint runner slices run() the same way and the determinism
        gate proves bitwise-equal cycles and state under slicing
        (including fused DOE accounting).  The cancellation hook is
        polled at the same slice boundaries, so a cancelled run stops
        on a clean instruction boundary with every event emitted.
        """
        events = self.events
        cancel = self.cancel
        every = events.heartbeat_every if events is not None else CANCEL_SLICE
        start_exec = self.stats.executed_instructions
        done = 0
        while done < budget and not self.state.halted:
            if cancel is not None and cancel():
                self.cancelled = True
                break
            before = self.stats.executed_instructions
            self._dispatch(min(every, budget - done))
            executed = self.stats.executed_instructions - before
            done += executed
            if executed == 0 or self.stopped_at_breakpoint:
                break
            if (
                events is not None
                and done < budget
                and not self.state.halted
            ):
                self._emit_heartbeat(start, start_exec)

    def _emit_heartbeat(self, start: float, start_exec: int) -> None:
        from ..telemetry.collect import collect_run_metrics

        elapsed = time.perf_counter() - start
        instructions = self.stats.executed_instructions
        counters = collect_run_metrics(self, self.cycle_model)
        # SimStats derives simops/ISA-switch counts from state deltas
        # at the *end* of run(); mid-run, read the live state counters.
        counters["sim.simops"] = self.state.simop_count
        counters["sim.isa_switches"] = self.state.isa_switches
        model = self.cycle_model
        self.events.emit(
            "heartbeat",
            instructions=instructions,
            mips=(
                round((instructions - start_exec) / elapsed / 1e6, 3)
                if elapsed > 0 else 0.0
            ),
            cycles=model.cycles if model is not None else None,
            counters=counters,
        )

    def _install_observers(self) -> None:
        """Route ProcessorState hooks into the event stream / recorder.

        ``switch_isa``/``simop`` calls are emitted by the behaviour
        compiler into *every* generated simulation function — including
        translated superblock plans and AOT modules — so these hooks
        see each event regardless of engine.  The architectural IP may
        lag inside a translated block (plans commit it at exits); the
        reported ``ip`` is the best available anchor, not a promise.
        """
        events, flight, state = self.events, self.flight, self.state

        def on_isa_switch(st, from_isa, to_isa):
            if flight is not None:
                flight.record_isa_switch(st.ip, from_isa, to_isa)
            if events is not None:
                events.emit(
                    "isa-switch", ip=st.ip,
                    from_isa=from_isa, to_isa=to_isa,
                )

        def on_simop(st, ident):
            from ..libc import LIBC_BY_ID

            fn = LIBC_BY_ID.get(ident)
            name = fn.name if fn is not None else f"simop{ident}"
            if flight is not None:
                flight.record_syscall(st.ip, ident, name)
            if events is not None:
                events.emit("syscall", ip=st.ip, ident=ident, name=name)

        state.on_isa_switch = on_isa_switch
        state.on_simop = on_simop

    def _on_trap(self, exc) -> None:
        """Attach flight-recorder context to a fatal simulation error."""
        flight = self.flight
        if flight is not None:
            flight.record_trap(self.state.ip, str(exc))
            exc.flight = flight.snapshot()
            try:
                dumped = flight.dump()
            except OSError:
                dumped = None
            if dumped is not None:
                exc.flight_dump = dumped
        if self.events is not None:
            self.events.emit("trap", error=str(exc), ip=self.state.ip)

    # -- self-modifying code ----------------------------------------------

    def _on_code_write(self, page: int, addr: int, length: int) -> None:
        """Memory listener: a store hit a page containing cached code."""
        hit = self.cache.invalidate_write(page, addr, length)
        engine = self.superblock
        if engine is not None and engine.invalidate_write(page, addr, length):
            hit = True
        binding = self.aot
        if binding is not None and binding.invalidate_write(
            page, addr, length
        ):
            hit = True
        if hit:
            self._inv[0] = True
            if self.flight is not None:
                self.flight.record_smc(addr, length)
            if self.events is not None:
                self.events.emit("smc-invalidate", addr=addr, length=length)
            if self.profiler is not None:
                # Attribute the invalidation to the overwritten code
                # address (the store's own PC may be mid-block and the
                # architectural IP stale inside translated plans).
                self.profiler.record_smc(addr)
            if self.timeline is not None:
                self.timeline.instant(
                    "smc-invalidate",
                    getattr(self.cycle_model, "cycles", 0) or 0,
                    {"addr": f"{addr:#x}", "length": length},
                )

    # -- loop variants -----------------------------------------------------

    def _loop_aot(self, budget: int) -> None:
        """Dense-table AOT dispatch with an interactive-block fallback.

        The bound table runs chained covered blocks without hash
        lookups; whenever dispatch stops at an uncovered (or
        invalidated) IP, exactly one block runs through the interactive
        superblock engine — building, caching and possibly hot-
        translating its plan as usual — before re-entering the table.
        ISA switches, halts, simops and self-modified code all live on
        the fallback path, so the generated loop never checks for them.
        """
        aot = self.aot
        if aot is None:
            # No module serves this run's observing configuration (or
            # none was prepared): the interactive engine is the tier
            # below and bitwise-identical.
            self._loop_superblock(budget)
            return
        state = self.state
        sb = self.superblock
        mem = state.mem
        model = self.cycle_model
        inv = self._inv
        flight = self.flight
        total = 0
        tail = False
        while not state.halted and total < budget:
            entry_isa, entry_ip = state.isa_id, state.ip
            executed, reason = aot.dispatch(
                state, inv, model, budget - total
            )
            if flight is not None and executed:
                # One trail entry per dense-table dispatch segment (a
                # chain of covered blocks): block-granularity context
                # at far below block-granularity cost.
                flight.record_dispatch(entry_isa, entry_ip, executed)
            total += executed
            if state.halted or total >= budget:
                break
            if reason == "budget":
                tail = True
                break
            # Uncovered IP: one interactive block, then back to the
            # table.  An undecodable entry raises here exactly as
            # executing it interactively would.
            plan = sb.plans.get((state.isa_id, state.ip))
            if plan is None:
                plan = sb.build(mem, state.isa_id, state.ip)
            if plan.n_instr > budget - total:
                tail = True
                break
            ex, sl, op, mi, mo = sb.execute(
                state, model, plan.n_instr, inv
            )
            self._flush(ex, sl, op, 0, 0, 0, mi, mo)
            total += ex
        ex, sl, op, mi, mo = aot.drain()
        self._flush(ex, sl, op, 0, 0, 0, mi, mo)
        if tail and not state.halted and total < budget:
            # The next whole block would overrun the budget: finish
            # the remaining instructions one at a time.
            self._loop_predict(budget - total)

    def _loop_superblock(self, budget: int) -> None:
        """Chained superblock plans, with a per-instruction tail."""
        executed, slots, ops_exec, mem_instr, mem_ops = (
            self.superblock.execute(
                self.state, self.cycle_model, budget, self._inv
            )
        )
        self._flush(executed, slots, ops_exec, 0, 0, 0, mem_instr, mem_ops)
        if not self.state.halted and executed < budget:
            # The next whole block would overrun the budget: finish the
            # remaining instructions one at a time (the full loop when
            # profiling, so the tail keeps per-PC attribution).
            if self.profiler is not None:
                self._loop_full(budget - executed)
            else:
                self._loop_predict(budget - executed)

    def _loop_predict(self, budget: int) -> None:
        """Decode cache + instruction prediction (the paper's fastest)."""
        state = self.state
        mem = state.mem
        regs = state.regs
        cache = self.cache.entries
        miss = self.cache.miss
        model = self.cycle_model
        s4, s2, s1 = mem.store4, mem.store2, mem.store1
        regwr: list = []
        memwr: list = []
        executed = slots = ops_exec = lookups = 0
        pred_hits = mem_instr = mem_ops = 0
        prev = None
        while not state.halted and executed < budget:
            ip = state.ip
            if prev is not None and prev.pred_ip == ip:
                dec = prev.pred_dec
                pred_hits += 1
            else:
                isa_id = state.isa_id
                key = (isa_id, ip)
                lookups += 1
                dec = cache.get(key)
                if dec is None:
                    dec = miss(mem, isa_id, ip)
                if prev is not None:
                    prev.pred_ip = ip
                    prev.pred_dec = dec
            prev = dec
            next_ip = ip + dec.size
            new_ip = None
            single = dec.single
            if single is not None:
                if single.kind_code != KIND_NOP:
                    new_ip = single.sim_fn(
                        state, single.vals, ip, next_ip, regwr, memwr
                    )
            else:
                for fn, vals in dec.exec_ops:
                    r = fn(state, vals, ip, next_ip, regwr, memwr)
                    if r is not None:
                        new_ip = r
            if model is not None:
                model.observe(dec, regs)
            if regwr:
                for reg, val in regwr:
                    regs[reg] = val
                regs[0] = 0
                del regwr[:]
            if memwr:
                for size, addr, val in memwr:
                    if size == 4:
                        s4(addr, val)
                    elif size == 2:
                        s2(addr, val)
                    else:
                        s1(addr, val)
                del memwr[:]
            state.ip = next_ip if new_ip is None else new_ip
            executed += 1
            slots += dec.n_slots
            ops_exec += dec.n_exec
            if dec.has_mem:
                mem_instr += 1
                mem_ops += dec.n_mem
        self._flush(
            executed, slots, ops_exec, 0, lookups, pred_hits,
            mem_instr, mem_ops,
        )

    def _loop_cache(self, budget: int) -> None:
        """Decode cache without instruction prediction."""
        state = self.state
        mem = state.mem
        regs = state.regs
        cache = self.cache.entries
        miss = self.cache.miss
        model = self.cycle_model
        s4, s2, s1 = mem.store4, mem.store2, mem.store1
        regwr: list = []
        memwr: list = []
        executed = slots = ops_exec = 0
        mem_instr = mem_ops = 0
        while not state.halted and executed < budget:
            ip = state.ip
            isa_id = state.isa_id
            key = (isa_id, ip)
            dec = cache.get(key)
            if dec is None:
                dec = miss(mem, isa_id, ip)
            next_ip = ip + dec.size
            new_ip = None
            single = dec.single
            if single is not None:
                if single.kind_code != KIND_NOP:
                    new_ip = single.sim_fn(
                        state, single.vals, ip, next_ip, regwr, memwr
                    )
            else:
                for fn, vals in dec.exec_ops:
                    r = fn(state, vals, ip, next_ip, regwr, memwr)
                    if r is not None:
                        new_ip = r
            if model is not None:
                model.observe(dec, regs)
            if regwr:
                for reg, val in regwr:
                    regs[reg] = val
                regs[0] = 0
                del regwr[:]
            if memwr:
                for size, addr, val in memwr:
                    if size == 4:
                        s4(addr, val)
                    elif size == 2:
                        s2(addr, val)
                    else:
                        s1(addr, val)
                del memwr[:]
            state.ip = next_ip if new_ip is None else new_ip
            executed += 1
            slots += dec.n_slots
            ops_exec += dec.n_exec
            if dec.has_mem:
                mem_instr += 1
                mem_ops += dec.n_mem
        self._flush(
            executed, slots, ops_exec, 0, executed, 0,
            mem_instr, mem_ops,
        )

    def _loop_nocache(self, budget: int) -> None:
        """Detect and decode every executed instruction (slowest)."""
        state = self.state
        mem = state.mem
        regs = state.regs
        optables = self.target.optables
        model = self.cycle_model
        s4, s2, s1 = mem.store4, mem.store2, mem.store1
        regwr: list = []
        memwr: list = []
        executed = slots = ops_exec = 0
        mem_instr = mem_ops = 0
        while not state.halted and executed < budget:
            ip = state.ip
            dec = decode_instruction(optables[state.isa_id], mem, ip)
            next_ip = ip + dec.size
            new_ip = None
            single = dec.single
            if single is not None:
                if single.kind_code != KIND_NOP:
                    new_ip = single.sim_fn(
                        state, single.vals, ip, next_ip, regwr, memwr
                    )
            else:
                for fn, vals in dec.exec_ops:
                    r = fn(state, vals, ip, next_ip, regwr, memwr)
                    if r is not None:
                        new_ip = r
            if model is not None:
                model.observe(dec, regs)
            if regwr:
                for reg, val in regwr:
                    regs[reg] = val
                regs[0] = 0
                del regwr[:]
            if memwr:
                for size, addr, val in memwr:
                    if size == 4:
                        s4(addr, val)
                    elif size == 2:
                        s2(addr, val)
                    else:
                        s1(addr, val)
                del memwr[:]
            state.ip = next_ip if new_ip is None else new_ip
            executed += 1
            slots += dec.n_slots
            ops_exec += dec.n_exec
            if dec.has_mem:
                mem_instr += 1
                mem_ops += dec.n_mem
        self._flush(
            executed, slots, ops_exec, executed, 0, 0, mem_instr, mem_ops
        )

    def _loop_full(self, budget: int) -> None:
        """Featureful slow loop: tracing, IP history, per-op bookkeeping."""
        state = self.state
        mem = state.mem
        regs = state.regs
        cache = self.cache.entries
        miss = self.cache.miss
        optables = self.target.optables
        model = self.cycle_model
        tracer = self.tracer
        history = self.ip_history
        s4, s2, s1 = mem.store4, mem.store2, mem.store1
        executed = slots = ops_exec = decodes = lookups = pred_hits = 0
        mem_instr = mem_ops = 0
        breakpoints = self.breakpoints
        profiler = self.profiler
        pc_counts = (
            profiler.pc_instructions if profiler is not None else None
        )
        flight = self.flight
        flight_append = flight.blocks.append if flight is not None else None
        prev = None
        while not state.halted and executed < budget:
            ip = state.ip
            if breakpoints and ip in breakpoints:
                if self._resume_over_breakpoint:
                    self._resume_over_breakpoint = False
                else:
                    self.stopped_at_breakpoint = True
                    break
            if history is not None:
                history.append(ip)
            if pc_counts is not None:
                pc_counts[ip] = pc_counts.get(ip, 0) + 1
            if flight_append is not None:
                flight_append(("instr", state.isa_id, ip, 1))
            if self.use_decode_cache:
                if (
                    self.use_prediction
                    and prev is not None
                    and prev.pred_ip == ip
                ):
                    dec = prev.pred_dec
                    pred_hits += 1
                else:
                    key = (state.isa_id, ip)
                    lookups += 1
                    dec = cache.get(key)
                    if dec is None:
                        dec = miss(mem, state.isa_id, ip)
                    if prev is not None:
                        prev.pred_ip = ip
                        prev.pred_dec = dec
                prev = dec
            else:
                dec = decode_instruction(optables[state.isa_id], mem, ip)
                decodes += 1
            next_ip = ip + dec.size
            new_ip = None
            regwr: list = []
            memwr: list = []
            for op in dec.ops:
                if op.kind_code == KIND_NOP:
                    continue
                op_reg_start = len(regwr)
                op_mem_start = len(memwr)
                in_regs = tuple((r, regs[r]) for r in op.srcs)
                r = op.sim_fn(state, op.vals, ip, next_ip, regwr, memwr)
                if r is not None:
                    new_ip = r
                if tracer is not None:
                    cycle = (
                        model.cycles if model is not None else executed
                    )
                    tracer.record(
                        cycle,
                        dec,
                        op,
                        in_regs,
                        tuple(regwr[op_reg_start:]),
                        tuple(memwr[op_mem_start:]),
                    )
            if model is not None:
                model.observe(dec, regs)
            for reg, val in regwr:
                regs[reg] = val
            regs[0] = 0
            for size, addr, val in memwr:
                if size == 4:
                    s4(addr, val)
                elif size == 2:
                    s2(addr, val)
                else:
                    s1(addr, val)
            state.ip = next_ip if new_ip is None else new_ip
            executed += 1
            slots += dec.n_slots
            ops_exec += dec.n_exec
            if dec.has_mem:
                mem_instr += 1
                mem_ops += dec.n_mem
        self._flush(
            executed, slots, ops_exec, decodes, lookups, pred_hits,
            mem_instr, mem_ops,
        )

    def _flush(
        self,
        executed: int,
        slots: int,
        ops_exec: int,
        decodes: int,
        lookups: int,
        pred_hits: int,
        mem_instr: int,
        mem_ops: int,
    ) -> None:
        st = self.stats
        st.executed_instructions += executed
        st.executed_slots += slots
        st.executed_ops += ops_exec
        st.prediction_hits += pred_hits
        st.memory_instructions += mem_instr
        st.memory_ops += mem_ops
        # Decode/lookup counts live in the cache (single source of
        # truth); run() derives the SimStats fields from its deltas.
        self.cache.decodes += decodes
        self.cache.lookups += lookups
