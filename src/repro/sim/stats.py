"""Simulation statistics.

Exposes exactly the quantities the paper's evaluation reports
(Section VII-A): executed vs. decoded instruction counts (decode-cache
effectiveness), hash-lookup vs. prediction-hit counts, the fraction of
memory-accessing instructions, and wall-clock derived MIPS.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Dict


@dataclass
class SimStats:
    """Counters collected by one interpreter run."""

    executed_instructions: int = 0
    #: All operation slots of executed instructions (incl. NOP padding).
    executed_slots: int = 0
    #: Non-NOP operations actually simulated.
    executed_ops: int = 0
    #: Instructions that went through detection + decoding (cache misses).
    decoded_instructions: int = 0
    #: Decode-cache hash lookups performed (prediction hits skip these).
    cache_lookups: int = 0
    #: Instruction-prediction hits (Section V-A).
    prediction_hits: int = 0
    #: Instructions containing at least one load/store operation.
    memory_instructions: int = 0
    #: Load/store operations executed.
    memory_ops: int = 0
    simops: int = 0
    isa_switches: int = 0
    #: Wall-clock seconds of the run loop (0 when not measured).
    elapsed_seconds: float = 0.0
    exit_code: int = 0

    # -- derived quantities (paper Section VII-A) ------------------------

    @property
    def decode_avoidance(self) -> float:
        """Fraction of executed instructions that skipped detect+decode.

        The paper reports 99.991 % for cjpeg with the decode cache.
        Consistent across engines: ``nocache`` decodes every dynamic
        instruction (0.0); ``cache``/``predict`` decode once per static
        instruction; ``superblock`` decodes during block translation,
        which goes through the same decode cache, so the count is
        identical to ``predict``.
        """
        if not self.executed_instructions:
            return 0.0
        return 1.0 - self.decoded_instructions / self.executed_instructions

    @property
    def lookup_avoidance(self) -> float:
        """Fraction of executed instructions that skipped the hash lookup.

        The paper reports 99.2 % avoided lookups for cjpeg.  Derived
        from ``cache_lookups`` (not ``prediction_hits``) so the value
        is meaningful under every engine:

        * ``nocache`` — the decode cache is unused: 0.0 by definition;
        * ``cache`` — one lookup per executed instruction: 0.0;
        * ``predict`` — lookups happen only on prediction misses, so
          this equals ``prediction_hits / executed_instructions`` (the
          paper's per-instruction definition);
        * ``superblock`` — prediction is per *block* (chain hits, see
          ``SuperblockEngine.chain_hits``), so ``prediction_hits``
          stays 0; lookups happen once per instruction at block-build
          time and the steady state approaches 1.0.
        """
        if not self.executed_instructions:
            return 0.0
        if not self.cache_lookups and not self.prediction_hits:
            # nocache engine: every instruction was detected+decoded.
            return 0.0
        avoided = 1.0 - self.cache_lookups / self.executed_instructions
        return avoided if avoided > 0.0 else 0.0

    @property
    def memory_instruction_fraction(self) -> float:
        """Fraction of instructions accessing memory (paper: 24.6 %)."""
        if not self.executed_instructions:
            return 0.0
        return self.memory_instructions / self.executed_instructions

    @property
    def mips(self) -> float:
        """Simulated million instructions per wall-clock second."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.executed_instructions / self.elapsed_seconds / 1e6

    #: Counters that describe *what the program did* — deterministic
    #: functions of the instruction stream, independent of execution
    #: engine, host speed and decode-cache warmth.  These (and only
    #: these) are covered by the checkpoint determinism contract: a
    #: resumed or sharded run merges to bitwise-identical values.
    #: ``decoded_instructions`` / ``cache_lookups`` /
    #: ``prediction_hits`` are host-side engine counters (a resumed
    #: segment starts with cold caches and re-decodes), and
    #: ``elapsed_seconds`` / ``mips`` are wall-clock; all are excluded.
    ARCHITECTURAL_FIELDS = (
        "executed_instructions",
        "executed_slots",
        "executed_ops",
        "memory_instructions",
        "memory_ops",
        "simops",
        "isa_switches",
        "exit_code",
    )

    def merge(self, other: "SimStats") -> None:
        """Accumulate ``other`` into this object.

        Used for multi-run totals *and* to compose the segments of a
        checkpoint-resumed or sharded run: additive counters sum (so
        ``executed_instructions``, ``elapsed_seconds`` and the derived
        MIPS reflect the whole run, not just the final segment) while
        ``exit_code`` is taken from ``other`` — the later segment
        decides how the program ended.
        """
        self.executed_instructions += other.executed_instructions
        self.executed_slots += other.executed_slots
        self.executed_ops += other.executed_ops
        self.decoded_instructions += other.decoded_instructions
        self.cache_lookups += other.cache_lookups
        self.prediction_hits += other.prediction_hits
        self.memory_instructions += other.memory_instructions
        self.memory_ops += other.memory_ops
        self.simops += other.simops
        self.isa_switches += other.isa_switches
        self.elapsed_seconds += other.elapsed_seconds
        self.exit_code = other.exit_code

    def copy(self) -> "SimStats":
        """Independent copy (checkpoint snapshots must not alias)."""
        return replace(self)

    def to_dict(self) -> Dict[str, object]:
        """All counters as a plain dict (checkpoint serialisation)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimStats":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        return cls(**data)

    def architectural_dict(self) -> Dict[str, int]:
        """The determinism-contract subset (see ARCHITECTURAL_FIELDS)."""
        return {name: getattr(self, name)
                for name in self.ARCHITECTURAL_FIELDS}
