"""Ahead-of-time whole-program translation (the tier above superblocks).

The interactive superblock engine discovers, translates and chains
plans lazily, one block at a time, paying a dict-keyed dispatch and an
engine re-entry between blocks.  This module moves all of that offline
— the generated-simulator idea of Reshadi & Dutt applied to whole
programs: ``kahrisma compile <elf>`` statically discovers every
superblock entry point in the executable, translates each plan with
the *same* emission path the interactive engine uses
(:meth:`~repro.sim.superblock.SuperblockPlan.translate`, including the
fused AIE/DOE timing variants), and concatenates the results into one
generated Python module whose dispatch loop is computed-goto style: a
``while`` over a dense IP→function table, so block-to-block chaining
is a local list index instead of a hash lookup.

On top of the per-block functions the compiler forms **traces**: runs
of covered blocks connected by constant control transfers (the
fall-through of conditional branches, the targets of jumps and calls)
are inlined — source-level, through the same emission primitives the
per-block translator uses — into single functions, and a constant
transfer back to the trace entry becomes a native ``while``
back-edge.  Inside a trace, block-to-block chaining costs nothing:
no dispatch, no call, no per-block statistics (constant-indexed hit
counters replace them, collapsed into totals once per run).  This is
where the tier's speedup over the interactive engine comes from; the
dense table still handles computed transfers between traces.

Discovery is a CFG walk from the ELF entry point and every function
symbol: inlined branch terminators expose their targets as constant
``return`` expressions in the generated source, capped/truncated
blocks fall through, and call/return points seed the successor
worklist.  A short profile-guided functional replay (budgeted, purely
optional) adds targets static walking cannot see — indirect branches
and ISA switches.  Entries are bounded to the ``.text`` segment.

The artifact is stored through the persistent plan cache as one
whole-module entry per variant namespace (``""`` functional, the cycle
model's ``config_signature()`` for fused timing), next to the ordinary
per-plan entries — which the compiler also records, so the interactive
fallback engine reuses the very same translations.

Correctness contract (the differential suite pins it bitwise):

* **Coverage is partial by design.**  Only plans ending in an inlined
  branch terminator enter the dense table; everything else — ISA
  switches, halts, simops, ``jalr rd, rd`` hazards, VLIW general
  bodies — is *uncovered*, and the interpreter falls back to the
  interactive superblock engine for exactly one block before
  re-entering the table.  Inside the table the ISA can never change
  and the machine can never halt, so the generated loop checks
  neither.
* **Self-modifying code stays byte-precise.**  Every table entry
  retains its instruction-byte digest; binding verifies digests
  against live memory, registers the covered pages with the memory's
  code-watch set, and a store into covered bytes disables exactly the
  overlapping table slots (a trace is disabled when any of its
  inlined blocks is overwritten).  A store *inside* a running block
  aborts it through the same ``inv`` cell and prefix-statistics
  accounting as the interactive engine — and since every write to
  watched code from covered code is a body store (branch terminators
  cannot store), the abort always fires before any stale inlined code
  could run, traces included.
* **Fused cycle counts are block-boundary independent** (the fusion
  régime already guarantees it: latencies are constant-folded per
  instruction, the block compilers round-trip all model state through
  ``m`` between blocks, and the fetch-floor clamp is inert without a
  branch model — and with one, the block compiler refuses
  terminators, so no fused module exists), so tables and traces built
  over statically discovered entries report bitwise the cycles of the
  lazily chained engine.

Instruction budgets stay exact: the dispatch loop pre-checks each
block (or one whole trace pass) against the remaining budget, traces
re-check at every back-edge, and the interpreter finishes a too-small
remainder per-instruction — ``max_instructions`` truncates at exactly
the same instruction count as every other engine.
"""

from __future__ import annotations

import ast
import base64
import hashlib
import marshal
import re
import time
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from ..binutils.loader import load_executable
from ..targetgen.behavior_compiler import SIM_GLOBALS, inline_control_stmts
from ..targetgen.optable import build_target
from .decode_cache import DecodeCache
from .decoder import KIND_STORE
from .errors import DecodeError
from .memory import PAGE_SHIFT, Memory
from .superblock import (
    PLAN_GENERAL,
    SuperblockPlan,
    _emit_body_lines,
    _partial_stats,
    plan_digest,
    walk_block,
)

#: Bump when the generated module layout or loop protocol changes.
AOT_FORMAT = 2

#: Instruction budget of the profile-guided discovery replay (a plain
#: functional superblock run whose plan table seeds the static walk
#: with indirect-branch and ISA-switch targets).  0 disables it.
DEFAULT_PROFILE_BUDGET = 1_000_000

#: Maximum number of blocks inlined into one trace function.
TRACE_CAP = 24

#: Dispatch-loop exit reasons (second element of the loop's return).
_EXIT_UNCOVERED = 0
_EXIT_BUDGET = 1
_EXIT_ABORT = 2

_RETURN_RE = re.compile(r"^(\s*)return (.+?)\s*$")
#: A foldable control-transfer target: digits and integer arithmetic
#: only.  Anything referencing runtime state (``regs[...]``) contains
#: letters and is left to the dense table at run time.
_CONST_RE = re.compile(r"^[\d\s()+\-*<>&|^~%]+$")

#: Warm-start memo: reviving a whole-program module costs a marshal
#: load plus an exec; repeated runs in one process (benchmarks, shard
#: workers) reuse the compiled module.  Keyed by cache path and
#: namespace, guarded by the payload's code blob.
_MODULE_MEMO: Dict[Tuple[str, str], Tuple[int, "AotModule"]] = {}


def _namespace_for(model) -> Tuple[Optional[str], object]:
    """Variant namespace an AOT module would serve for ``model``.

    Mirrors the interpreter's cycle-fusion resolution: no model runs
    the plain functional variants (``""``); a model offering a block
    compiler runs the fused variants under its configuration
    signature.  Everything else (block-observing ILP, per-instruction
    RTL, profiler-wrapped models) has no whole-module representation —
    the ``aot`` engine transparently degrades to the interactive
    superblock loop for those.
    """
    if model is None:
        return "", None
    maker = getattr(model, "block_compiler", None)
    fuser = maker() if maker is not None else None
    if fuser is None:
        return None, None
    return model.config_signature(), fuser


def _const_value(expr: str) -> Optional[int]:
    """Fold a constant integer return expression; None when dynamic."""
    if not _CONST_RE.match(expr):
        return None
    try:
        value = eval(expr, {"__builtins__": {}})  # noqa: S307
    except Exception:
        return None
    return value if isinstance(value, int) else None


def _static_successors(lines) -> List[int]:
    """Constant control-transfer targets of inlined terminator lines.

    The behaviour compiler folds decoded fields into literals, so
    static targets surface as constant ``return`` expressions
    (``return 4216``, ``return 4216 + ((-3) << 2)``); computed
    transfers (``return (regs[1]) & ...``) reference state and are
    skipped — the dense table resolves those at run time.
    """
    out: List[int] = []
    for line in lines:
        match = _RETURN_RE.match(line)
        if match is None:
            continue
        value = _const_value(match.group(2))
        if value is not None and value >= 0:
            out.append(value)
    return out


def discover(
    cache: DecodeCache,
    mem: Memory,
    seeds,
    max_len: int,
    bounds: Optional[Tuple[int, int]] = None,
) -> Dict[Tuple[int, int], SuperblockPlan]:
    """CFG-walk every reachable superblock entry point.

    ``seeds`` is an iterable of ``(isa_id, ip)`` pairs; ``bounds``
    restricts entries to ``[lo, hi)`` (the ``.text`` segment) so the
    walk cannot wander into zero-filled pages.  Uses
    :func:`~repro.sim.superblock.walk_block`, the same block
    delimitation the interactive engine applies, so both tiers carve
    identical plans.
    """
    plans: Dict[Tuple[int, int], SuperblockPlan] = {}
    work = list(seeds)
    while work:
        isa_id, ip = work.pop()
        key = (isa_id, ip)
        if key in plans:
            continue
        if bounds is not None and not (bounds[0] <= ip < bounds[1]):
            continue
        try:
            decs, terminated = walk_block(cache, mem, isa_id, ip, max_len)
        except DecodeError:
            continue  # data or a dead speculative seed: not an entry
        plan = SuperblockPlan(isa_id, ip, decs, terminated)
        plans[key] = plan
        if plan.term_dec is None:
            # Capped or truncated: control falls through.
            work.append((isa_id, plan.end_ip))
            continue
        term = plan.term_dec
        if term.single is not None:
            inlined = inline_control_stmts(
                term.single.entry.op, term.single.vals,
                plan.term_ip, plan.term_next_ip,
            )
            if inlined is not None:
                for target in _static_successors(inlined[0]):
                    work.append((isa_id, target))
        # The terminator's fall-through: branch not-taken, a call's
        # return point, the word after a switch thunk.  Dead seeds are
        # filtered by the DecodeError guard above and cost nothing.
        work.append((isa_id, plan.term_next_ip))
    return plans


# -- trace formation --------------------------------------------------------


def _plan_pieces(plan: SuperblockPlan, fuser) -> Optional[dict]:
    """Emission pieces of one full plan, kept separate for inlining.

    Runs the very same primitives :meth:`SuperblockPlan.translate`
    composes (:func:`~repro.sim.superblock._emit_body_lines`,
    :func:`~repro.targetgen.behavior_compiler.inline_control_stmts`,
    the block compiler's begin/instr/term/flush/prologue protocol) but
    keeps the body and terminator statement lists separate so the
    trace emitter can splice per-block bookkeeping between them.
    None when the plan has no full translation — such plans never
    enter a trace.
    """
    term = plan.term_dec
    if term is None or term.single is None:
        return None
    inlined = inline_control_stmts(
        term.single.entry.op, term.single.vals,
        plan.term_ip, plan.term_next_ip,
    )
    if inlined is None:
        return None
    body_decs = plan.decs[:-1]
    body_has_store = any(
        op.kind_code == KIND_STORE for d in body_decs for op in d.ops
    )
    timing_prologue: List[str] = []
    if fuser is not None:
        fuser.begin()
        emitted = _emit_body_lines(
            body_decs, body_has_store, invert_abort=True, timing=fuser
        )
        if emitted is None:
            return None
        t_timing = fuser.term(term)
        if t_timing is None:
            return None
        pre, uses_regs, loads, stores = emitted
        pre = list(pre)
        for stmt in t_timing:
            pre.append("    " + stmt)
        for stmt in fuser.flush():
            pre.append("    " + stmt)
        timing_prologue = list(fuser.prologue())
        uses_regs = uses_regs or fuser.uses_regs
    else:
        emitted = _emit_body_lines(body_decs, body_has_store,
                                   invert_abort=True)
        if emitted is None:
            return None
        pre, uses_regs, loads, stores = emitted
        pre = list(pre)
    term_lines, t_regs, t_loads, t_stores = inlined
    final = _RETURN_RE.match(term_lines[-1])
    final_succ = None
    if final is not None and final.group(1) == "    ":
        final_succ = _const_value(final.group(2))
    ret_consts = set()
    for line in term_lines:
        match = _RETURN_RE.match(line)
        if match is not None:
            value = _const_value(match.group(2))
            if value is not None:
                ret_consts.add(value)
    return {
        "pre": pre,
        "term": list(term_lines),
        "uses_regs": uses_regs or t_regs,
        "loads": loads | t_loads,
        "stores": stores | t_stores,
        "timing_prologue": timing_prologue,
        "final_succ": final_succ,
        "ret_consts": ret_consts,
    }


def _build_regions(covered_keys, pieces, prefixes) -> List[List[Tuple[int, int]]]:
    """Greedy region formation over the covered blocks.

    From every covered entry, grow a single-entry region of up to
    :data:`TRACE_CAP` covered blocks: follow the terminator's *final
    unconditional constant* transfer first (maximising zero-cost
    fall-through in the emitted layout), then pull in conditional
    branch targets — so whole loop nests (header, body, increment,
    inner loops) land in one region and their branches become internal
    jumps instead of dispatch-loop round trips.  A region is kept when
    it spans several blocks or contains a constant transfer back to
    its own entry (a loop — compiled as a native ``while`` back-edge).
    Blocks whose abort-prefix stop addresses collide (overlapping
    plans) are never merged, keeping abort accounting unambiguous.
    """
    regions: List[List[Tuple[int, int]]] = []
    covered = set(covered_keys)
    for key in covered_keys:
        isa_id, head_ip = key
        layout = [key]
        members = {head_ip}
        stops = set(prefixes.get(key) or ())
        pending: List[int] = []
        cur = key
        while len(layout) < TRACE_CAP:
            p = pieces[cur]
            for value in sorted(p["ret_consts"]):
                if value not in members and value not in pending:
                    pending.append(value)
            succ = p["final_succ"]
            candidates = ([succ] if succ is not None else []) + pending
            chosen = None
            for value in candidates:
                if value in members:
                    continue
                skey = (isa_id, value)
                if skey not in covered:
                    continue
                succ_stops = prefixes.get(skey) or {}
                if any(s in stops for s in succ_stops):
                    continue
                chosen = value
                break
            if chosen is None:
                break
            pending = [v for v in pending if v != chosen]
            members.add(chosen)
            stops.update(prefixes.get((isa_id, chosen)) or {})
            layout.append((isa_id, chosen))
            cur = (isa_id, chosen)
        back_edge = any(head_ip in pieces[k]["ret_consts"] for k in layout)
        if len(layout) == 1 and not back_edge:
            continue
        regions.append(layout)
    return regions


def _emit_trace(
    name: str,
    chain: List[Tuple[int, int]],
    plans,
    pieces,
    index_of: Dict[Tuple[int, int], int],
    fused: bool,
) -> List[str]:
    """Emit one region function: inlined blocks, internal jumps.

    Protocol: ``(state, inv[, m], _zh, _zb)`` where ``_zh`` is the
    per-entry hit-count list and ``_zb`` the remaining instruction
    budget; returns ``(next_ip, executed)`` — ``next_ip`` bit-inverted
    on a self-modifying-code abort, in which case ``executed``
    excludes the aborted block (its prefix is charged by the caller).

    Layout: one ``while 1`` whose body is the region's blocks in
    layout order.  A final constant transfer to the next block falls
    straight through (zero cost).  Any other constant transfer to a
    member block sets a segment selector ``_zj`` and ``continue``s;
    the loop body is partitioned into ``if _zj == k:`` segments
    starting at each such join, so re-entry scans a few integer
    compares instead of a dispatch-loop round trip.  Backward jumps
    re-check the budget first — position strictly increases between
    checks, so one pass can never execute more than ``pass_ni``
    (the region's total instruction count) without a check, which
    keeps the caller's budget pre-check sound.  Everything without a
    constant in-region target returns to the dispatch loop.
    """
    isa_id, head_ip = chain[0]
    position = {k[1]: j for j, k in enumerate(chain)}
    pass_ni = sum(plans[k].n_instr for k in chain)

    # Pass 1: join positions — members entered by an explicit internal
    # jump (anything but the dropped final fall-through transfer).
    joins = set()
    for j, k in enumerate(chain):
        term_lines = pieces[k]["term"]
        next_ip = chain[j + 1][1] if j + 1 < len(chain) else None
        for pos, line in enumerate(term_lines):
            match = _RETURN_RE.match(line)
            if match is None:
                continue
            value = _const_value(match.group(2))
            if value is None or value not in position:
                continue
            if (
                pos == len(term_lines) - 1
                and match.group(1) == "    "
                and value == next_ip
            ):
                continue  # fall-through, not a jump
            joins.add(position[value])
    seg_of: Dict[int, int] = {}
    seg = -1
    for j in range(len(chain)):
        if j == 0 or j in joins:
            seg += 1
        seg_of[j] = seg
    nsegs = seg + 1
    base = "        " if nsegs > 1 else "    "

    uses_regs = False
    loads: set = set()
    stores: set = set()
    for k in chain:
        p = pieces[k]
        uses_regs = uses_regs or p["uses_regs"]
        loads |= p["loads"]
        stores |= p["stores"]
    args = "state, inv, m, _zh, _zb" if fused else "state, inv, _zh, _zb"
    out = [f"def {name}({args}):"]
    if uses_regs:
        out.append("    regs = state.regs")
    for intrinsic in sorted(loads):
        size = intrinsic[1]
        out.append(f"    ld{size} = state.mem.load{size}")
    for size in sorted(stores):
        out.append(f"    st{size} = state.mem.store{size}")
    out.append("    _zn = 0")
    if nsegs > 1:
        out.append("    _zj = 0")
    out.append("    while 1:")

    def emit_return(j: int, indent: str, expr: str) -> None:
        value = _const_value(expr)
        if value is not None and value in position:
            target = position[value]
            if target <= j:
                # Backward jump: re-check the budget first so one
                # call can never overrun the caller's allowance.
                out.append(f"{base}{indent}if _zn + {pass_ni} > _zb:")
                out.append(f"{base}{indent}    return {value}, _zn")
            if nsegs > 1:
                out.append(f"{base}{indent}_zj = {seg_of[target]}")
            out.append(f"{base}{indent}continue")
        else:
            out.append(f"{base}{indent}return ({expr}), _zn")

    for j, k in enumerate(chain):
        if nsegs > 1 and (j == 0 or j in joins):
            out.append(f"        if _zj == {seg_of[j]}:")
        p = pieces[k]
        plan = plans[k]
        next_ip = chain[j + 1][1] if j + 1 < len(chain) else None
        for stmt in p["timing_prologue"]:
            out.append(base + "    " + stmt)
        for line in p["pre"]:
            match = _RETURN_RE.match(line)
            if match is not None:
                # A self-modifying-code abort: the block is unfinished,
                # so ``_zn`` (completed blocks only) is exactly right.
                emit_return(j, match.group(1), match.group(2))
            else:
                out.append(base + line)
        out.append(f"{base}    _zn += {plan.n_instr}")
        out.append(f"{base}    _zh[{index_of[k]}] += 1")
        term_lines = p["term"]
        fell = False
        for pos, line in enumerate(term_lines):
            match = _RETURN_RE.match(line)
            if match is None:
                out.append(base + line)
                continue
            indent, expr = match.group(1), match.group(2)
            if (
                pos == len(term_lines) - 1
                and indent == "    "
                and next_ip is not None
                and _const_value(expr) == next_ip
            ):
                fell = True
                continue  # falls through into the next inlined block
            emit_return(j, indent, expr)
        if fell and nsegs > 1 and (j + 1) in joins:
            # Fall-through into a join block: select its segment so
            # the `if _zj == k` guard right below lets it in.
            out.append(f"{base}    _zj = {seg_of[j + 1]}")
    return out


# -- ahead-of-time optimisation ---------------------------------------------
#
# The interactive engine translates under a latency budget (a plan may
# be translated and thrown away after a few executions), so its
# emission stays deliberately simple.  The AOT tier translates once,
# offline — it can afford a real optimisation pass over the generated
# source.  Two transforms, both exact:
#
# * **Sign-extension inlining**: ``s8/s16/s32(x)`` helper calls become
#   the branch-free expression ``((x & mask) ^ sign) - sign`` — same
#   two's-complement result, no Python call.
# * **Register promotion**: constant-indexed ``regs[k]`` accesses
#   become function locals ``_rk``, loaded once at entry and written
#   back (written registers only) immediately before *every* return —
#   abort returns included, so the architectural register file is
#   bit-exact at each exit point, exactly as the unpromoted code left
#   it.  Inside a trace the back-edge ``continue`` keeps the registers
#   in locals across iterations, which is where the win lives.
#   Promotion is skipped entirely when any ``regs`` use is not a
#   constant-indexed subscript (aliasing would be unsound).

#: ``name -> (mask, sign bit)`` of the inlinable sign-extend helpers
#: (their definitions live in ``behavior_compiler``; the inlined
#: expression is the branch-free equivalent).
_SEXT_HELPERS = {
    "s8": (0xFF, 0x80),
    "s16": (0xFFFF, 0x8000),
    "s32": (0xFFFFFFFF, 0x80000000),
}

_MASK32_C = 0xFFFFFFFF
_SIGN32_C = 0x80000000


def _is_masked_clean(node: ast.AST) -> bool:
    """Is ``node``'s value provably already in ``[0, 2**32)``?

    Register-file reads are clean by invariant (every write path masks
    — the emitter's ``& MASK32``, the loader, the syscall layer), the
    memory intrinsics return masked values, and masking/right-shifting
    a clean value stays clean.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int) and 0 <= node.value <= _MASK32_C
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == "regs"
    ):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("ld1", "ld2", "ld4")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitAnd):
        return any(
            isinstance(s, ast.Constant)
            and isinstance(s.value, int)
            and 0 <= s.value <= _MASK32_C
            for s in (node.left, node.right)
        )
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.RShift):
        return _is_masked_clean(node.left)
    return False


def _ring_simplify(node: ast.AST) -> ast.AST:
    """Simplify ``node`` given it sits under a ``& 0xFFFFFFFF`` mask.

    Mod-2**32 congruence is preserved by ``+ - * <<`` (left operand)
    and by the bitwise operators (bit *i* of a result depends only on
    bits ``<= i`` of the operands), so inside a masked context
    ``s32(x)`` is congruent to ``x`` and an inner ``& 0xFFFFFFFF`` is
    redundant.  Right shifts and divisions depend on high bits and are
    deliberately not descended into.
    """
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "s32"
        and len(node.args) == 1
        and not node.keywords
    ):
        return _ring_simplify(node.args[0])
    if isinstance(node, ast.BinOp):
        op = node.op
        if isinstance(op, ast.BitAnd):
            if (
                isinstance(node.right, ast.Constant)
                and node.right.value == _MASK32_C
            ):
                return _ring_simplify(node.left)
            if (
                isinstance(node.left, ast.Constant)
                and node.left.value == _MASK32_C
            ):
                return _ring_simplify(node.right)
        if isinstance(op, (ast.Add, ast.Sub, ast.Mult,
                           ast.BitAnd, ast.BitOr, ast.BitXor)):
            node.left = _ring_simplify(node.left)
            node.right = _ring_simplify(node.right)
            return node
        if isinstance(op, ast.LShift):
            node.left = _ring_simplify(node.left)
            return node
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node.operand = _ring_simplify(node.operand)
        return node
    return node


class _RingMask(ast.NodeTransformer):
    """Mask-context and identity folding over generated expressions.

    ``E & 0xFFFFFFFF`` ring-simplifies ``E`` and disappears entirely
    when ``E`` is provably masked already; the integer identities
    ``x+0``, ``x-0``, ``x<<0``, ``x|0``, ``x^0``, ``x*1`` fold (the
    emitter produces them for register moves and zero offsets, and
    they are exact for Python integers).
    """

    def visit_BinOp(self, node: ast.BinOp):
        self.generic_visit(node)
        op = node.op
        if isinstance(op, ast.BitAnd):
            for this, other in (
                (node.right, node.left), (node.left, node.right)
            ):
                if (
                    isinstance(this, ast.Constant)
                    and this.value == _MASK32_C
                ):
                    inner = _ring_simplify(other)
                    if _is_masked_clean(inner):
                        return inner
                    return ast.BinOp(inner, ast.BitAnd(),
                                     ast.Constant(_MASK32_C))
        if isinstance(node.right, ast.Constant):
            value = node.right.value
            if value == 0 and isinstance(
                op, (ast.Add, ast.Sub, ast.LShift, ast.RShift,
                     ast.BitOr, ast.BitXor)
            ):
                return node.left
            if value == 1 and isinstance(op, ast.Mult):
                return node.left
        if (
            isinstance(node.left, ast.Constant)
            and node.left.value == 0
            and isinstance(op, (ast.Add, ast.BitOr, ast.BitXor))
        ):
            return node.right
        return node


def _is_s32_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "s32"
        and len(node.args) == 1
        and not node.keywords
    )


class _SignedCompare(ast.NodeTransformer):
    """``s32(a) <op> s32(b)`` without materialising signed values.

    For masked values the map ``y = s32(x) -> y + 2**31 = x ^ 2**31``
    is a monotonic bijection onto ``[0, 2**32)``, so flipping the sign
    bit of both operands preserves every ordering comparison; equality
    needs no flip at all.
    """

    def visit_Compare(self, node: ast.Compare):
        self.generic_visit(node)
        if len(node.ops) != 1:
            return node
        left, right = node.left, node.comparators[0]
        if not (_is_s32_call(left) and _is_s32_call(right)):
            return node
        op = node.ops[0]
        if isinstance(op, (ast.Eq, ast.NotEq)):
            node.left = _masked(left.args[0])
            node.comparators[0] = _masked(right.args[0])
        elif isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
            node.left = _flip_sign(left.args[0])
            node.comparators[0] = _flip_sign(right.args[0])
        return node


def _masked(arg: ast.AST) -> ast.AST:
    if _is_masked_clean(arg):
        return arg
    return ast.BinOp(arg, ast.BitAnd(), ast.Constant(_MASK32_C))


def _flip_sign(arg: ast.AST) -> ast.AST:
    return ast.BinOp(_masked(arg), ast.BitXor(), ast.Constant(_SIGN32_C))


class _InlineSext(ast.NodeTransformer):
    """Replace ``sN(x)`` calls with ``((x & mask) ^ sign) - sign``."""

    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _SEXT_HELPERS
            and len(node.args) == 1
            and not node.keywords
        ):
            mask, sign = _SEXT_HELPERS[node.func.id]
            masked = ast.BinOp(node.args[0], ast.BitAnd(),
                               ast.Constant(mask))
            flipped = ast.BinOp(masked, ast.BitXor(), ast.Constant(sign))
            return ast.BinOp(flipped, ast.Sub(), ast.Constant(sign))
        return node


class _InlineLoad4(ast.NodeTransformer):
    """Open-code the aligned-word fast path of ``Memory.load4``.

    ``ld4(E)`` becomes an :class:`ast.IfExp` that masks the address
    into a walrus temp, indexes the per-page word ``memoryview`` when
    the address is aligned and the page exists, and otherwise falls
    back to the bound ``ld4`` — which also covers big-endian hosts,
    where ``Memory`` keeps no word views and ``_zg`` always returns
    None.  The walrus temps are safe to share between sites: each
    site's uses sit between its own assignment and its result, and
    Python fully evaluates nested/earlier sites first.

    Requires ``_zg = state.mem._views.get`` in the function prologue
    (``_optimize_source`` inserts it when any site was rewritten; the
    ``_views`` dict is mutated in place, never rebound, so the bound
    ``get`` cannot go stale).
    """

    _TEMPLATE = (
        "_zw[(_za & 4095) >> 2]"
        " if not (_za := _ZARG) & 3"
        " and (_zw := _zg(_za >> 12)) is not None"
        " else ld4(_za)"
    )

    def __init__(self) -> None:
        self.count = 0

    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "ld4"
            and len(node.args) == 1
            and not node.keywords
        ):
            self.count += 1
            expr = ast.parse(self._TEMPLATE, mode="eval").body
            arg = _masked(node.args[0])

            class _Splice(ast.NodeTransformer):
                def visit_Name(self, name: ast.Name):
                    return arg if name.id == "_ZARG" else name

            return _Splice().visit(expr)
        return node


class _PromoteRegs(ast.NodeTransformer):
    def visit_Subscript(self, node: ast.Subscript):
        self.generic_visit(node)
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "regs"
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, int)
        ):
            return ast.Name(id=f"_r{node.slice.value}", ctx=node.ctx)
        return node


def _promote_registers(fn: ast.FunctionDef, always: bool) -> None:
    """Promote ``regs[const]`` to locals in one generated function.

    ``always`` forces promotion for trace functions (their loops
    amortise the entry loads); plain block functions are promoted only
    when the static access count beats the load/write-back overhead.
    """
    accounted = set()
    used: Dict[int, int] = {}
    written = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "regs"
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, int)
        ):
            accounted.add(id(node.value))
            index = node.slice.value
            used[index] = used.get(index, 0) + 1
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                written.add(index)
    bind_at = None
    for i, stmt in enumerate(fn.body):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "regs"
        ):
            bind_at = i
            accounted.add(id(stmt.targets[0]))
            break
    if bind_at is None or not used:
        return
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Name)
            and node.id == "regs"
            and id(node) not in accounted
        ):
            return  # regs escapes the constant-subscript pattern
    if not always and sum(used.values()) < len(used) + len(written) + 2:
        return
    _PromoteRegs().visit(fn)
    inits = [
        ast.parse(f"_r{k} = regs[{k}]").body[0] for k in sorted(used)
    ]
    fn.body[bind_at + 1:bind_at + 1] = inits
    if not written:
        return
    write_back = [f"regs[{k}] = _r{k}" for k in sorted(written)]

    def rewrite(body):
        out = []
        for stmt in body:
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if sub:
                    setattr(stmt, field, rewrite(sub))
            if isinstance(stmt, ast.Return):
                out.extend(ast.parse(s).body[0] for s in write_back)
            out.append(stmt)
        return out

    fn.body = rewrite(fn.body)


#: Optimised-source memo, keyed by input digest.  The AST passes are
#: the dominant cost of a whole-module compile, and identical inputs
#: recur heavily — fused timing statements bake no memory-hierarchy
#: parameters (accesses go through the bound model at run time), so
#: two hierarchy configurations translate every plan to byte-identical
#: source, and shared library blocks repeat across programs.
_OPTIMIZE_MEMO: Dict[Tuple[bytes, bool], str] = {}


def _optimize_source(source: str, *, always_promote: bool = False) -> str:
    """Run the AOT optimisation pass over one generated function.

    Exact-semantics transforms only (see the section comment above);
    any parse or unparse failure returns the source untouched — the
    pass is an accelerator, never load-bearing.
    """
    memo_key = (
        hashlib.sha256(source.encode("utf-8")).digest(), always_promote
    )
    memoised = _OPTIMIZE_MEMO.get(memo_key)
    if memoised is not None:
        return memoised
    try:
        tree = ast.parse(source)
        fn = tree.body[0]
        if not isinstance(fn, ast.FunctionDef):
            return source
        _RingMask().visit(fn)
        _SignedCompare().visit(fn)
        _InlineSext().visit(fn)
        loads = _InlineLoad4()
        loads.visit(fn)
        if loads.count:
            fn.body.insert(0, ast.parse("_zg = state.mem._views.get").body[0])
        _promote_registers(fn, always_promote)
        # No fix_missing_locations: ast.unparse is purely structural,
        # and the caller compiles the unparsed text, never this tree.
        result = ast.unparse(tree)
    except (SyntaxError, ValueError, RecursionError):
        return source
    _OPTIMIZE_MEMO[memo_key] = result
    return result


# -- module emission --------------------------------------------------------


def _emit_module(
    namespace: str, block_sources, trace_sources, fused: bool
) -> Tuple[str, object]:
    """Concatenate plan functions, trace functions and the loop."""
    call = "row[0](state, inv, m)" if fused else "row[0](state, inv)"
    trace_call = (
        "row[0](state, inv, m, hits, budget - executed)" if fused
        else "row[0](state, inv, hits, budget - executed)"
    )
    parts = [
        "# Generated by repro.sim.aot — whole-program superblock module.",
        f"# namespace: {namespace!r}  blocks: {len(block_sources)}  "
        f"traces: {len(trace_sources)}",
    ]
    parts.extend(block_sources)
    parts.extend(trace_sources)
    parts.append(
        "\n".join(
            [
                "def _aot_loop(state, inv, table, base, n, budget, hits, m):",
                "    ip = state.ip",
                "    executed = 0",
                "    while 1:",
                "        i = (ip - base) >> 2",
                "        if 0 <= i < n:",
                "            row = table[i]",
                "        else:",
                "            row = None",
                "        if row is None:",
                "            state.ip = ip",
                f"            return executed, {_EXIT_UNCOVERED}, 0, 0",
                "        if executed + row[1] > budget:",
                "            state.ip = ip",
                f"            return executed, {_EXIT_BUDGET}, 0, 0",
                "        if row[3]:",
                f"            r, k = {trace_call}",
                "            executed += k",
                "            if r < 0:",
                f"                return executed, {_EXIT_ABORT}, ~r, row[2]",
                "        else:",
                f"            r = {call}",
                "            if r < 0:",
                f"                return executed, {_EXIT_ABORT}, ~r, row[2]",
                "            hits[row[2]] += 1",
                "            executed += row[1]",
                "        ip = r",
            ]
        )
    )
    source = "\n\n".join(parts) + "\n"
    code = compile(source, f"<aot:{namespace or 'functional'}>", "exec")
    return source, code


class AotModule:
    """One compiled whole-program module (immutable, bind per run)."""

    def __init__(
        self,
        namespace: str,
        fused: bool,
        source: str,
        code,
        entries: List[dict],
        traces: List[dict],
    ) -> None:
        self.namespace = namespace
        self.fused = fused
        self.source = source
        self.code = code
        #: Per-entry metadata: ``isa``, ``ip``, ``span``, ``digest``,
        #: ``fn``, ``stats`` (n_instr, n_slots, n_exec, n_mem_instr,
        #: n_mem_ops) and ``prefix`` (cumulative stats keyed by each
        #: store site's successor IP, for mid-block abort accounting).
        #: Entry order is part of the module format: trace code bakes
        #: hit-counter indices in as constants.
        self.entries = entries
        #: Per-trace metadata: ``fn``, ``head`` (the entry index whose
        #: table slot the trace occupies), ``blocks`` (entry indices
        #: of every inlined block — all must be live for the trace to
        #: bind), ``ni`` (one whole-pass instruction count, the
        #: dispatch budget check) and ``prefix`` (the inlined blocks'
        #: abort-prefix stats merged, collision-free by construction).
        self.traces = traces
        module_ns: Dict[str, object] = dict(SIM_GLOBALS)
        exec(code, module_ns)
        self._loop = module_ns["_aot_loop"]
        self._fns = [module_ns[e["fn"]] for e in entries]
        self._trace_fns = [module_ns[t["fn"]] for t in traces]

    def __len__(self) -> int:
        return len(self.entries)

    def payload(self) -> dict:
        """Serialise for :meth:`~repro.sim.plancache.PlanCache.record_module`."""
        return {
            "format": AOT_FORMAT,
            "namespace": self.namespace,
            "fused": self.fused,
            "src": self.source,
            "code": marshal.dumps(self.code),
            "entries": self.entries,
            "traces": self.traces,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> Optional["AotModule"]:
        """Revive a cached module; None when undecodable (cache miss)."""
        if payload.get("format") != AOT_FORMAT:
            return None
        source = payload.get("src")
        entries = payload.get("entries")
        traces = payload.get("traces")
        if not isinstance(source, str) or not isinstance(entries, list):
            return None
        if not isinstance(traces, list):
            traces = []
        code = None
        raw = payload.get("code")
        if raw:
            try:
                if isinstance(raw, str):
                    raw = base64.b64decode(raw)
                code = marshal.loads(raw)
            except (ValueError, EOFError, TypeError):
                code = None
        if code is None:
            try:
                code = compile(source, "<aot:cached>", "exec")
            except SyntaxError:
                return None
        try:
            return cls(
                str(payload.get("namespace", "")),
                bool(payload.get("fused")),
                source,
                code,
                entries,
                traces,
            )
        except Exception:
            return None

    def bind(self, mem: Memory) -> "AotBinding":
        """Attach the module to one run's memory image."""
        return AotBinding(self, mem)


def _parse_prefix(raw) -> Optional[Dict[int, Tuple[int, ...]]]:
    if not raw:
        return None
    return {int(k): tuple(v) for k, v in raw.items()}


class AotBinding:
    """Per-run state of an :class:`AotModule`: tables, hits, SMC.

    Entries whose instruction-byte digest no longer matches live
    memory are left out of the table (the interactive engine covers
    them); slots overwritten *during* the run are disabled in place,
    exactly as byte-precise as the interactive engine's plan
    invalidation.  A trace occupies its head block's table slot and is
    bound (and stays live) only while every inlined block's bytes are
    intact.
    """

    def __init__(self, module: AotModule, mem: Memory) -> None:
        self.module = module
        entries = module.entries
        n_entries = len(entries)
        #: Per-entry execution counts (plain dispatch and inlined
        #: trace constituents both bump these); collapsed into
        #: statistics totals by :meth:`drain` once per run segment.
        self.hits: List[int] = [0] * n_entries
        self._stats: List[Tuple[int, ...]] = [
            tuple(e["stats"]) for e in entries
        ]
        #: Abort-prefix stats of the occupant dispatched under each
        #: entry index (the merged map for traces).
        self._prefix: List[Optional[dict]] = [None] * n_entries
        self._pending = [0, 0, 0, 0, 0]
        self._tables: Dict[int, Tuple[int, int, List]] = {}
        #: page -> [(isa, slot ip, spans)] of bound occupants, for SMC.
        self._by_page: Dict[int, List[Tuple[int, int, List]]] = {}
        self._loop = module._loop
        self.entries_total = n_entries
        self.entries_stale = 0
        self.traces_total = len(module.traces)
        self.traces_bound = 0
        self.rows_invalidated = 0
        self.dispatches = 0
        self.aborts = 0
        self.blocks_executed = 0

        live = [False] * n_entries
        for index, entry in enumerate(entries):
            start, end = entry["span"]
            if plan_digest(mem, (start, end)) == entry["digest"]:
                live[index] = True
            else:
                self.entries_stale += 1
        self.entries_bound = sum(live)

        # Occupants: every live block, then traces overriding their
        # head block's slot.  Occupant: (fn, budget-check instruction
        # count, entry index, is_trace, spans, prefix).
        occupants: Dict[Tuple[int, int], Tuple] = {}
        for index, entry in enumerate(entries):
            if not live[index]:
                continue
            occupants[(entry["isa"], entry["ip"])] = (
                module._fns[index],
                entry["stats"][0],
                index,
                0,
                [tuple(entry["span"])],
                _parse_prefix(entry.get("prefix")),
            )
        for t_index, trace in enumerate(module.traces):
            if not all(live[i] for i in trace["blocks"]):
                continue
            head = entries[trace["head"]]
            occupants[(head["isa"], head["ip"])] = (
                module._trace_fns[t_index],
                trace["ni"],
                trace["head"],
                1,
                [tuple(entries[i]["span"]) for i in trace["blocks"]],
                _parse_prefix(trace.get("prefix")),
            )
            self.traces_bound += 1

        by_isa: Dict[int, List[Tuple[int, Tuple]]] = {}
        page_spans: Dict[int, List[Tuple[int, int]]] = {}
        for (isa_id, ip), occ in occupants.items():
            self._prefix[occ[2]] = occ[5]
            by_isa.setdefault(isa_id, []).append((ip, occ))
            pages = set()
            for start, end in occ[4]:
                mem.watch_code(start, end - start)
                span_pages = range(
                    start >> PAGE_SHIFT, ((end - 1) >> PAGE_SHIFT) + 1
                )
                pages.update(span_pages)
                for page in span_pages:
                    page_spans.setdefault(page, []).append((start, end))
            for page in pages:
                self._by_page.setdefault(page, []).append(
                    (isa_id, ip, occ[4])
                )
        #: page -> (sorted merged span starts, matching ends): the
        #: O(log n) reject for data stores landing on a watched page
        #: but outside every covered byte range — the overwhelmingly
        #: common case when code and writable data share a page.
        self._page_ranges: Dict[int, Tuple[List[int], List[int]]] = {}
        for page, spans in page_spans.items():
            starts: List[int] = []
            ends: List[int] = []
            for start, end in sorted(spans):
                if ends and start <= ends[-1]:
                    if end > ends[-1]:
                        ends[-1] = end
                else:
                    starts.append(start)
                    ends.append(end)
            self._page_ranges[page] = (starts, ends)
        for isa_id, slots in by_isa.items():
            base = min(ip for ip, _ in slots)
            top = max(ip for ip, _ in slots)
            n = ((top - base) >> 2) + 1
            table: List = [None] * n
            for ip, occ in slots:
                # Dense-table row: (fn, n_instr, entry index, is_trace).
                table[(ip - base) >> 2] = (occ[0], occ[1], occ[2], occ[3])
            self._tables[isa_id] = (base, n, table)

    # -- execution ---------------------------------------------------------

    def dispatch(self, state, inv, model, budget: int) -> Tuple[int, str]:
        """Run covered blocks until the table runs out or budget does.

        Returns ``(executed, reason)`` where ``reason`` is
        ``"uncovered"`` (the next IP has no live row — the caller runs
        one interactive block) or ``"budget"`` (the next row would
        overrun — the caller finishes per-instruction).  ``executed``
        feeds the caller's budget only; statistics accumulate in the
        per-entry hit counts and are flushed once via :meth:`drain`.
        """
        loop = self._loop
        tables = self._tables
        pending = self._pending
        executed = 0
        self.dispatches += 1
        while True:
            table = tables.get(state.isa_id)
            if table is None:
                return executed, "uncovered"
            base, n, dense = table
            ex, reason, stop, entry_index = loop(
                state, inv, dense, base, n, budget - executed,
                self.hits, model,
            )
            executed += ex
            if reason != _EXIT_ABORT:
                return executed, (
                    "budget" if reason == _EXIT_BUDGET else "uncovered"
                )
            # A store rewrote covered code mid-block: charge the
            # committed prefix (the aborting store included), resume
            # at its successor.  The write listener already disabled
            # the overlapping slots, so re-entering the loop falls out
            # at ``stop`` and the interactive engine takes over.
            self.aborts += 1
            inv[0] = False
            prefix = self._prefix[entry_index]
            pre = prefix.get(stop) if prefix is not None else None
            if pre is not None:
                executed += pre[0]
                for k in range(5):
                    pending[k] += pre[k]
            state.ip = stop

    def drain(self) -> Tuple[int, int, int, int, int]:
        """Collapse per-entry hit counts into statistics totals (once)."""
        hits = self.hits
        stats = self._stats
        ex = sl = op = mi = mo = 0
        for index, count in enumerate(hits):
            if count:
                st = stats[index]
                ex += count * st[0]
                sl += count * st[1]
                op += count * st[2]
                mi += count * st[3]
                mo += count * st[4]
                self.blocks_executed += count
                hits[index] = 0
        pending = self._pending
        if pending[0] or pending[1] or pending[2]:
            ex += pending[0]
            sl += pending[1]
            op += pending[2]
            mi += pending[3]
            mo += pending[4]
            self._pending = [0, 0, 0, 0, 0]
        return ex, sl, op, mi, mo

    # -- self-modifying code ----------------------------------------------

    def invalidate_write(self, page: int, addr: int, length: int) -> bool:
        """Disable table slots whose covered bytes intersect the write."""
        ranges = self._page_ranges.get(page)
        if ranges is None:
            return False
        end = addr + length
        starts, ends = ranges
        i = bisect_right(starts, addr)
        if not ((i and ends[i - 1] > addr)
                or (i < len(starts) and starts[i] < end)):
            return False
        occupants = self._by_page.get(page)
        if not occupants:
            return False
        hit = False
        for isa_id, ip, spans in occupants:
            if not any(s < end and addr < e for s, e in spans):
                continue
            table = self._tables.get(isa_id)
            if table is None:
                continue
            base, n, dense = table
            slot = (ip - base) >> 2
            if 0 <= slot < n and dense[slot] is not None:
                dense[slot] = None
                self.rows_invalidated += 1
                hit = True
        return hit


def compile_module(
    elf,
    arch,
    *,
    model=None,
    max_block_len: Optional[int] = None,
    profile_budget: int = DEFAULT_PROFILE_BUDGET,
    input_data: bytes = b"",
):
    """Statically translate one executable for one variant namespace.

    Returns ``(module, per_entry, report)``: the compiled
    :class:`AotModule`, the ``{(isa, ip): (plan, variants)}`` map of
    every translated plan (for per-entry plan-cache recording) and a
    summary dict (entry counts, static coverage, seconds).
    """
    from .interpreter import Interpreter
    from .superblock import MAX_BLOCK_LEN

    start_time = time.perf_counter()
    namespace, fuser = _namespace_for(model)
    if namespace is None:
        raise ValueError(
            "model has no ahead-of-time representation (no block "
            "compiler); run it through the interactive engine instead"
        )
    max_len = MAX_BLOCK_LEN if max_block_len is None else max_block_len
    target = build_target(arch)
    program = load_executable(elf, arch, input_data=input_data)
    mem = program.state.mem
    cache = DecodeCache(target)

    text = elf.section(".text")
    bounds = (
        (text.addr, text.addr + len(text.data)) if text is not None else None
    )
    seeds = [(elf.flags, elf.entry)]
    isa_ids = {isa.name: isa.ident for isa in arch.isas}
    for sym in elf.symbols:
        name = sym.name
        if sym.size and name.startswith("$"):
            isa_name, _, rest = name[1:].partition("$")
            if rest and isa_name in isa_ids:
                seeds.append((isa_ids[isa_name], sym.value))

    profile_instructions = 0
    if profile_budget:
        # Profile-guided augmentation: a budgeted functional replay;
        # every plan the interactive engine builds — indirect targets,
        # ISA-switch landing points — seeds the static walk.
        replay = load_executable(elf, arch, input_data=input_data)
        interp = Interpreter(
            replay.state, target, engine="superblock",
            max_block_len=max_len,
        )
        stats = interp.run(max_instructions=profile_budget)
        profile_instructions = stats.executed_instructions
        seeds.extend(interp.superblock.plans.keys())

    plans = discover(cache, mem, seeds, max_len, bounds)

    # Translate every plan through the engine's own emission path.
    per_entry: Dict[Tuple[int, int], Tuple[SuperblockPlan, dict]] = {}
    covered_keys: List[Tuple[int, int]] = []
    sources: Dict[Tuple[int, int], str] = {}
    covered_instr = total_instr = 0
    for key in sorted(plans):
        plan = plans[key]
        total_instr += plan.n_instr
        if plan.kind == PLAN_GENERAL:
            continue
        plan.code_digest = plan_digest(mem, plan.span)
        if fuser is not None:
            variants = plan.translate(timing=fuser)
            full = variants.get("fused_full")
        else:
            variants = plan.translate()
            full = variants.get("full")
        per_entry[key] = (plan, variants)
        if full is not None:
            covered_keys.append(key)
            sources[key] = full[0]
            covered_instr += plan.n_instr

    entries: List[dict] = []
    index_of: Dict[Tuple[int, int], int] = {}
    prefixes: Dict[Tuple[int, int], Optional[dict]] = {}
    block_sources: List[str] = []
    for key in covered_keys:
        plan = plans[key]
        prefix = None
        if plan.has_store:
            prefix = {}
            for dec in plan.decs[:-1]:
                if any(op.kind_code == KIND_STORE for op in dec.ops):
                    stop = dec.addr + dec.size
                    prefix[str(stop)] = list(_partial_stats(plan, stop))
        index = len(entries)
        index_of[key] = index
        prefixes[key] = prefix
        block_sources.append(
            _optimize_source(
                sources[key].replace("_superblock_body", f"_f{index}", 1)
            )
        )
        entries.append(
            {
                "isa": plan.isa_id,
                "ip": plan.entry_ip,
                "span": list(plan.span),
                "digest": plan.code_digest,
                "fn": f"_f{index}",
                "stats": [
                    plan.n_instr, plan.n_slots, plan.n_exec,
                    plan.n_mem_instr, plan.n_mem_ops,
                ],
                "prefix": prefix,
            }
        )

    # Trace formation over the covered blocks.
    pieces: Dict[Tuple[int, int], dict] = {}
    traceable: List[Tuple[int, int]] = []
    for key in covered_keys:
        p = _plan_pieces(plans[key], fuser)
        if p is not None:  # a full variant exists, so pieces should too
            pieces[key] = p
            traceable.append(key)
    traces: List[dict] = []
    trace_sources: List[str] = []
    for chain in _build_regions(traceable, pieces, prefixes):
        name = f"_t{len(traces)}"
        trace_sources.append(
            _optimize_source(
                "\n".join(
                    _emit_trace(
                        name, chain, plans, pieces, index_of,
                        fuser is not None,
                    )
                ),
                always_promote=True,
            )
        )
        merged: Dict[str, List[int]] = {}
        for k in chain:
            merged.update(prefixes.get(k) or {})
        traces.append(
            {
                "fn": name,
                "head": index_of[chain[0]],
                "blocks": [index_of[k] for k in chain],
                "ni": sum(plans[k].n_instr for k in chain),
                "prefix": merged or None,
            }
        )

    source, code = _emit_module(
        namespace, block_sources, trace_sources, fuser is not None
    )
    module = AotModule(
        namespace, fuser is not None, source, code, entries, traces
    )
    report = {
        "namespace": namespace,
        "discovered": len(plans),
        "translated": len(per_entry),
        "covered": len(entries),
        "traces": len(traces),
        "static_coverage": (
            round(covered_instr / total_instr, 4) if total_instr else 0.0
        ),
        "profile_instructions": profile_instructions,
        "seconds": round(time.perf_counter() - start_time, 4),
    }
    return module, per_entry, report


def prepare(
    elf,
    arch,
    *,
    model=None,
    plan_cache=None,
    max_block_len: Optional[int] = None,
    profile_budget: int = DEFAULT_PROFILE_BUDGET,
    input_data: bytes = b"",
) -> Optional[AotModule]:
    """Load-or-compile the AOT module serving ``model``.

    The fast path revives the whole-module entry from the plan cache
    (warm ``--engine aot`` runs never re-translate); a miss compiles
    in place and records both the module and its per-plan entries.
    Returns None when the model has no AOT representation — the
    caller's ``aot`` engine then degrades to the interactive loop.
    """
    namespace, _fuser = _namespace_for(model)
    if namespace is None:
        return None
    if plan_cache is not None:
        memo_key = (plan_cache.path, namespace)
        stamp = plan_cache.module_stamp(namespace)
        if stamp is not None:
            memoised = _MODULE_MEMO.get(memo_key)
            if memoised is not None and memoised[0] == stamp:
                return memoised[1]
            payload = plan_cache.lookup_module(namespace)
            module = (
                AotModule.from_payload(payload)
                if payload is not None else None
            )
            if module is not None:
                _MODULE_MEMO[memo_key] = (stamp, module)
                return module
    module, per_entry, _report = compile_module(
        elf, arch,
        model=model,
        max_block_len=max_block_len,
        profile_budget=profile_budget,
        input_data=input_data,
    )
    if plan_cache is not None:
        plan_cache.record_module(namespace, module.payload())
        for (isa_id, entry_ip), (plan, variants) in per_entry.items():
            plan_cache.record(
                isa_id, entry_ip, plan.span, plan.code_digest,
                namespace, variants,
            )
        stamp = plan_cache.module_stamp(namespace)
        if stamp is not None:
            _MODULE_MEMO[(plan_cache.path, namespace)] = (stamp, module)
    return module
