"""Disassembler for decoded instructions.

Used by error messages, the trace tooling and the CLI; the inverse of
the assembler's operand syntax so that disassembled text re-assembles
to the original encoding (round-trip tested).
"""

from __future__ import annotations

from typing import List

from ..targetgen.optable import OperationTable
from .decoder import DecodedInstruction, DecodedOp
from .memory import Memory


def format_op(op: DecodedOp) -> str:
    """Render one operation in assembler operand syntax."""
    values = {
        f.name: op.vals[i] for i, f in enumerate(op.entry.value_fields)
    }
    operands: List[str] = []
    for template in op.entry.op.asm_operands:
        if template.endswith("(rs1)"):
            inner = template[:-5]
            operands.append(f"{values[inner]}(r{values['rs1']})")
        elif op.entry.op.field(template).role in ("reg_dst", "reg_src"):
            operands.append(f"r{values[template]}")
        else:
            operands.append(str(values[template]))
    if operands:
        return f"{op.name} " + ", ".join(operands)
    return op.name


def format_instruction(dec: DecodedInstruction) -> str:
    """Render a full (possibly VLIW) instruction."""
    if dec.single is not None:
        return format_op(dec.single)
    return "{ " + " ; ".join(format_op(op) for op in dec.ops) + " }"


def disassemble_range(
    optable: OperationTable, mem: Memory, start: int, end: int
) -> List[str]:
    """Disassemble [start, end) as instructions of ``optable``'s ISA."""
    from .decoder import decode_instruction

    lines = []
    addr = start
    while addr < end:
        dec = decode_instruction(optable, mem, addr)
        lines.append(f"{addr:#010x}:  {format_instruction(dec)}")
        addr += dec.size
    return lines
