"""The cycle-approximate, mixed-ISA instruction set simulator."""

from .debugger import (
    Debugger,
    STOP_BREAKPOINT,
    STOP_BUDGET,
    STOP_HALTED,
    STOP_STEPPED,
    STOP_WATCHPOINT,
)
from .decode_cache import DecodeCache
from .decoder import (
    DecodedInstruction,
    DecodedOp,
    KIND_ALU,
    KIND_CTRL,
    KIND_HALT,
    KIND_LOAD,
    KIND_NOP,
    KIND_SIMOP,
    KIND_STORE,
    KIND_SWITCH,
    decode_instruction,
)
from .debuginfo import DebugInfo, LineMap, Location
from .disasm import disassemble_range, format_instruction, format_op
from .errors import DecodeError, SimulationError
from .interpreter import ENGINES, Interpreter
from .memory import Memory
from .state import (
    EXIT_ADDRESS,
    ProcessorState,
    STACK_TOP,
    TEXT_BASE,
)
from .stats import SimStats
from .superblock import SuperblockEngine, SuperblockPlan
from .syscalls import Syscalls
from .tracecheck import (
    TraceMismatch,
    diff_architectural_effects,
    diff_traces,
    memory_effects,
    parse_trace_file,
)
from .tracing import TraceRecord, Tracer

__all__ = [
    "Debugger",
    "DecodeCache",
    "STOP_BREAKPOINT",
    "STOP_BUDGET",
    "STOP_HALTED",
    "STOP_STEPPED",
    "STOP_WATCHPOINT",
    "DecodeError",
    "ENGINES",
    "DecodedInstruction",
    "DecodedOp",
    "DebugInfo",
    "EXIT_ADDRESS",
    "Interpreter",
    "KIND_ALU",
    "KIND_CTRL",
    "KIND_HALT",
    "KIND_LOAD",
    "KIND_NOP",
    "KIND_SIMOP",
    "KIND_STORE",
    "KIND_SWITCH",
    "LineMap",
    "Location",
    "Memory",
    "ProcessorState",
    "STACK_TOP",
    "SimStats",
    "SimulationError",
    "SuperblockEngine",
    "SuperblockPlan",
    "Syscalls",
    "TEXT_BASE",
    "TraceMismatch",
    "TraceRecord",
    "Tracer",
    "diff_architectural_effects",
    "diff_traces",
    "memory_effects",
    "parse_trace_file",
    "decode_instruction",
    "disassemble_range",
    "format_instruction",
    "format_op",
]
