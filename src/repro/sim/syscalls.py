"""C standard library emulation (paper Section V-E).

Library functions are provided *natively* by the simulator: the
``simop`` operation carries the function id as an immediate; the handler
reads arguments from registers (and stack, per the calling convention),
performs the operation on the simulated memory, and writes the result
back to the return-value register.  Output is captured into a buffer so
tests and the framework can assert on program output.

Native execution means these functions cost no simulated cycles by
default (the paper notes the same limitation and the remedy: link real
implementations compiled for the simulated ISA instead).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..adl.kahrisma import REG_ARG_FIRST, REG_RV
from ..libc import LIBC_BY_ID
from ..targetgen.behavior_compiler import s32
from .errors import SimulationError
from .state import MASK32, ProcessorState

#: Default heap placement when the loader supplies none.
DEFAULT_HEAP_BASE = 0x00400000
HEAP_LIMIT = 0x00E00000
_HEAP_ALIGN = 8


class Syscalls:
    """State and dispatch for the emulated C library."""

    def __init__(
        self,
        *,
        heap_base: int = DEFAULT_HEAP_BASE,
        input_data: bytes = b"",
        rand_seed: int = 1,
    ) -> None:
        self.stdout = bytearray()
        self.heap_base = heap_base
        self.heap_ptr = heap_base
        self.input = bytearray(input_data)
        self.input_pos = 0
        self.rand_state = rand_seed & MASK32
        #: Instruction counter source for ``clock()``; installed by the
        #: framework (returns executed instructions or model cycles).
        self.clock_source: Optional[Callable[[], int]] = None
        self._handlers: Dict[int, Callable] = {
            0: self._exit,
            1: self._putchar,
            2: self._getchar,
            3: self._puts,
            4: self._print_int,
            5: self._print_uint,
            6: self._print_hex,
            7: self._malloc,
            8: self._free,
            9: self._memcpy,
            10: self._memset,
            11: self._strlen,
            12: self._strcmp,
            13: self._rand,
            14: self._srand,
            15: self._clock,
            16: self._abs,
            17: self._write,
        }

    # -- checkpointing -----------------------------------------------------

    def save_state(self) -> Dict[str, object]:
        """Full emulation state as plain data (bytes kept as bytes;
        the checkpoint format is responsible for encoding them)."""
        return {
            "stdout": bytes(self.stdout),
            "heap_base": self.heap_base,
            "heap_ptr": self.heap_ptr,
            "input": bytes(self.input),
            "input_pos": self.input_pos,
            "rand_state": self.rand_state,
        }

    def load_state(self, data: Dict[str, object]) -> None:
        """Inverse of :meth:`save_state`.

        ``clock_source`` is deliberately not part of the state — it is
        a host-side binding the framework re-installs after a restore.
        """
        self.stdout = bytearray(data["stdout"])
        self.heap_base = int(data["heap_base"])
        self.heap_ptr = int(data["heap_ptr"])
        self.input = bytearray(data["input"])
        self.input_pos = int(data["input_pos"])
        self.rand_state = int(data["rand_state"]) & MASK32

    # -- installation -----------------------------------------------------

    def install(self, state: ProcessorState) -> None:
        state.syscall_handler = self.handle

    def handle(self, state: ProcessorState, ident: int) -> Optional[int]:
        handler = self._handlers.get(ident)
        if handler is None:
            known = ident in LIBC_BY_ID
            raise SimulationError(
                f"simop {ident} is "
                + ("registered but unimplemented" if known else "unknown"),
                ip=state.ip,
            )
        return handler(state)

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _args(state: ProcessorState, n: int):
        return [state.regs[REG_ARG_FIRST + i] for i in range(n)]

    @staticmethod
    def _ret(state: ProcessorState, value: int) -> None:
        state.regs[REG_RV] = value & MASK32

    def output_text(self) -> str:
        return self.stdout.decode("utf-8", errors="replace")

    # -- the functions -------------------------------------------------------

    def _exit(self, state: ProcessorState) -> None:
        (status,) = self._args(state, 1)
        state.exit_code = s32(status)
        state.halted = True

    def _putchar(self, state: ProcessorState) -> None:
        (c,) = self._args(state, 1)
        self.stdout.append(c & 0xFF)
        self._ret(state, c & 0xFF)

    def _getchar(self, state: ProcessorState) -> None:
        if self.input_pos < len(self.input):
            c = self.input[self.input_pos]
            self.input_pos += 1
            self._ret(state, c)
        else:
            self._ret(state, 0xFFFFFFFF)  # EOF (-1)

    def _puts(self, state: ProcessorState) -> None:
        (ptr,) = self._args(state, 1)
        self.stdout.extend(state.mem.load_cstring(ptr))
        self.stdout.append(0x0A)
        self._ret(state, 0)

    def _print_int(self, state: ProcessorState) -> None:
        (v,) = self._args(state, 1)
        self.stdout.extend(str(s32(v)).encode("ascii"))

    def _print_uint(self, state: ProcessorState) -> None:
        (v,) = self._args(state, 1)
        self.stdout.extend(str(v & MASK32).encode("ascii"))

    def _print_hex(self, state: ProcessorState) -> None:
        (v,) = self._args(state, 1)
        self.stdout.extend(format(v & MASK32, "08x").encode("ascii"))

    def _malloc(self, state: ProcessorState) -> None:
        (size,) = self._args(state, 1)
        size = (size + _HEAP_ALIGN - 1) & ~(_HEAP_ALIGN - 1)
        if self.heap_ptr + size > HEAP_LIMIT:
            self._ret(state, 0)  # out of memory -> NULL
            return
        ptr = self.heap_ptr
        self.heap_ptr += size
        self._ret(state, ptr)

    def _free(self, state: ProcessorState) -> None:
        # Bump allocator: free is a no-op, as in many embedded C libraries.
        self._args(state, 1)

    def _memcpy(self, state: ProcessorState) -> None:
        dst, src, n = self._args(state, 3)
        if n:
            state.mem.store_bytes(dst, state.mem.load_bytes(src, n))
        self._ret(state, dst)

    def _memset(self, state: ProcessorState) -> None:
        dst, c, n = self._args(state, 3)
        if n:
            state.mem.store_bytes(dst, bytes([c & 0xFF]) * n)
        self._ret(state, dst)

    def _strlen(self, state: ProcessorState) -> None:
        (ptr,) = self._args(state, 1)
        self._ret(state, len(state.mem.load_cstring(ptr)))

    def _strcmp(self, state: ProcessorState) -> None:
        a, b = self._args(state, 2)
        sa = state.mem.load_cstring(a)
        sb = state.mem.load_cstring(b)
        result = (sa > sb) - (sa < sb)
        self._ret(state, result)

    def _rand(self, state: ProcessorState) -> None:
        # Deterministic LCG (C89 reference implementation) so simulated
        # workloads are reproducible across hosts.
        self.rand_state = (self.rand_state * 1103515245 + 12345) & MASK32
        self._ret(state, (self.rand_state >> 16) & 0x7FFF)

    def _srand(self, state: ProcessorState) -> None:
        (seed,) = self._args(state, 1)
        self.rand_state = seed & MASK32

    def _clock(self, state: ProcessorState) -> None:
        if self.clock_source is not None:
            self._ret(state, self.clock_source())
        else:
            self._ret(state, 0)

    def _abs(self, state: ProcessorState) -> None:
        (v,) = self._args(state, 1)
        self._ret(state, abs(s32(v)))

    def _write(self, state: ProcessorState) -> None:
        buf, n = self._args(state, 2)
        if n:
            self.stdout.extend(state.mem.load_bytes(buf, n))
        self._ret(state, n)
