"""Instruction detection and decoding (paper Section V).

Within the simulation loop the instruction addressed by the IP is
*detected* by checking the constant fields of each operation of the
active ISA, then *decoded* by extracting all fields into a decode
structure for fast access during execution.  For an n-issue VLIW ISA an
instruction consists of n operation words decoded together.

The decode structure (:class:`DecodedInstruction`) also carries the
instruction-prediction fields used by the decode cache (Section V-A):
the predicted next IP and a pointer to the predicted next decode
structure.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..targetgen.optable import OperationTable, OpTableEntry
from .errors import DecodeError
from .memory import Memory

#: Integer operation-kind codes (faster to branch on than strings).
KIND_ALU = 0
KIND_LOAD = 1
KIND_STORE = 2
KIND_CTRL = 3
KIND_NOP = 4
KIND_SIMOP = 5
KIND_SWITCH = 6
KIND_HALT = 7

_KIND_CODES = {
    "alu": KIND_ALU,
    "load": KIND_LOAD,
    "store": KIND_STORE,
    "branch": KIND_CTRL,
    "nop": KIND_NOP,
    "simop": KIND_SIMOP,
    "switch": KIND_SWITCH,
    "halt": KIND_HALT,
}

#: Kinds whose simulation function may redirect control or touch
#: simulator state; at most one such operation per instruction.
_CONTROL_KINDS = frozenset((KIND_CTRL, KIND_HALT, KIND_SWITCH, KIND_SIMOP))


class DecodedOp:
    """One decoded operation (one slot of an instruction)."""

    __slots__ = (
        "entry",
        "name",
        "word",
        "vals",
        "sim_fn",
        "direct_fn",
        "kind_code",
        "delay",
        "fu_class",
        "srcs",
        "dsts",
        "mem_base",
        "mem_imm",
        "slot",
    )

    def __init__(self, entry: OpTableEntry, word: int, slot: int) -> None:
        op = entry.op
        vals = entry.decode(word)
        self.entry = entry
        self.name = op.name
        self.word = word
        self.vals = vals
        self.sim_fn = entry.sim_fn
        #: Unbuffered variant for superblock bodies (None if unsafe).
        self.direct_fn = entry.direct_fn
        self.kind_code = _KIND_CODES[op.kind]
        self.delay = op.delay
        self.fu_class = op.fu_class
        self.slot = slot
        # Source/destination register indices, including implicit ones.
        # Writes to the hard-wired zero register are dropped so the
        # cycle models never create a dependency through r0.
        srcs = tuple(vals[i] for i in entry.src_value_indices) + op.implicit_reads
        dsts = tuple(
            vals[i] for i in entry.dst_value_indices if vals[i] != 0
        ) + tuple(r for r in op.implicit_writes if r != 0)
        self.srcs = srcs
        self.dsts = dsts
        # Effective-address ingredients for the memory approximation.
        if self.kind_code in (KIND_LOAD, KIND_STORE):
            names = [f.name for f in entry.value_fields]
            self.mem_base = vals[names.index("rs1")]
            self.mem_imm = vals[names.index("imm")]
        else:
            self.mem_base = -1
            self.mem_imm = 0

    @property
    def is_control(self) -> bool:
        return self.kind_code in _CONTROL_KINDS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DecodedOp {self.name} vals={self.vals}>"


class DecodedInstruction:
    """The paper's *decode structure* for one (possibly VLIW) instruction.

    Mutable only in its prediction fields, which implement the 1-bit
    instruction prediction of Section V-A.
    """

    __slots__ = (
        "addr",
        "size",
        "isa_id",
        "ops",
        "exec_ops",
        "single",
        "is_control",
        "has_mem",
        "n_slots",
        "n_exec",
        "n_mem",
        "pred_ip",
        "pred_dec",
    )

    def __init__(
        self,
        addr: int,
        size: int,
        isa_id: int,
        ops: Tuple[DecodedOp, ...],
    ) -> None:
        self.addr = addr
        self.size = size
        self.isa_id = isa_id
        self.ops = ops
        #: (sim_fn, vals) pairs with NOP slots stripped — the execution
        #: fast path iterates this.
        self.exec_ops = tuple(
            (op.sim_fn, op.vals) for op in ops if op.kind_code != KIND_NOP
        )
        self.single = ops[0] if len(ops) == 1 else None
        self.is_control = any(op.is_control for op in ops)
        self.n_slots = len(ops)
        self.n_exec = len(self.exec_ops)
        self.n_mem = sum(
            1 for op in ops if op.kind_code in (KIND_LOAD, KIND_STORE)
        )
        self.has_mem = self.n_mem > 0
        #: Instruction prediction: predicted next IP and decode
        #: structure (None until first successor observed).
        self.pred_ip = -1
        self.pred_dec: Optional["DecodedInstruction"] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = "+".join(op.name for op in self.ops)
        return f"<DecodedInstruction {self.addr:#x} {names}>"


def decode_instruction(
    optable: OperationTable, mem: Memory, addr: int
) -> DecodedInstruction:
    """Detect and decode the instruction at ``addr`` under ``optable``'s ISA.

    Raises :class:`DecodeError` if any operation word matches no
    operation of the active ISA, or if the instruction bundles more
    than one control operation (the compiler never emits that; seeing
    it indicates mis-aligned or corrupted code, paper goal 4).
    """
    isa = optable.isa
    ops = []
    controls = 0
    for slot in range(isa.issue_width):
        word_addr = addr + 4 * slot
        word = mem.load4(word_addr)
        entry = optable.detect(word)
        if entry is None:
            raise DecodeError(
                f"undefined operation word {word:#010x} in slot {slot}",
                ip=word_addr,
                isa=isa.name,
            )
        op = DecodedOp(entry, word, slot)
        if op.is_control:
            controls += 1
            if controls > 1:
                raise DecodeError(
                    "more than one control operation in instruction",
                    ip=addr,
                    isa=isa.name,
                )
        ops.append(op)
    return DecodedInstruction(addr, isa.instr_size, isa.ident, tuple(ops))
