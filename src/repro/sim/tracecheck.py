"""Trace comparison for implementation validation (paper Section V).

The paper's trace files exist to validate different implementations of
an ISA — e.g. the RTL hardware against the simulator.  This module is
the comparison side: given two traces of the *same program*, it checks
that the architecturally visible effects agree.

Two comparison levels:

* :func:`diff_traces` — op-by-op: opcode, inputs, outputs and stores
  must match in order (cycle numbers are ignored: different timing
  models may disagree on *when*, never on *what*).
* :func:`diff_architectural_effects` — effect-by-effect: only the
  memory-store sequence is compared, so implementations that group or
  pad operations differently (e.g. a NOP-compressing front end, a
  future fused-operation interpreter) can still be cross-checked.

Both comparisons assume the two traces come from the *same binary*:
different builds (other ISAs, other optimisation settings) place code,
data and stack at different addresses, and any pointer-valued store
legitimately differs — cross-build validation is done on program
output instead (see the test suite's cross-ISA equivalence tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from .tracing import TraceRecord


@dataclass(frozen=True)
class TraceMismatch:
    """First point where two traces disagree."""

    index: int
    field: str
    left: object
    right: object

    def format(self) -> str:
        return (
            f"record {self.index}: {self.field} differs — "
            f"{self.left!r} vs {self.right!r}"
        )


def diff_traces(
    left: Sequence[TraceRecord],
    right: Sequence[TraceRecord],
    *,
    compare_cycles: bool = False,
) -> Optional[TraceMismatch]:
    """Op-by-op comparison; returns the first mismatch or None."""
    for index, (a, b) in enumerate(zip(left, right)):
        if a.opcode != b.opcode:
            return TraceMismatch(index, "opcode", a.opcode, b.opcode)
        if a.inputs != b.inputs:
            return TraceMismatch(index, "inputs", a.inputs, b.inputs)
        if a.outputs != b.outputs:
            return TraceMismatch(index, "outputs", a.outputs, b.outputs)
        if a.stores != b.stores:
            return TraceMismatch(index, "stores", a.stores, b.stores)
        if a.immediates != b.immediates:
            return TraceMismatch(index, "immediates",
                                 a.immediates, b.immediates)
        if compare_cycles and a.cycle != b.cycle:
            return TraceMismatch(index, "cycle", a.cycle, b.cycle)
    if len(left) != len(right):
        return TraceMismatch(
            min(len(left), len(right)), "length", len(left), len(right)
        )
    return None


def memory_effects(
    records: Iterable[TraceRecord],
) -> List[Tuple[int, int, int]]:
    """The sequence of (size, address, value) stores in a trace."""
    effects: List[Tuple[int, int, int]] = []
    for record in records:
        effects.extend(record.stores)
    return effects


def diff_architectural_effects(
    left: Sequence[TraceRecord],
    right: Sequence[TraceRecord],
    *,
    compare_addresses: bool = True,
) -> Optional[TraceMismatch]:
    """Compare only the memory-store sequences of two traces.

    Order is significant (KC's pessimistic memory model keeps stores in
    program order).  ``compare_addresses=False`` additionally ignores
    store addresses, which only makes sense for experiments that
    deliberately relocate data while preserving dataflow.
    """
    left_effects = memory_effects(left)
    right_effects = memory_effects(right)
    for index, (a, b) in enumerate(zip(left_effects, right_effects)):
        comparable_a = a if compare_addresses else (a[0], a[2])
        comparable_b = b if compare_addresses else (b[0], b[2])
        if comparable_a != comparable_b:
            return TraceMismatch(index, "store", a, b)
    if len(left_effects) != len(right_effects):
        return TraceMismatch(
            min(len(left_effects), len(right_effects)), "store-count",
            len(left_effects), len(right_effects),
        )
    return None


def parse_trace_file(text: str) -> List[TraceRecord]:
    """Parse the textual trace format back into records.

    Inverse of :meth:`TraceRecord.format`; used by the CLI trace-diff
    command on files produced with ``kahrisma run --trace``.
    """
    records: List[TraceRecord] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        parts = line.split()
        cycle = int(parts[0])
        addr_text, _, slot_text = parts[1].partition(".")
        opcode = parts[2]
        inputs: Tuple = ()
        outputs: Tuple = ()
        stores: Tuple = ()
        immediates: Tuple = ()
        for chunk in parts[3:]:
            key, _, payload = chunk.partition(":")
            if key == "in":
                inputs = tuple(
                    (int(p.split("=")[0][1:]), int(p.split("=")[1], 16))
                    for p in payload.split(",")
                )
            elif key == "out":
                outputs = tuple(
                    (int(p.split("=")[0][1:]), int(p.split("=")[1], 16))
                    for p in payload.split(",")
                )
            elif key == "mem":
                stores = tuple(
                    _parse_store(p) for p in payload.split(",")
                )
            elif key == "imm":
                immediates = tuple(int(p) for p in payload.split(","))
        records.append(
            TraceRecord(
                cycle=cycle,
                addr=int(addr_text, 16),
                slot=int(slot_text),
                opcode=opcode,
                inputs=inputs,
                outputs=outputs,
                stores=stores,
                immediates=immediates,
            )
        )
    return records


def _parse_store(text: str) -> Tuple[int, int, int]:
    # "[0xADDR]<=0xVAL/SIZE"
    addr_part, _, rest = text.partition("]<=")
    value_part, _, size_part = rest.partition("/")
    return int(size_part), int(addr_part[1:], 16), int(value_part, 16)
