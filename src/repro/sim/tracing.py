"""Trace file generation (paper Section V, goal 3).

For each executed operation the trace records the cycle number, opcode,
input/output register numbers and values, and immediate values.  The
paper uses the trace to validate the RTL hardware implementation and as
stimuli for partial implementations; our test suite uses it the same
way, cross-checking the interpreter against the RTL reference model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One executed operation."""

    cycle: int
    addr: int
    slot: int
    opcode: str
    #: (register index, value read) pairs.
    inputs: Tuple[Tuple[int, int], ...]
    #: (register index, value written) pairs.
    outputs: Tuple[Tuple[int, int], ...]
    #: (size, address, value) triples for stores.
    stores: Tuple[Tuple[int, int, int], ...]
    immediates: Tuple[int, ...]

    def format(self) -> str:
        parts = [
            f"{self.cycle:>10}",
            f"{self.addr:#010x}.{self.slot}",
            f"{self.opcode:<12}",
        ]
        if self.inputs:
            parts.append(
                "in:" + ",".join(f"r{r}={v:#x}" for r, v in self.inputs)
            )
        if self.outputs:
            parts.append(
                "out:" + ",".join(f"r{r}={v:#x}" for r, v in self.outputs)
            )
        if self.stores:
            parts.append(
                "mem:"
                + ",".join(f"[{a:#x}]<={v:#x}/{s}" for s, a, v in self.stores)
            )
        if self.immediates:
            parts.append("imm:" + ",".join(str(i) for i in self.immediates))
        return " ".join(parts)


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally streaming them.

    Passed to :class:`repro.sim.interpreter.Interpreter`; the full loop
    calls :meth:`record` once per executed (non-NOP) operation.

    A tracer is a context manager: ``with Tracer.to_file(path) as t:``
    guarantees the stream is flushed and (when the tracer opened it)
    closed even when the simulation aborts with an exception — trace
    files written up to a fault are exactly what the paper's RTL
    validation flow needs to localise it.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        *,
        keep_records: bool = True,
        limit: Optional[int] = None,
        owns_stream: bool = False,
    ) -> None:
        self.stream = stream
        self.keep_records = keep_records
        self.limit = limit
        #: Whether :meth:`close` should close the stream (True for
        #: streams the tracer opened itself via :meth:`to_file`).
        self.owns_stream = owns_stream
        self.closed = False
        self.records: List[TraceRecord] = []
        self.count = 0

    @classmethod
    def to_file(
        cls,
        path: str,
        *,
        keep_records: bool = False,
        limit: Optional[int] = None,
    ) -> "Tracer":
        """Open ``path`` for writing and stream records into it."""
        stream = open(path, "w", encoding="utf-8")
        return cls(
            stream, keep_records=keep_records, limit=limit,
            owns_stream=True,
        )

    def close(self) -> None:
        """Flush the stream; close it if this tracer opened it.

        Idempotent, and safe on record-only tracers (no stream).
        """
        if self.closed:
            return
        self.closed = True
        if self.stream is not None:
            self.stream.flush()
            if self.owns_stream:
                self.stream.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def record(self, cycle, dec, op, in_regs, reg_writes, mem_writes) -> None:
        if self.limit is not None and self.count >= self.limit:
            return
        self.count += 1
        immediates = tuple(
            op.vals[i]
            for i, f in enumerate(op.entry.value_fields)
            if f.role == "imm"
        )
        rec = TraceRecord(
            cycle=cycle,
            addr=dec.addr,
            slot=op.slot,
            opcode=op.name,
            inputs=in_regs,
            outputs=reg_writes,
            stores=mem_writes,
            immediates=immediates,
        )
        if self.keep_records:
            self.records.append(rec)
        if self.stream is not None:
            self.stream.write(rec.format() + "\n")

    def formatted(self) -> str:
        return "\n".join(rec.format() for rec in self.records)
