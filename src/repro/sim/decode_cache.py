"""Decode cache and instruction prediction (paper Section V-A).

Operation detection and decoding is the major bottleneck of an
interpretation-based simulator.  All detected and decoded instructions
are therefore stored in a cache tagged by the instruction address, so
each instruction is detected and decoded only once; program locality
makes the residual decode cost insignificant (the paper measures
99.991 % of decodes avoided for cjpeg).

The paper uses ``boost::unordered_map``; our cache is a Python ``dict``
(also a hash map with amortised O(1) lookup).  One deliberate deviation:
the paper tags entries by instruction address alone, which is unsafe
once ``switchtarget`` lets two ISAs decode the same address differently.
We tag by ``(ISA id, address)``.

On top of the cache sits the *instruction prediction*: each decode
structure stores the IP and decode-structure pointer of its observed
successor.  When the prediction matches the current IP, the hash lookup
is skipped entirely — the mechanism the paper likens to a 1-bit branch
predictor (99.2 % of lookups avoided for cjpeg).  The prediction fields
live directly in :class:`~repro.sim.decoder.DecodedInstruction`; the
interpreter inlines the check in its run loop, and this class provides
the shared cache storage plus an out-of-loop API for tools and tests.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..targetgen.optable import TargetDescription
from .decoder import DecodedInstruction, decode_instruction
from .memory import Memory


class DecodeCache:
    """Hash-map decode cache shared by interpreter, tools and tests."""

    __slots__ = ("target", "entries", "decodes", "lookups")

    def __init__(self, target: TargetDescription) -> None:
        self.target = target
        self.entries: Dict[Tuple[int, int], DecodedInstruction] = {}
        self.decodes = 0
        self.lookups = 0

    def lookup(self, mem: Memory, isa_id: int, addr: int) -> DecodedInstruction:
        """Return the decode structure for ``addr`` under ``isa_id``.

        Detects and decodes on a miss; this is the non-inlined
        equivalent of the interpreter's hot path.
        """
        self.lookups += 1
        key = (isa_id, addr)
        dec = self.entries.get(key)
        if dec is None:
            dec = decode_instruction(self.target.optable(isa_id), mem, addr)
            self.entries[key] = dec
            self.decodes += 1
        return dec

    def invalidate(self) -> None:
        """Drop all cached decodes (e.g. after self-modifying stores)."""
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)
