"""Decode cache and instruction prediction (paper Section V-A).

Operation detection and decoding is the major bottleneck of an
interpretation-based simulator.  All detected and decoded instructions
are therefore stored in a cache tagged by the instruction address, so
each instruction is detected and decoded only once; program locality
makes the residual decode cost insignificant (the paper measures
99.991 % of decodes avoided for cjpeg).

The paper uses ``boost::unordered_map``; our cache is a Python ``dict``
(also a hash map with amortised O(1) lookup).  One deliberate deviation:
the paper tags entries by instruction address alone, which is unsafe
once ``switchtarget`` lets two ISAs decode the same address differently.
We tag by ``(ISA id, address)``.

On top of the cache sits the *instruction prediction*: each decode
structure stores the IP and decode-structure pointer of its observed
successor.  When the prediction matches the current IP, the hash lookup
is skipped entirely — the mechanism the paper likens to a 1-bit branch
predictor (99.2 % of lookups avoided for cjpeg).  The prediction fields
live directly in :class:`~repro.sim.decoder.DecodedInstruction`; the
interpreter inlines the check in its run loop, and this class provides
the shared cache storage plus an out-of-loop API for tools and tests.

Two responsibilities beyond plain caching:

* **Statistics.**  The cache's ``decodes``/``lookups`` counters are the
  single source of truth: the interpreter's inlined fast paths flush
  their local counters into them, out-of-loop :meth:`lookup` calls
  count directly, and :class:`~repro.sim.stats.SimStats` is derived
  from counter deltas around each run.

* **Self-modifying code.**  Every insertion registers the instruction's
  pages with :meth:`Memory.watch_code`; stores into those pages reach
  :meth:`invalidate_write`, which drops exactly the decodes whose bytes
  were overwritten and severs all prediction links (any decode may
  predict into a dropped one).  ``version`` bumps on every invalidation
  so engines holding derived structures (superblock plans) can notice.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..targetgen.optable import TargetDescription
from .decoder import DecodedInstruction, decode_instruction
from .memory import PAGE_SHIFT, Memory


class DecodeCache:
    """Hash-map decode cache shared by interpreter, tools and tests."""

    __slots__ = ("target", "entries", "decodes", "lookups", "version",
                 "_by_page")

    def __init__(self, target: TargetDescription) -> None:
        self.target = target
        self.entries: Dict[Tuple[int, int], DecodedInstruction] = {}
        self.decodes = 0
        self.lookups = 0
        #: Bumped on every invalidation; consumers caching derived
        #: structures compare it to detect staleness.
        self.version = 0
        #: page index -> keys of decodes overlapping that page.
        self._by_page: Dict[int, List[Tuple[int, int]]] = {}

    def lookup(self, mem: Memory, isa_id: int, addr: int) -> DecodedInstruction:
        """Return the decode structure for ``addr`` under ``isa_id``.

        Detects and decodes on a miss; this is the non-inlined
        equivalent of the interpreter's hot path.
        """
        self.lookups += 1
        key = (isa_id, addr)
        dec = self.entries.get(key)
        if dec is None:
            dec = self.miss(mem, isa_id, addr)
        return dec

    def miss(self, mem: Memory, isa_id: int, addr: int) -> DecodedInstruction:
        """Decode ``addr``, insert it, and register its code pages.

        The interpreter's inlined loops call this directly after their
        own (uncounted-here) dict probe failed.
        """
        dec = decode_instruction(self.target.optable(isa_id), mem, addr)
        key = (isa_id, addr)
        self.entries[key] = dec
        self.decodes += 1
        first = addr >> PAGE_SHIFT
        last = (addr + dec.size - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            self._by_page.setdefault(page, []).append(key)
        mem.watch_code(addr, dec.size)
        return dec

    # -- invalidation ------------------------------------------------------

    def _sever_predictions(self) -> None:
        """Reset every prediction link.

        Links may point into dropped decode structures from anywhere
        (including the loop-local ``prev`` of a running interpreter), so
        invalidation conservatively severs them all; they re-form on the
        next execution of each edge.
        """
        for dec in self.entries.values():
            dec.pred_ip = -1
            dec.pred_dec = None

    def invalidate(self) -> None:
        """Drop all cached decodes (e.g. after self-modifying stores)."""
        self._sever_predictions()
        self.entries.clear()
        self._by_page.clear()
        self.version += 1

    def invalidate_write(self, page: int, addr: int, length: int) -> bool:
        """Drop decodes whose bytes intersect ``[addr, addr+length)``.

        Called (via the interpreter's memory listener) for every store
        into a page containing code.  Returns whether any decode was
        actually overwritten — stores to data that merely shares a page
        with code are filtered out here, so they cost one overlap scan
        but no invalidation.
        """
        keys = self._by_page.get(page)
        if not keys:
            return False
        end = addr + length
        stale = [
            key for key in keys
            if (dec := self.entries.get(key)) is not None
            and dec.addr < end and addr < dec.addr + dec.size
        ]
        if not stale:
            return False
        self._sever_predictions()
        for key in stale:
            dec = self.entries.pop(key, None)
            if dec is None:
                continue
            first = dec.addr >> PAGE_SHIFT
            last = (dec.addr + dec.size - 1) >> PAGE_SHIFT
            for p in range(first, last + 1):
                bucket = self._by_page.get(p)
                if bucket is not None and key in bucket:
                    bucket.remove(key)
        self.version += 1
        return True

    def __len__(self) -> int:
        return len(self.entries)
