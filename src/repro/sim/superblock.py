"""Superblock translation engine: cached straight-line execution plans.

The decode cache (Section V-A) already removes ~99.99 % of decodes and
instruction prediction ~99 % of hash lookups, but the interpreter still
pays per-instruction Python overhead: the prediction check, per-slot
dispatch, write-buffer commit and statistics bookkeeping.  This module
is the next step beyond interpretation — the translated-simulation
technique of Reshadi & Dutt and Blanqui et al.: turn the decoded
instruction stream into straight-line execution *plans* that run
without any of that per-instruction machinery.

On first execution of a basic-block entry the engine walks the decode
cache from the entry IP up to the next control transfer (branch, jump,
halt, simop or ISA switch) or :data:`MAX_BLOCK_LEN`, and flattens the
run into a :class:`SuperblockPlan`:

* a tuple of preallocated body rows ``(fn, vals, ip, next_ip)`` with
  instruction addresses baked in as constants (straight-line code has
  static IPs), NOP-only instructions elided;
* a single terminator record executed with full buffered semantics;
* precomputed block-total statistics deltas, accumulated once per block
  instead of once per instruction.

Plans come in three kinds.  When every body instruction is single-issue
and has a *direct* simulation variant (see
:mod:`repro.targetgen.behavior_compiler`), the body runs commit-free:
each row is one Python call that writes architectural state in place.
Otherwise the body runs buffered rows (VLIW bundles keep their
read-before-write semantics).  Blocks are *chained* through their
observed successor — the block-level analogue of the paper's 1-bit
instruction prediction — so the steady state executes without even a
per-block hash lookup.

Cycle models still observe every instruction, three ways.  Models
exposing the batched :meth:`~repro.cycles.base.CycleModel.observe_block`
hook get one call per block (ILP opts in).  Models exposing a
:meth:`~repro.cycles.base.CycleModel.block_compiler` (AIE/DOE) get
their accounting *fused* into the translated plan: the compiler emits
flat timing statements that the translator interleaves before each
instruction's functional statements — reproducing the pre-commit
register view of buffered per-instruction observation, with latencies
constant-folded at translate time — so fused counts are
bitwise-identical to the per-instruction path.  Everything else (and
any configuration the fused path cannot prove safe: per-op timelines,
profiler-wrapped models, VLIW bodies, branch-model terminators) falls
back to per-instruction ``observe`` on buffered rows.

Hot plans can also be *persisted*: when a :class:`~repro.sim.plancache.
PlanCache` is attached, translated sources/code objects are recorded
under the plan's instruction-byte digest and reloaded on later runs
(or by parallel shard workers), skipping emission and ``compile``
entirely — see :mod:`repro.sim.plancache`.

Self-modifying code: plans register their pages with the memory's
code-watch set.  A store that overwrites planned bytes invalidates the
overlapping plans and decode-cache entries (see
:meth:`invalidate_write`), severs all block chains, and — through the
interpreter's invalidation cell — aborts the currently running block
after the offending instruction commits.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Tuple

from ..targetgen.behavior_compiler import (
    SIM_GLOBALS,
    inline_control_stmts,
    inline_direct_stmts,
)
from .decode_cache import DecodeCache
from .decoder import DecodedInstruction, KIND_NOP, KIND_STORE
from .errors import DecodeError
from .memory import PAGE_SHIFT, Memory
from .state import ProcessorState

#: Straight-line runs longer than this are split into multiple chained
#: plans (bounds build latency and invalidation granularity).
MAX_BLOCK_LEN = 64

#: A direct-eligible plan is translated into one flat Python function
#: on its Nth execution.  Translating costs an emission + ``compile``
#: pass (~0.3 ms), so cold blocks — init code, error paths — stay on
#: the cheap per-row call loop and never pay it.
HOT_THRESHOLD = 4

#: Plan kinds: commit-free body without stores, commit-free body with
#: stores (needs the invalidation check), buffered body.
PLAN_DIRECT = 0
PLAN_DIRECT_MEM = 1
PLAN_GENERAL = 2


def walk_block(
    cache: DecodeCache,
    mem: Memory,
    isa_id: int,
    entry_ip: int,
    max_len: int = MAX_BLOCK_LEN,
) -> Tuple[Tuple[DecodedInstruction, ...], bool]:
    """Walk one straight-line run through the decode cache.

    The single definition of a superblock's extent, shared by the
    interactive engine (:meth:`SuperblockEngine.build`) and the
    ahead-of-time compiler (:mod:`repro.sim.aot`) so both tiers carve
    identical blocks from identical bytes.  Returns the decoded
    instructions and whether the run ended on a control transfer
    (``False``: capped at ``max_len`` or truncated before an
    undecodable word).  An undecodable *entry* raises, exactly like
    executing it would.
    """
    decs: List[DecodedInstruction] = []
    terminated = False
    ip = entry_ip
    while len(decs) < max_len:
        try:
            dec = cache.lookup(mem, isa_id, ip)
        except DecodeError:
            if not decs:
                # The entry itself is undecodable: executing it
                # would raise identically, so let it propagate.
                raise
            # Truncate before the bad word; if control ever falls
            # through to it, the next build raises at its entry.
            break
        decs.append(dec)
        if dec.is_control:
            terminated = True
            break
        ip += dec.size
    return tuple(decs), terminated


def plan_digest(mem: Memory, span: Tuple[int, int]) -> str:
    """Digest of the instruction bytes a plan covers (cache key)."""
    start, end = span
    return hashlib.sha256(
        bytes(mem.load_bytes(start, end - start))
    ).hexdigest()[:16]


class SuperblockPlan:
    """One translated straight-line run plus its terminator."""

    __slots__ = (
        "isa_id",
        "entry_ip",
        "kind",
        "body",
        "body_fn",
        "full_fn",
        "fused_body_fn",
        "fused_full_fn",
        "code_digest",
        "exec_count",
        "obs_body",
        "term_dec",
        "term_fn",
        "term_vals",
        "term_ops",
        "term_ip",
        "term_next_ip",
        "end_ip",
        "decs",
        "n_instr",
        "n_slots",
        "n_exec",
        "n_mem_instr",
        "n_mem_ops",
        "has_store",
        "pred_ip",
        "pred_isa",
        "pred_plan",
    )

    def __init__(
        self,
        isa_id: int,
        entry_ip: int,
        decs: Tuple[DecodedInstruction, ...],
        terminated: bool,
    ) -> None:
        self.isa_id = isa_id
        self.entry_ip = entry_ip
        self.decs = decs
        body_decs = decs[:-1] if terminated else decs

        self.n_instr = len(decs)
        self.n_slots = sum(d.n_slots for d in decs)
        self.n_exec = sum(d.n_exec for d in decs)
        self.n_mem_instr = sum(1 for d in decs if d.has_mem)
        self.n_mem_ops = sum(d.n_mem for d in decs)
        self.has_store = any(
            op.kind_code == KIND_STORE for d in decs for op in d.ops
        )

        # Buffered observation rows: every body instruction (including
        # NOP-only bundles — cycle models must see those issue).
        self.obs_body = tuple(
            (d.exec_ops, d.addr, d.addr + d.size, d) for d in body_decs
        )

        # Functional body rows with static IPs.  Commit-free when every
        # instruction is single-issue with a direct variant.
        direct_ok = all(
            d.single is not None
            and (d.single.kind_code == KIND_NOP
                 or d.single.direct_fn is not None)
            for d in body_decs
        )
        rows: List[Tuple] = []
        body_has_store = False
        for d in body_decs:
            if d.n_exec == 0:
                continue  # NOP-only: IP advance is baked into the rows
            next_ip = d.addr + d.size
            if direct_ok:
                rows.append((d.single.direct_fn, d.single.vals,
                             d.addr, next_ip))
            elif d.single is not None:
                rows.append((d.single.sim_fn, d.single.vals,
                             d.addr, next_ip))
            else:
                rows.append((None, d.exec_ops, d.addr, next_ip))
            if any(op.kind_code == KIND_STORE for op in d.ops):
                body_has_store = True
        self.body = tuple(rows)
        if direct_ok:
            self.kind = PLAN_DIRECT_MEM if body_has_store else PLAN_DIRECT
        else:
            self.kind = PLAN_GENERAL
        #: Flat translated code, compiled lazily once the plan is hot
        #: (see :meth:`translate`); the row loop is the cold path.
        #: ``full_fn`` covers body *and* terminator and returns the next
        #: IP (or ``~stop_ip`` on a self-modifying-code abort);
        #: ``body_fn`` covers only the body and returns None (or the
        #: positive ``stop_ip`` on abort).  The ``fused_*`` twins carry
        #: the same contract but take the cycle model as a third
        #: argument and interleave its compiled accounting.
        self.body_fn = None
        self.full_fn = None
        self.fused_body_fn = None
        self.fused_full_fn = None
        #: Digest of the plan's instruction bytes (persistent plan
        #: cache key; None when no cache is attached).
        self.code_digest = None
        self.exec_count = 0

        # Terminator (None for blocks capped at MAX_BLOCK_LEN or
        # truncated before an undecodable word).
        if terminated:
            term = decs[-1]
            self.term_dec = term
            self.term_ip = term.addr
            self.term_next_ip = term.addr + term.size
            self.end_ip = self.term_next_ip
            if term.single is not None:
                self.term_fn = term.single.sim_fn
                self.term_vals = term.single.vals
                self.term_ops = None
            else:
                self.term_fn = None
                self.term_vals = None
                self.term_ops = term.exec_ops
        else:
            self.term_dec = None
            self.term_fn = None
            self.term_vals = None
            self.term_ops = None
            self.term_ip = -1
            self.term_next_ip = -1
            last = decs[-1]
            self.end_ip = last.addr + last.size

        # Block chaining (1-entry successor prediction).
        self.pred_ip = -1
        self.pred_isa = -1
        self.pred_plan: Optional["SuperblockPlan"] = None

    def translate(self, timing=None) -> Dict[str, Tuple[str, object]]:
        """Compile the plan into flat translated functions.

        Called by the engine once the plan crosses
        :data:`HOT_THRESHOLD`.  Without ``timing`` the preferred
        outcome is ``full_fn`` (body plus an inlined branch terminator
        — one call per block); otherwise ``body_fn`` (buffered
        terminator stays); otherwise nothing, leaving the per-row call
        loop in charge.  With ``timing`` (a
        :class:`~repro.cycles.base.BlockCompiler`) the fused variants
        are compiled instead, interleaving the cycle model's
        accounting; a refusal by the compiler leaves the plan on the
        per-instruction observe path.

        Returns the compiled variants as ``{name: (source, code)}``
        for the engine's persistent plan cache.
        """
        variants: Dict[str, Tuple[str, object]] = {}
        if self.kind == PLAN_GENERAL:
            return variants
        body_decs = (
            self.decs[:-1] if self.term_dec is not None else self.decs
        )
        body_has_store = any(
            op.kind_code == KIND_STORE for d in body_decs for op in d.ops
        )
        term = self.term_dec
        if timing is not None:
            if term is not None and term.single is not None:
                fused = _translate_fused_plan(
                    body_decs, body_has_store, term,
                    self.isa_id, self.entry_ip, timing,
                )
                if fused is not None:
                    self.fused_full_fn, source, code = fused
                    variants["fused_full"] = (source, code)
                    return variants
            fused = _translate_fused_body(
                body_decs, body_has_store, self.isa_id, self.entry_ip,
                timing,
            )
            if fused is not None:
                self.fused_body_fn, source, code = fused
                variants["fused_body"] = (source, code)
            return variants
        if term is not None and term.single is not None:
            full = _translate_plan(
                body_decs, body_has_store, term,
                self.isa_id, self.entry_ip,
            )
            if full is not None:
                self.full_fn, source, code = full
                variants["full"] = (source, code)
                return variants
        body = _translate_body(
            body_decs, body_has_store, self.isa_id, self.entry_ip
        )
        if body is not None:
            self.body_fn, source, code = body
            variants["body"] = (source, code)
        return variants

    def attach_variants(self, fns: Dict[str, Callable]) -> None:
        """Adopt compiled functions reloaded from a persistent cache."""
        self.full_fn = fns.get("full")
        self.body_fn = fns.get("body")
        self.fused_full_fn = fns.get("fused_full")
        self.fused_body_fn = fns.get("fused_body")
        self.exec_count = HOT_THRESHOLD

    @property
    def span(self) -> Tuple[int, int]:
        """[start, end) byte range covered by the plan's instructions."""
        first = self.decs[0]
        last = self.decs[-1]
        return first.addr, last.addr + last.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SuperblockPlan isa={self.isa_id} entry={self.entry_ip:#x} "
            f"n={self.n_instr} kind={self.kind}>"
        )


def _emit_body_lines(
    body_decs: Tuple[DecodedInstruction, ...],
    has_store: bool,
    invert_abort: bool,
    timing=None,
) -> Optional[Tuple[List[str], bool, set, set]]:
    """Inline every body instruction; None when not flatly translatable.

    After each store instruction of a store-carrying block an
    invalidation check is emitted, returning the committed
    instruction's successor IP on a self-modifying-code hit —
    bit-inverted (negative) when the function's normal return values
    are IPs themselves (``invert_abort``).

    With ``timing`` (a :class:`~repro.cycles.base.BlockCompiler` whose
    ``begin()`` the caller already invoked) each instruction's timing
    statements are interleaved *before* its functional statements —
    the compiled analogue of observing pre-commit — and every abort
    site flushes the model's prefix totals before returning.  A None
    from ``timing.instr`` rejects the whole body.
    """
    lines: List[str] = []
    uses_regs = False
    loads: set = set()
    stores: set = set()
    for d in body_decs:
        single = d.single
        if single is None:
            return None
        if timing is not None:
            t_stmts = timing.instr(d)
            if t_stmts is None:
                return None
            for stmt in t_stmts:
                lines.append("    " + stmt)
        if d.n_exec == 0:
            continue
        try:
            stmts, i_regs, i_loads, i_stores = inline_direct_stmts(
                single.entry.op, single.vals, d.addr, d.addr + d.size
            )
        except Exception:
            return None  # fall back to the per-row call loop
        lines.extend(stmts)
        uses_regs = uses_regs or i_regs
        loads |= i_loads
        stores |= i_stores
        if has_store and single.kind_code == KIND_STORE:
            stop = d.addr + d.size
            lines.append("    if inv[0]:")
            if timing is not None:
                # The aborting store has been counted (its timing ran
                # above); flush the prefix totals, matching what the
                # per-instruction path observes before the abort.
                for stmt in timing.flush():
                    lines.append("        " + stmt)
            lines.append(f"        return {~stop if invert_abort else stop}")
    return lines, uses_regs, loads, stores


def _compile_plan_fn(
    lines: List[str],
    uses_regs: bool,
    loads: set,
    stores: set,
    isa_id: int,
    entry_ip: int,
    timing_prologue: Optional[List[str]] = None,
    fused: bool = False,
) -> Tuple[Callable, str, object]:
    prologue: List[str] = []
    if uses_regs:
        prologue.append("    regs = state.regs")
    for intrinsic in sorted(loads):
        size = intrinsic[1]
        prologue.append(f"    ld{size} = state.mem.load{size}")
    for size in sorted(stores):
        prologue.append(f"    st{size} = state.mem.store{size}")
    if timing_prologue:
        for stmt in timing_prologue:
            prologue.append("    " + stmt)
    header = (
        "def _superblock_body(state, inv, m):" if fused
        else "def _superblock_body(state, inv):"
    )
    source = "\n".join([header] + prologue + lines)
    code = compile(source, f"<superblock:{isa_id}:{entry_ip:#x}>", "exec")
    namespace: Dict[str, object] = dict(SIM_GLOBALS)
    exec(code, namespace)
    return namespace["_superblock_body"], source, code


def _translate_body(
    body_decs: Tuple[DecodedInstruction, ...],
    has_store: bool,
    isa_id: int,
    entry_ip: int,
) -> Optional[Tuple[Callable, str, object]]:
    """Compile a direct-eligible body into one flat Python function.

    The generated function executes every body instruction as inlined
    straight-line statements (no per-instruction calls, dispatch or
    bookkeeping) and returns None; on a self-modifying-code hit it
    returns the positive stop IP.  The terminator stays buffered.
    """
    emitted = _emit_body_lines(body_decs, has_store, invert_abort=False)
    if emitted is None or not emitted[0]:
        return None
    lines, uses_regs, loads, stores = emitted
    return _compile_plan_fn(
        lines, uses_regs, loads, stores, isa_id, entry_ip
    )


def _translate_plan(
    body_decs: Tuple[DecodedInstruction, ...],
    has_store: bool,
    term: DecodedInstruction,
    isa_id: int,
    entry_ip: int,
) -> Optional[Tuple[Callable, str, object]]:
    """Compile body *plus* branch terminator into one flat function.

    Every path returns the next IP directly (branch targets and the
    fall-through are literals folded at translation time); an abort
    returns ``~stop_ip``.  Only plain control transfers whose
    per-instance read-after-write check passes are inlined — ``jalr``
    with ``rd == rs1``, switches, simops and halts keep the buffered
    terminator path.
    """
    single = term.single
    inlined = inline_control_stmts(
        single.entry.op, single.vals, term.addr, term.addr + term.size
    )
    if inlined is None:
        return None
    emitted = _emit_body_lines(body_decs, has_store, invert_abort=True)
    if emitted is None:
        return None
    lines, uses_regs, loads, stores = emitted
    t_lines, t_regs, t_loads, t_stores = inlined
    lines.extend(t_lines)
    return _compile_plan_fn(
        lines, uses_regs or t_regs, loads | t_loads, stores | t_stores,
        isa_id, entry_ip,
    )


def _translate_fused_body(
    body_decs: Tuple[DecodedInstruction, ...],
    has_store: bool,
    isa_id: int,
    entry_ip: int,
    timing,
) -> Optional[Tuple[Callable, str, object]]:
    """Compile a body with the cycle model's accounting fused in.

    Same contract as :func:`_translate_body` (returns None or the
    positive stop IP on abort) but the generated function takes the
    cycle model as third argument ``m`` and advances it exactly as the
    per-instruction observe path would — the model never needs to see
    the individual instructions.
    """
    timing.begin()
    emitted = _emit_body_lines(
        body_decs, has_store, invert_abort=False, timing=timing
    )
    if emitted is None or not emitted[0]:
        return None
    lines, uses_regs, loads, stores = emitted
    for stmt in timing.flush():
        lines.append("    " + stmt)
    return _compile_plan_fn(
        lines, uses_regs or timing.uses_regs, loads, stores,
        isa_id, entry_ip,
        timing_prologue=timing.prologue(), fused=True,
    )


def _translate_fused_plan(
    body_decs: Tuple[DecodedInstruction, ...],
    has_store: bool,
    term: DecodedInstruction,
    isa_id: int,
    entry_ip: int,
    timing,
) -> Optional[Tuple[Callable, str, object]]:
    """Fused analogue of :func:`_translate_plan` (body + terminator).

    The terminator's timing statements run before its functional
    statements (which only *read* registers — ``inline_control_stmts``
    admits plain branches alone), and the model flush precedes every
    return path.  ``timing.term`` may refuse — e.g. when a branch
    model needs the per-instruction misprediction hook — pushing the
    plan down to :func:`_translate_fused_body`.
    """
    single = term.single
    inlined = inline_control_stmts(
        single.entry.op, single.vals, term.addr, term.addr + term.size
    )
    if inlined is None:
        return None
    timing.begin()
    emitted = _emit_body_lines(
        body_decs, has_store, invert_abort=True, timing=timing
    )
    if emitted is None:
        return None
    t_timing = timing.term(term)
    if t_timing is None:
        return None
    lines, uses_regs, loads, stores = emitted
    for stmt in t_timing:
        lines.append("    " + stmt)
    for stmt in timing.flush():
        lines.append("    " + stmt)
    t_lines, t_regs, t_loads, t_stores = inlined
    lines.extend(t_lines)
    return _compile_plan_fn(
        lines, uses_regs or t_regs or timing.uses_regs,
        loads | t_loads, stores | t_stores,
        isa_id, entry_ip,
        timing_prologue=timing.prologue(), fused=True,
    )


class SuperblockEngine:
    """Builds, caches, chains and executes superblock plans."""

    def __init__(
        self,
        cache: DecodeCache,
        *,
        chain: bool = True,
        max_block_len: Optional[int] = None,
    ) -> None:
        self.cache = cache
        #: Straight-line cap (satellite of the AOT tier: previously the
        #: module constant :data:`MAX_BLOCK_LEN`, now per-engine so the
        #: cap ablation and the plan-cache key can vary it).
        self.max_block_len = (
            MAX_BLOCK_LEN if max_block_len is None else max_block_len
        )
        self.plans: Dict[Tuple[int, int], SuperblockPlan] = {}
        self._by_page: Dict[int, List[Tuple[int, int]]] = {}
        #: Block chaining toggle (the ablation bench measures its win).
        self.chain = chain
        #: Optional block-mode hot-spot profiler
        #: (:class:`repro.telemetry.HotspotProfiler`): one
        #: ``record_block`` per completed plan execution, one
        #: ``record_block_prefix`` per rare mid-block SMC abort.  Costs
        #: a single None-check per block when unset.
        self.profiler = None
        #: Optional :class:`~repro.cycles.base.BlockCompiler` (set by
        #: the interpreter when the cycle model offers one): hot plans
        #: translate with the model's accounting fused in.
        self.fuser = None
        #: Optional :class:`~repro.sim.plancache.PlanCache` plus the
        #: variant namespace to read/write (``""`` for purely
        #: functional plans, the model's ``config_signature()`` for
        #: fused ones).  Both None disables persistence.
        self.plan_cache = None
        self.cache_namespace = None
        self.plans_built = 0
        self.blocks_executed = 0
        self.chain_hits = 0
        #: Hot-translation compile passes this run / plans reloaded
        #: from the persistent cache instead (warm starts translate 0).
        self.translations = 0
        self.plan_cache_hits = 0

    # -- plan construction -------------------------------------------------

    def build(self, mem: Memory, isa_id: int, entry_ip: int) -> SuperblockPlan:
        """Translate the straight-line run starting at ``entry_ip``."""
        decs, terminated = walk_block(
            self.cache, mem, isa_id, entry_ip, self.max_block_len
        )
        plan = SuperblockPlan(isa_id, entry_ip, decs, terminated)
        pcache = self.plan_cache
        if (
            pcache is not None
            and self.cache_namespace is not None
            and plan.kind != PLAN_GENERAL
        ):
            plan.code_digest = plan_digest(mem, plan.span)
            hit = pcache.lookup(
                isa_id, entry_ip, self.cache_namespace, plan.code_digest
            )
            if hit is not None:
                plan.attach_variants(hit)
                self.plan_cache_hits += 1
        key = (isa_id, entry_ip)
        self.plans[key] = plan
        start, end = plan.span
        for page in range(start >> PAGE_SHIFT,
                          ((end - 1) >> PAGE_SHIFT) + 1):
            self._by_page.setdefault(page, []).append(key)
        self.plans_built += 1
        return plan

    # -- hot translation ---------------------------------------------------

    def _hot_translate(self, plan: SuperblockPlan, model,
                       observe_block) -> None:
        """Translate a plan that just crossed :data:`HOT_THRESHOLD`.

        The variant compiled depends on how ``model`` observes:
        nothing at all (functional) and block-observing models without
        stores get the plain functions; models offering a fuser get
        the fused ones; everything else stays per-instruction — for
        which no compiled function helps, so nothing is compiled.
        Results (including a failed attempt's empty set, so warm runs
        never retry) land in the persistent cache when one is attached.
        """
        if model is None:
            variants = plan.translate()
        elif self.fuser is not None:
            variants = plan.translate(timing=self.fuser)
        elif observe_block is not None:
            if plan.has_store:
                return
            variants = plan.translate()
        else:
            return
        self.translations += 1
        if (
            self.plan_cache is not None
            and self.cache_namespace is not None
            and plan.code_digest is not None
        ):
            self.plan_cache.record(
                plan.isa_id, plan.entry_ip, plan.span,
                plan.code_digest, self.cache_namespace, variants,
            )

    # -- invalidation ------------------------------------------------------

    def _sever_chains(self) -> None:
        for plan in self.plans.values():
            plan.pred_ip = -1
            plan.pred_isa = -1
            plan.pred_plan = None

    def invalidate(self) -> None:
        """Drop every plan (full decode-cache invalidation)."""
        self._sever_chains()
        self.plans.clear()
        self._by_page.clear()

    def invalidate_write(self, page: int, addr: int, length: int) -> bool:
        """Drop plans whose instruction bytes intersect the write."""
        keys = self._by_page.get(page)
        if not keys:
            return False
        end = addr + length
        stale = []
        for key in keys:
            plan = self.plans.get(key)
            if plan is None:
                continue
            start, stop = plan.span
            if start < end and addr < stop:
                stale.append(key)
        if not stale:
            return False
        self._sever_chains()
        for key in stale:
            plan = self.plans.pop(key, None)
            if plan is None:
                continue
            start, stop = plan.span
            for p in range(start >> PAGE_SHIFT,
                           ((stop - 1) >> PAGE_SHIFT) + 1):
                bucket = self._by_page.get(p)
                if bucket is not None and key in bucket:
                    bucket.remove(key)
        return True

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        state: ProcessorState,
        model,
        budget: int,
        inv: List[bool],
    ) -> Tuple[int, int, int, int, int]:
        """Run chained superblocks until halt, budget or a tail block.

        Returns the locally accumulated ``(instructions, slots, ops,
        memory instructions, memory ops)``.  When the remaining budget
        cannot fit the next whole block the method returns early and
        the caller finishes per-instruction.
        """
        mem = state.mem
        regs = state.regs
        plans = self.plans
        chain = self.chain
        s4, s2, s1 = mem.store4, mem.store2, mem.store1
        regwr: list = []
        memwr: list = []
        executed = slots = ops_exec = mem_instr = mem_ops = 0
        blocks = chains = 0
        profiler = self.profiler
        observe_block = (
            getattr(model, "observe_block", None)
            if model is not None else None
        )
        fuser = self.fuser if model is not None else None
        prev: Optional[SuperblockPlan] = None

        while not state.halted and executed < budget:
            ip = state.ip
            isa_id = state.isa_id
            if (
                prev is not None
                and prev.pred_ip == ip
                and prev.pred_isa == isa_id
            ):
                plan = prev.pred_plan
                chains += 1
            else:
                key = (isa_id, ip)
                plan = plans.get(key)
                if plan is None:
                    plan = self.build(mem, isa_id, ip)
                if chain and prev is not None:
                    prev.pred_ip = ip
                    prev.pred_isa = isa_id
                    prev.pred_plan = plan
            if executed + plan.n_instr > budget:
                break  # tail: the interpreter finishes per-instruction
            prev = plan
            blocks += 1
            aborted = False
            n = plan.exec_count
            if n < HOT_THRESHOLD and plan.kind != PLAN_GENERAL:
                plan.exec_count = n + 1
                if n + 1 == HOT_THRESHOLD:
                    self._hot_translate(plan, model, observe_block)

            # -- body ------------------------------------------------------
            if model is None or (
                observe_block is not None and not plan.has_store
            ):
                if observe_block is not None and model is not None:
                    observe_block(plan, regs)
                full_fn = plan.full_fn
                if full_fn is not None:
                    # Fully translated block: one call executes body
                    # and terminator and yields the next IP.
                    r = full_fn(state, inv)
                    if r >= 0:
                        state.ip = r
                        executed += plan.n_instr
                        slots += plan.n_slots
                        ops_exec += plan.n_exec
                        mem_instr += plan.n_mem_instr
                        mem_ops += plan.n_mem_ops
                        if profiler is not None:
                            profiler.record_block(plan)
                        continue
                    # A store rewrote translated code mid-block.
                    inv[0] = False
                    stop = ~r
                    if profiler is not None:
                        profiler.record_block_prefix(plan, stop)
                    d = _partial_stats(plan, stop)
                    executed += d[0]; slots += d[1]
                    ops_exec += d[2]; mem_instr += d[3]
                    mem_ops += d[4]
                    state.ip = stop
                    prev = None
                    continue
                kind = plan.kind
                body_fn = plan.body_fn
                if body_fn is not None:
                    stop = body_fn(state, inv)
                    if stop is not None:
                        # A store rewrote translated code mid-block.
                        inv[0] = False
                        if profiler is not None:
                            profiler.record_block_prefix(plan, stop)
                        d = _partial_stats(plan, stop)
                        executed += d[0]; slots += d[1]
                        ops_exec += d[2]; mem_instr += d[3]
                        mem_ops += d[4]
                        state.ip = stop
                        prev = None
                        aborted = True
                elif kind == PLAN_DIRECT:
                    for fn, vals, ip_c, nip_c in plan.body:
                        fn(state, vals, ip_c, nip_c)
                elif kind == PLAN_DIRECT_MEM:
                    for fn, vals, ip_c, nip_c in plan.body:
                        fn(state, vals, ip_c, nip_c)
                        if inv[0]:
                            inv[0] = False
                            if profiler is not None:
                                profiler.record_block_prefix(plan, nip_c)
                            d = _partial_stats(plan, nip_c)
                            executed += d[0]; slots += d[1]
                            ops_exec += d[2]; mem_instr += d[3]
                            mem_ops += d[4]
                            state.ip = nip_c
                            prev = None
                            aborted = True
                            break
                else:
                    for fn, vals, ip_c, nip_c in plan.body:
                        if fn is not None:
                            fn(state, vals, ip_c, nip_c, regwr, memwr)
                        else:
                            for f2, v2 in vals:
                                f2(state, v2, ip_c, nip_c, regwr, memwr)
                        if regwr:
                            for reg, val in regwr:
                                regs[reg] = val
                            regs[0] = 0
                            del regwr[:]
                        if memwr:
                            for size, addr, val in memwr:
                                if size == 4:
                                    s4(addr, val)
                                elif size == 2:
                                    s2(addr, val)
                                else:
                                    s1(addr, val)
                            del memwr[:]
                            if inv[0]:
                                inv[0] = False
                                if profiler is not None:
                                    profiler.record_block_prefix(
                                        plan, nip_c
                                    )
                                d = _partial_stats(plan, nip_c)
                                executed += d[0]; slots += d[1]
                                ops_exec += d[2]; mem_instr += d[3]
                                mem_ops += d[4]
                                state.ip = nip_c
                                prev = None
                                aborted = True
                                break
                observed_term = observe_block is not None
            elif fuser is not None and plan.fused_full_fn is not None:
                # Fully translated block with the model's accounting
                # fused in: one call executes body, terminator and
                # cycle bookkeeping and yields the next IP.
                r = plan.fused_full_fn(state, inv, model)
                if r >= 0:
                    state.ip = r
                    executed += plan.n_instr
                    slots += plan.n_slots
                    ops_exec += plan.n_exec
                    mem_instr += plan.n_mem_instr
                    mem_ops += plan.n_mem_ops
                    if profiler is not None:
                        profiler.record_block(plan)
                    continue
                # A store rewrote translated code mid-block; the fused
                # flush at the abort site already charged the prefix.
                inv[0] = False
                stop = ~r
                if profiler is not None:
                    profiler.record_block_prefix(plan, stop)
                d = _partial_stats(plan, stop)
                executed += d[0]; slots += d[1]
                ops_exec += d[2]; mem_instr += d[3]
                mem_ops += d[4]
                state.ip = stop
                prev = None
                continue
            elif fuser is not None and plan.fused_body_fn is not None:
                # Fused body; the terminator keeps full buffered
                # semantics (and per-instruction observation) below.
                stop = plan.fused_body_fn(state, inv, model)
                if stop is not None:
                    inv[0] = False
                    if profiler is not None:
                        profiler.record_block_prefix(plan, stop)
                    d = _partial_stats(plan, stop)
                    executed += d[0]; slots += d[1]
                    ops_exec += d[2]; mem_instr += d[3]
                    mem_ops += d[4]
                    state.ip = stop
                    prev = None
                    aborted = True
                observed_term = False
            else:
                # Per-instruction observing path (AIE/DOE, or any block
                # containing stores — keeps abort and observe aligned).
                for ops_t, ip_c, nip_c, dec in plan.obs_body:
                    for f2, v2 in ops_t:
                        f2(state, v2, ip_c, nip_c, regwr, memwr)
                    model.observe(dec, regs)
                    if regwr:
                        for reg, val in regwr:
                            regs[reg] = val
                        regs[0] = 0
                        del regwr[:]
                    if memwr:
                        for size, addr, val in memwr:
                            if size == 4:
                                s4(addr, val)
                            elif size == 2:
                                s2(addr, val)
                            else:
                                s1(addr, val)
                        del memwr[:]
                        if inv[0]:
                            inv[0] = False
                            if profiler is not None:
                                profiler.record_block_prefix(plan, nip_c)
                            d = _partial_stats(plan, nip_c)
                            executed += d[0]; slots += d[1]
                            ops_exec += d[2]; mem_instr += d[3]
                            mem_ops += d[4]
                            state.ip = nip_c
                            prev = None
                            aborted = True
                            break
                observed_term = False
            if aborted:
                continue

            # -- terminator (full buffered semantics) ---------------------
            if plan.term_dec is not None:
                ip_c = plan.term_ip
                nip_c = plan.term_next_ip
                new_ip = None
                fn = plan.term_fn
                if fn is not None:
                    new_ip = fn(state, plan.term_vals, ip_c, nip_c,
                                regwr, memwr)
                else:
                    for f2, v2 in plan.term_ops:
                        r = f2(state, v2, ip_c, nip_c, regwr, memwr)
                        if r is not None:
                            new_ip = r
                if model is not None and not observed_term:
                    model.observe(plan.term_dec, regs)
                if regwr:
                    for reg, val in regwr:
                        regs[reg] = val
                    regs[0] = 0
                    del regwr[:]
                if memwr:
                    for size, addr, val in memwr:
                        if size == 4:
                            s4(addr, val)
                        elif size == 2:
                            s2(addr, val)
                        else:
                            s1(addr, val)
                    del memwr[:]
                state.ip = nip_c if new_ip is None else new_ip
            else:
                state.ip = plan.end_ip
            if inv[0]:
                # A terminator (store beside a branch, or a simop
                # writing into code) invalidated plans; the chain is
                # already severed — just drop our stale reference.
                inv[0] = False
                prev = None

            executed += plan.n_instr
            slots += plan.n_slots
            ops_exec += plan.n_exec
            mem_instr += plan.n_mem_instr
            mem_ops += plan.n_mem_ops
            if profiler is not None:
                profiler.record_block(plan)

        self.blocks_executed += blocks
        self.chain_hits += chains
        return executed, slots, ops_exec, mem_instr, mem_ops


def _partial_stats(
    plan: SuperblockPlan, stop_ip: int
) -> Tuple[int, int, int, int, int]:
    """Stats of the block prefix strictly before ``stop_ip``.

    Used on the rare mid-block abort after a self-modifying store: the
    instruction ending at ``stop_ip`` has committed, everything after
    it has not run.
    """
    n = s = e = mi = mo = 0
    for dec in plan.decs:
        if dec.addr >= stop_ip:
            break
        n += 1
        s += dec.n_slots
        e += dec.n_exec
        if dec.has_mem:
            mi += 1
            mo += dec.n_mem
    return n, s, e, mi, mo
