"""Command-line interface of the KAHRISMA framework.

Subcommands mirror the paper's toolchain (Figure 2)::

    kahrisma compile app.kc -o app.elf --isa vliw4
    kahrisma compile app.elf --models none,aie,doe   # AOT translation
    kahrisma asm app.s -o app.elf --entry '$risc$main' --entry-isa 0
    kahrisma run app.elf --model doe [--isa 2] [--trace out.trc]
    kahrisma run app.elf --engine aot
    kahrisma run app.elf --model doe --profile --metrics m.json \
                 --timeline t.trace.json
    kahrisma report m.json
    kahrisma disasm app.elf
    kahrisma ilp app.kc
    kahrisma select app.kc
    kahrisma targetgen --emit-sim gen_sim.py --emit-stubs libc.s
    kahrisma fuzz --seed 1234 --count 200
    kahrisma fuzz --self-test
    kahrisma fuzz --replay tests/corpus
    kahrisma programs
    kahrisma serve --port 8321 --workers 4
    kahrisma submit dct4x4 --engine aot --follow
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional

from .adl.kahrisma import KAHRISMA
from .binutils.assembler import Assembler
from .binutils.elf import ElfFile
from .binutils.linker import link
from .binutils.loader import load_executable
from .cycles.aie import AieModel
from .cycles.branch import (
    BimodalPredictor,
    BranchModel,
    GsharePredictor,
    NotTakenPredictor,
)
from .cycles.doe import DoeModel
from .cycles.ilp import IlpModel
from .framework.pipeline import build
from .framework.selection import profile_functions, select_isas
from .lang.driver import compile_mixed, compile_source
from .programs import PROGRAMS, load_program
from .rtl.pipeline import RtlPipeline
from .sim.disasm import disassemble_range
from .sim.errors import SimulationError
from .sim.interpreter import ENGINES, Interpreter
from .sim.tracing import Tracer
from .telemetry import (
    HotspotProfiler,
    TimelineRecorder,
    build_run_report,
    render_report,
    write_report,
)
from .targetgen.asmgen import generate_libc_stubs
from .targetgen.codegen import write_simulator_module
from .targetgen.docgen import write_isa_reference


def _parse_isa_map(text: Optional[str]) -> Dict[str, str]:
    result: Dict[str, str] = {}
    if text:
        for pair in text.split(","):
            name, _, isa = pair.partition("=")
            if not isa:
                raise SystemExit(f"--mixed expects fn=isa pairs, got {pair!r}")
            result[name.strip()] = isa.strip()
    return result


def _read_source(path: str) -> str:
    if path in PROGRAMS:
        return load_program(path)
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


class _NullSink:
    """Event sink for ``--live``/``--prom`` without ``--events``: the
    stream machinery (heartbeat slicing, subscribers) runs, but no
    NDJSON is written anywhere."""

    def write(self, _text: str) -> None:
        pass

    def flush(self) -> None:
        pass


def _open_plan_cache(elf: ElfFile, directory, limit=None, block_len=None):
    import hashlib

    from .sim.plancache import PlanCache
    from .targetgen.codegen import architecture_digest

    return PlanCache.open(
        elf_digest=hashlib.sha256(elf.write()).hexdigest()[:16],
        arch_digest=architecture_digest(KAHRISMA),
        directory=directory,
        block_len=block_len,
        limit=limit,
    )


def cmd_compile_elf(args: argparse.Namespace) -> int:
    """``kahrisma compile <elf>``: ahead-of-time whole-program translation.

    Statically discovers every superblock entry point, translates the
    whole program into one generated module per requested cycle-model
    namespace and stores the modules in the plan cache, so a later
    ``kahrisma run --engine aot`` starts warm (see docs/performance.md).
    """
    from .sim import aot

    with open(args.input, "rb") as f:
        elf = ElfFile.read(f.read())
    width = KAHRISMA.isa(elf.flags).issue_width
    cache = _open_plan_cache(
        elf, args.plan_cache_dir,
        limit=args.plan_cache_limit, block_len=args.max_block_len,
    )
    status = 0
    for name in args.models.split(","):
        name = name.strip()
        model = _make_model(None if name == "none" else name, width)
        label = "functional" if name == "none" else name
        try:
            module, per_entry, report = aot.compile_module(
                elf, KAHRISMA,
                model=model,
                max_block_len=args.max_block_len,
                profile_budget=args.profile_budget,
            )
        except ValueError as exc:
            print(f"{label}: {exc}")
            status = 1
            continue
        cache.record_module(module.namespace, module.payload())
        for (isa_id, entry_ip), (plan, variants) in per_entry.items():
            cache.record(
                isa_id, entry_ip, plan.span, plan.code_digest,
                module.namespace, variants,
            )
        print(
            f"{label}: {report['covered']} blocks, "
            f"{report['traces']} traces, "
            f"{report['static_coverage'] * 100:.1f}% static coverage, "
            f"{report['seconds']:.2f}s"
        )
    cache.save()
    print(f"plan cache: {cache.path}")
    return status


def cmd_compile(args: argparse.Namespace) -> int:
    if args.input not in PROGRAMS:
        try:
            with open(args.input, "rb") as f:
                magic = f.read(4)
        except OSError:
            magic = b""
        if magic == b"\x7fELF":
            return cmd_compile_elf(args)
    source = _read_source(args.input)
    isa_map = _parse_isa_map(args.mixed)
    if isa_map:
        compiled = compile_mixed(
            source, KAHRISMA, isa_map=isa_map, default_isa=args.isa,
            filename=args.input,
        )
    else:
        compiled = compile_source(
            source, KAHRISMA, isa=args.isa, filename=args.input
        )
    if args.emit_asm:
        with open(args.emit_asm, "w", encoding="utf-8") as f:
            f.write(compiled.assembly)
    obj = Assembler(KAHRISMA).assemble(compiled.assembly, args.input)
    elf, _info = link(
        [obj], KAHRISMA,
        entry_symbol=compiled.entry_symbol, entry_isa=compiled.entry_isa,
    )
    with open(args.output, "wb") as f:
        f.write(elf.write())
    print(f"wrote {args.output} (entry {compiled.entry_symbol})")
    return 0


def cmd_asm(args: argparse.Namespace) -> int:
    with open(args.input, "r", encoding="utf-8") as f:
        source = f.read()
    obj = Assembler(KAHRISMA).assemble(source, args.input)
    elf, _info = link(
        [obj], KAHRISMA, entry_symbol=args.entry, entry_isa=args.entry_isa
    )
    with open(args.output, "wb") as f:
        f.write(elf.write())
    print(f"wrote {args.output}")
    return 0


def _make_branch_model(name: Optional[str], penalty: int):
    if name is None or name == "perfect":
        return None
    predictors = {
        "not-taken": NotTakenPredictor,
        "bimodal": BimodalPredictor,
        "gshare": GsharePredictor,
    }
    if name not in predictors:
        raise SystemExit(f"unknown branch predictor {name!r}")
    return BranchModel(predictors[name](), penalty=penalty)


def _make_model(name: Optional[str], width: int, branch_model=None):
    if name is None or name == "none":
        return None
    if name == "ilp":
        return IlpModel()
    if name == "aie":
        return AieModel(branch_model=branch_model)
    if name == "doe":
        return DoeModel(issue_width=width, branch_model=branch_model)
    if name == "rtl":
        return RtlPipeline(issue_width=width, branch_model=branch_model)
    raise SystemExit(f"unknown cycle model {name!r}")


def _check_run_flags(args: argparse.Namespace) -> None:
    """Reject incoherent --engine/--model combinations up front.

    The simulator would otherwise silently ignore the flag (or crash
    deep inside a run loop), which reads like a simulator bug.
    """
    if (args.profile and args.profile_mode == "block"
            and args.engine != "superblock"):
        raise SystemExit(
            "--profile-mode block needs --engine superblock "
            "(block attribution expands translated plans)"
        )
    if args.timeline and args.model in ("none", "ilp"):
        raise SystemExit(
            "--timeline needs a microarchitectural cycle model "
            "(pass --model aie/doe/rtl)"
        )
    if (args.branch_predictor not in (None, "perfect")
            and args.model in ("none", "ilp")):
        raise SystemExit(
            f"--branch-predictor {args.branch_predictor} needs a cycle "
            "model with a fetch stage (pass --model aie/doe/rtl); "
            f"--model {args.model} never consults a predictor"
        )
    if args.sample:
        if args.model not in ("aie", "doe"):
            raise SystemExit(
                f"--sample needs a detailed cycle model to sample "
                f"(pass --model aie/doe); --model {args.model} has no "
                f"reset-and-warm entry point"
            )
        for flag, name in ((args.trace, "--trace"),
                           (args.profile, "--profile"),
                           (args.timeline, "--timeline"),
                           (args.checkpoint_every, "--checkpoint-every")):
            if flag:
                raise SystemExit(
                    f"--sample is incompatible with {name}: sampling "
                    f"runs the detailed model only on measured "
                    f"intervals (see docs/performance.md)"
                )


def _cmd_run_sampled(
    args, program, model, branch_model, *,
    base_stats, resume_meta, plan_cache, aot_module,
    events, flight, live, prom, out,
) -> int:
    """``kahrisma run --sample U:k[:W[:seed]]`` body (flags validated)."""
    from .framework.sampling import SamplingConfig, run_sampled
    from .telemetry.stream import write_prometheus

    try:
        config = SamplingConfig.parse(args.sample)
    except ValueError as exc:
        raise SystemExit(f"--sample: {exc}")
    if events is not None:
        events.emit(
            "run-start",
            workload=args.input,
            engine=args.engine,
            model=args.model,
            heartbeat_every=events.heartbeat_every,
            sampling=config.spec(),
        )
    try:
        outcome = run_sampled(
            program, model, config,
            engine=args.engine,
            max_instructions=args.max_instructions,
            plan_cache=plan_cache,
            aot_module=aot_module,
            max_block_len=args.max_block_len,
            fuse_cycles=not args.no_cycle_fusion,
            events=events,
            flight=flight,
            base_stats=base_stats,
            meta=resume_meta,
        )
    except (ValueError, RuntimeError) as exc:
        if live is not None:
            live.close()
        if events is not None:
            events.close()
        raise SystemExit(f"--sample: {exc}")
    stats = outcome.stats
    result = outcome.result
    if events is not None:
        events.emit(
            "run-end",
            instructions=stats.executed_instructions,
            exit_code=program.state.exit_code,
            elapsed_seconds=round(stats.elapsed_seconds, 6),
            mips=round(stats.mips, 3),
            halted=program.state.halted,
            cycles_estimated=result.cycles_estimated,
        )
        events.close()
    out.write(program.output)
    print("---", file=out)
    print(f"instructions: {stats.executed_instructions}", file=out)
    print(f"exit code:    {program.state.exit_code}", file=out)
    print(f"mips:         {stats.mips:.3f}", file=out)
    est = result.cycles_estimated
    ci = result.cycles_ci95
    ci_text = f" +/- {ci:.0f} (95% CI)" if ci is not None else ""
    print(f"{args.model} cycles:   "
          f"{est if est is not None else '(no interval measured)'}"
          f"{ci_text}  [estimated]", file=out)
    print(f"sampling:     U={config.interval} k={config.period} "
          f"W={config.warmup} seed={config.seed}  "
          f"{len(result.intervals)} intervals, "
          f"{result.detailed_fraction * 100:.2f}% detailed", file=out)
    if branch_model is not None:
        print(f"branches:     {branch_model.summary()}", file=out)
    if args.flight and flight is not None:
        flight.dump()
        print(f"flight:       wrote {args.flight} "
              f"({len(flight)} entries)", file=out)
    report = None
    if args.metrics or args.prom:
        report = build_run_report(
            outcome.fast, model,
            stats=stats,
            workload=args.input,
            sampling=result,
        )
    if args.prom:
        write_prometheus(report["metrics"], args.prom)
        print(f"prometheus:   wrote {args.prom} "
              f"({prom.writes} heartbeat refreshes)", file=out)
    if args.metrics:
        write_report(report, args.metrics)
        print(f"metrics:      wrote {args.metrics}", file=out)
    return program.state.exit_code


def cmd_run(args: argparse.Namespace) -> int:
    _check_run_flags(args)
    from .telemetry.flight import FlightRecorder
    from .telemetry.stream import (
        EventStream,
        LiveProgress,
        PrometheusSnapshot,
        write_prometheus,
    )

    with open(args.input, "rb") as f:
        elf = ElfFile.read(f.read())
    # ``--events -`` makes stdout the NDJSON channel: the human summary
    # and the program's own output move to stderr so the stream stays
    # machine-parseable end to end.
    events_to_stdout = args.events == "-"
    out = sys.stderr if events_to_stdout else sys.stdout
    events = None
    if args.events:
        events = EventStream.open(args.events, heartbeat_every=args.heartbeat)
    elif args.live or args.prom:
        events = EventStream(
            sink=_NullSink(), heartbeat_every=args.heartbeat
        )
    live = None
    if args.live:
        # Progress rendering is pinned to stderr (never `out`): with
        # `--events -` the NDJSON stream owns stdout, and a \r-rewritten
        # progress line interleaved into it would corrupt the stream.
        # tests/test_cli.py asserts this stdout purity.
        live = LiveProgress(sys.stderr, label=args.input)
        events.subscribe(live)
    prom = None
    if args.prom:
        prom = PrometheusSnapshot(args.prom)
        events.subscribe(prom)
    # Flight recording is default-armed on the translated engines
    # (block-granularity trail, <5% overhead — docs/observability.md);
    # the interactive engines would pay the featureful-loop price, so
    # they record only when --flight asks for it explicitly.
    flight = None
    if not args.no_flight and (
        args.flight or args.engine in ("superblock", "aot")
    ):
        flight = FlightRecorder(capacity=args.flight_size)
        if args.flight:
            flight.dump_path = args.flight
    resume_payload = None
    if args.resume:
        from .snapshot import CheckpointError, read_checkpoint

        try:
            resume_payload = read_checkpoint(args.resume)
        except CheckpointError as exc:
            raise SystemExit(f"--resume: {exc}")
        width = KAHRISMA.isa(
            int(resume_payload["state"]["isa_id"])
        ).issue_width
    branch_model = _make_branch_model(args.branch_predictor,
                                      args.branch_penalty)
    base_stats = None
    if resume_payload is not None:
        from .snapshot import CheckpointError, load_checkpoint_program

        model = _make_model(args.model, width, branch_model)
        try:
            resumed = load_checkpoint_program(
                resume_payload, KAHRISMA, elf=elf, cycle_model=model
            )
        except CheckpointError as exc:
            raise SystemExit(f"--resume: {exc}")
        program = resumed.program
        base_stats = resumed.base_stats
        resume_meta = resumed.meta
    else:
        program = load_executable(elf, KAHRISMA, isa_id=args.isa)
        width = KAHRISMA.isa(program.state.isa_id).issue_width
        model = _make_model(args.model, width, branch_model)
        resume_meta = None
    profiler = None
    if args.profile:
        mode = args.profile_mode
        if mode == "auto":
            # Keep the superblock fast path when nothing forces the
            # per-instruction loop anyway.
            mode = (
                "block"
                if args.engine == "superblock" and not args.trace
                else "exact"
            )
        profiler = HotspotProfiler(mode=mode)
    timeline = None
    if args.timeline:
        timeline = TimelineRecorder(max_events=args.timeline_events)
    tracer = Tracer.to_file(args.trace) if args.trace else None
    plan_cache = None
    if args.engine in ("superblock", "aot") and not args.no_plan_cache:
        plan_cache = _open_plan_cache(
            elf, args.plan_cache_dir,
            limit=args.plan_cache_limit, block_len=args.max_block_len,
        )
    aot_module = None
    if (
        args.engine == "aot"
        and tracer is None
        and profiler is None
        and timeline is None
        and (args.sample or not args.no_cycle_fusion or model is None)
    ):
        from .sim import aot

        aot_module = aot.prepare(
            elf, KAHRISMA,
            # --sample fast-forwards functionally: the module serves
            # the fast tier, never the detailed model.
            model=None if args.sample else model,
            plan_cache=plan_cache,
            max_block_len=args.max_block_len,
        )
    if args.sample:
        return _cmd_run_sampled(
            args, program, model, branch_model,
            base_stats=base_stats,
            resume_meta=resume_meta,
            plan_cache=plan_cache,
            aot_module=aot_module,
            events=events,
            flight=flight,
            live=live,
            prom=prom,
            out=out,
        )
    checkpoints = []
    try:
        interp = Interpreter(program.state, cycle_model=model,
                             tracer=tracer, engine=args.engine,
                             profiler=profiler, timeline=timeline,
                             plan_cache=plan_cache,
                             fuse_cycles=not args.no_cycle_fusion,
                             aot_module=aot_module,
                             max_block_len=args.max_block_len,
                             events=events, flight=flight)
        if events is not None:
            events.emit(
                "run-start",
                workload=args.input,
                engine=interp.engine,
                model=None if args.model == "none" else args.model,
                heartbeat_every=events.heartbeat_every,
            )
        if args.checkpoint_every:
            from .snapshot import run_with_checkpoints

            ckpt = run_with_checkpoints(
                interp, program.syscalls,
                every=args.checkpoint_every,
                directory=args.checkpoint_dir,
                max_instructions=args.max_instructions,
                base_stats=base_stats,
                workload=args.input,
            )
            stats = ckpt.stats
            checkpoints = ckpt.checkpoints
        else:
            stats = interp.run(max_instructions=args.max_instructions)
            if base_stats is not None:
                whole = base_stats.copy()
                whole.merge(stats)
                stats = whole
    except SimulationError as exc:
        # The interpreter already attached the flight snapshot (and
        # dumped --flight JSON); render the trail so the crash comes
        # with the blocks that led up to it.
        if live is not None:
            live.close()
        if flight is not None:
            print(flight.format(debug_info=program.debug_info),
                  file=sys.stderr)
            if flight.dump_path:
                print(f"flight dump:  wrote {flight.dump_path}",
                      file=sys.stderr)
        if events is not None:
            events.close()
        raise
    finally:
        # Flush partial telemetry even when the simulation aborts —
        # a truncated trace/timeline localises the fault.
        if tracer is not None:
            tracer.close()
        if timeline is not None and args.timeline:
            timeline.write(args.timeline)
    if events is not None:
        events.emit(
            "run-end",
            instructions=stats.executed_instructions,
            exit_code=program.state.exit_code,
            elapsed_seconds=round(stats.elapsed_seconds, 6),
            mips=round(stats.mips, 3),
            halted=program.state.halted,
        )
        events.close()
    out.write(program.output)
    print("---", file=out)
    print(f"instructions: {stats.executed_instructions}", file=out)
    print(f"exit code:    {program.state.exit_code}", file=out)
    print(f"mips:         {stats.mips:.3f}", file=out)
    print(f"decode cache: {stats.decode_avoidance * 100:.3f}% decodes "
          f"avoided", file=out)
    print(f"prediction:   {stats.lookup_avoidance * 100:.3f}% lookups "
          f"avoided", file=out)
    if model is not None:
        print(f"{args.model} cycles:   {model.cycles}", file=out)
    if branch_model is not None:
        print(f"branches:     {branch_model.summary()}", file=out)
    if args.timeline:
        print(f"timeline:     wrote {args.timeline} "
              f"({len(timeline)} events, {timeline.dropped} dropped)",
              file=out)
    if checkpoints:
        print(f"checkpoints:  wrote {len(checkpoints)} into "
              f"{args.checkpoint_dir}", file=out)
    if args.flight and flight is not None:
        flight.dump()
        print(f"flight:       wrote {args.flight} "
              f"({len(flight)} entries)", file=out)
    report = None
    if args.metrics or profiler is not None or args.prom:
        report = build_run_report(
            interp, model,
            profiler=profiler,
            debug_info=program.debug_info,
            workload=args.input,
        )
    if args.prom:
        # Final snapshot from the complete post-run metrics (heartbeat
        # refreshes stop before the last slice).
        write_prometheus(report["metrics"], args.prom)
        print(f"prometheus:   wrote {args.prom} "
              f"({prom.writes} heartbeat refreshes)", file=out)
    if args.metrics:
        write_report(report, args.metrics)
        print(f"metrics:      wrote {args.metrics}", file=out)
    if profiler is not None:
        print(file=out)
        print(render_report({k: v for k, v in report.items()
                             if k != "metrics"}, top=args.top), file=out)
    return program.state.exit_code


def cmd_parallel(args: argparse.Namespace) -> int:
    from .framework.parallel import run_parallel
    from .telemetry.stream import EventStream

    source = _read_source(args.input)
    isa_map = _parse_isa_map(args.mixed)
    built = build(
        source, isa=args.isa, isa_map=isa_map or None, filename=args.input
    )
    events_to_stdout = args.events == "-"
    out = sys.stderr if events_to_stdout else sys.stdout
    events = None
    if args.events:
        events = EventStream.open(args.events, heartbeat_every=args.heartbeat)
    try:
        result = run_parallel(
            built,
            shards=args.shards,
            model=None if args.model == "none" else args.model,
            branch_predictor=args.branch_predictor,
            branch_penalty=args.branch_penalty,
            engine=args.engine,
            checkpoint_dir=args.checkpoint_dir,
            max_instructions=args.max_instructions,
            processes=args.processes,
            workload=args.input,
            keep_checkpoints=args.keep_checkpoints,
            use_plan_cache=not args.no_plan_cache,
            plan_cache_dir=args.plan_cache_dir,
            events=events,
            sampling=args.sample,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    finally:
        if events is not None:
            events.close()
    out.write(result.output)
    print("---", file=out)
    plan = result.plan
    print(f"shards:       {len(result.shard_results)} over "
          f"{plan.total_instructions} instructions", file=out)
    print(f"instructions: {result.stats.executed_instructions}", file=out)
    print(f"exit code:    {result.exit_code}", file=out)
    if result.sampling is not None:
        est = result.sampling.cycles_estimated
        ci = result.sampling.cycles_ci95
        ci_text = f" +/- {ci:.0f} (95% CI)" if ci is not None else ""
        print(f"{args.model} cycles:   "
              f"{est if est is not None else '(no interval measured)'}"
              f"{ci_text}  [estimated, per-shard sampling]", file=out)
    elif result.cycles is not None:
        print(f"{args.model} cycles:   {result.cycles} "
              f"(approximate: shard models start cold)", file=out)
    for i, shard in enumerate(result.shard_results):
        start = plan.boundaries[i]
        end = (plan.boundaries[i + 1] if i + 1 < len(plan.boundaries)
               else plan.total_instructions)
        cycles = shard["cycles"]
        extra = f"  cycles {cycles}" if cycles is not None else ""
        print(f"  shard {i}: [{start}, {end})  "
              f"instructions {shard['stats'].executed_instructions}{extra}",
              file=out)
    if args.metrics:
        write_report(result.telemetry, args.metrics)
        print(f"metrics:      wrote {args.metrics}", file=out)
    return result.exit_code


def cmd_report(args: argparse.Namespace) -> int:
    import json

    from .telemetry.stream import (
        looks_like_event_stream,
        render_event_summary,
        summarize_events,
        validate_stream_text,
    )

    with open(args.metrics, "r", encoding="utf-8") as f:
        text = f.read()
    if looks_like_event_stream(text):
        # NDJSON event stream (`kahrisma run --events`): summarize it
        # instead of rendering a metrics table.
        try:
            events = validate_stream_text(text)
        except ValueError as exc:
            raise SystemExit(f"{args.metrics}: {exc}")
        print(render_event_summary(summarize_events(events)))
        return 0
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise SystemExit(f"{args.metrics}: not JSON ({exc})")
    if doc.get("schema") != "kahrisma-telemetry":
        print(f"warning: {args.metrics} does not look like a telemetry "
              f"report (schema={doc.get('schema')!r})", file=sys.stderr)
    print(render_report(doc, top=args.top))
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as f:
        elf = ElfFile.read(f.read())
    program = load_executable(elf, KAHRISMA)
    text = elf.section(".text")
    from .targetgen.optable import build_target

    target = build_target(KAHRISMA)
    optable = target.optable(elf.flags)
    start = args.start if args.start is not None else text.addr
    end = args.end if args.end is not None else text.addr + len(text.data)
    for line in disassemble_range(optable, program.state.mem, start, end):
        print(line)
    return 0


def cmd_ilp(args: argparse.Namespace) -> int:
    source = _read_source(args.input)
    built = build(source, isa="risc", filename=args.input)
    attributor = profile_functions(built)
    print(f"total: {attributor.model.ops} ops, {attributor.cycles} cycles, "
          f"ILP {attributor.model.ops_per_cycle:.3f}")
    print(f"{'function':<24} {'calls':>7} {'ops':>9} {'cycles':>9} {'ILP':>6}")
    for profile in attributor.sorted_profiles():
        if profile.instructions == 0:
            continue
        print(f"{profile.name:<24} {profile.calls:>7} {profile.ops:>9} "
              f"{profile.cycles:>9} {profile.ilp:>6.2f}")
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    source = _read_source(args.input)
    widths = tuple(int(w) for w in args.widths.split(","))
    report = select_isas(source, widths=widths, filename=args.input)
    print(report.format())
    print()
    pairs = ",".join(f"{fn}={isa}" for fn, isa in report.isa_map.items())
    print(f"isa_map: --mixed '{pairs}'")
    return 0


def cmd_targetgen(args: argparse.Namespace) -> int:
    if args.emit_sim:
        write_simulator_module(KAHRISMA, args.emit_sim)
        print(f"wrote {args.emit_sim}")
    if args.emit_stubs:
        with open(args.emit_stubs, "w", encoding="utf-8") as f:
            f.write(generate_libc_stubs(KAHRISMA))
        print(f"wrote {args.emit_stubs}")
    if args.emit_doc:
        write_isa_reference(KAHRISMA, args.emit_doc)
        print(f"wrote {args.emit_doc}")
    if not args.emit_sim and not args.emit_stubs and not args.emit_doc:
        print("nothing to do: pass --emit-sim, --emit-stubs and/or "
              "--emit-doc")
    return 0


def cmd_trace_diff(args: argparse.Namespace) -> int:
    from .sim.tracecheck import (
        diff_architectural_effects,
        diff_traces,
        parse_trace_file,
    )

    with open(args.left, "r", encoding="utf-8") as f:
        left = parse_trace_file(f.read())
    with open(args.right, "r", encoding="utf-8") as f:
        right = parse_trace_file(f.read())
    if args.effects_only:
        mismatch = diff_architectural_effects(left, right)
    else:
        mismatch = diff_traces(left, right, compare_cycles=args.cycles)
    if mismatch is None:
        print(f"traces agree ({len(left)} records)")
        return 0
    print(mismatch.format())
    return 1


def cmd_programs(_args: argparse.Namespace) -> int:
    for name, description in PROGRAMS.items():
        print(f"{name:<10} {description}")
    return 0


def _parse_tenant_limits(specs):
    """``name=running:queued`` flags -> {name: TenantLimits}."""
    from .serve import TenantLimits

    tenants = {}
    for spec in specs or ():
        name, sep, limits = spec.partition("=")
        running, _, queued = limits.partition(":")
        try:
            if not sep or not name:
                raise ValueError
            tenants[name] = TenantLimits(
                max_running=int(running),
                max_queued=int(queued) if queued else 256,
            )
        except ValueError:
            raise SystemExit(
                f"--tenant expects name=max_running[:max_queued], "
                f"got {spec!r}"
            )
    return tenants


def cmd_serve(args: argparse.Namespace) -> int:
    """``kahrisma serve``: run the simulation-as-a-service HTTP server.

    Job submission, scheduling, live event relay and metrics — see
    docs/serving.md.  Blocks until interrupted.
    """
    import asyncio

    from .serve import KahrismaServer, ServerConfig

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        tenant_max_running=args.tenant_max_running,
        tenant_max_queued=args.tenant_max_queued,
        max_depth=args.max_depth,
        tenants=_parse_tenant_limits(args.tenant),
        checkpoint_dir=args.checkpoint_dir,
        plan_cache_dir=args.plan_cache_dir,
        use_plan_cache=not args.no_plan_cache,
    )
    server = KahrismaServer(config)

    async def main() -> None:
        await server.start()
        host, port = server.address
        print(
            f"kahrisma serve: http://{host}:{port}  "
            f"({config.workers} workers, checkpoints in "
            f"{config.checkpoint_dir})",
            file=sys.stderr, flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("kahrisma serve: shutting down", file=sys.stderr)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """``kahrisma submit``: run a program on a ``kahrisma serve`` server."""
    import json

    from .serve.client import KahrismaClient, ServeError
    from .telemetry.stream import LiveProgress

    spec: Dict[str, object] = {
        "isa": args.isa,
        "engine": args.engine,
        "model": args.model,
        "branch_predictor": args.branch_predictor,
        "branch_penalty": args.branch_penalty,
        "max_instructions": args.max_instructions,
        "tenant": args.tenant,
        "priority": args.priority,
        "heartbeat_every": args.heartbeat,
        "checkpoint_on_cancel": not args.no_cancel_checkpoint,
    }
    if args.input in PROGRAMS:
        spec["program"] = args.input
    else:
        spec["source"] = _read_source(args.input)
        spec["label"] = args.input
    isa_map = _parse_isa_map(args.mixed)
    if isa_map:
        spec["isa_map"] = isa_map
    if args.resume:
        spec["resume_from"] = args.resume
    if args.sample:
        spec["sampling"] = args.sample
    client = KahrismaClient(args.server)
    try:
        job = client.submit(spec)
        job_id = str(job["id"])
        # Same stdout discipline as `kahrisma run`: `--events -` makes
        # stdout the NDJSON channel, everything human moves to stderr.
        events_to_stdout = args.events == "-"
        out = sys.stderr if events_to_stdout else sys.stdout
        print(f"submitted {job_id} ({job['state']}) to {args.server}",
              file=sys.stderr)
        if args.no_wait:
            print(job_id, file=out)
            return 0
        if args.events or args.follow:
            sink = None
            if args.events:
                sink = (sys.stdout if events_to_stdout
                        else open(args.events, "w", encoding="utf-8"))
            live = LiveProgress(sys.stderr, label=job_id) \
                if args.follow else None
            try:
                for event in client.events(job_id):
                    if sink is not None:
                        sink.write(
                            json.dumps(event, sort_keys=True) + "\n"
                        )
                        sink.flush()
                    if live is not None:
                        live(event)
            finally:
                if live is not None:
                    live.close()
                if sink is not None and sink is not sys.stdout:
                    sink.close()
        result = client.wait(job_id, timeout=args.timeout)
    except ServeError as exc:
        raise SystemExit(f"kahrisma submit: {exc}")
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True), file=out)
        return 0 if result["state"] == "done" else 1
    state = result["state"]
    if result.get("output"):
        out.write(str(result["output"]))
    print("---", file=out)
    print(f"job:          {job_id} ({state})", file=out)
    if result.get("error"):
        print(f"error:        {result['error']}", file=out)
    if result.get("instructions") is not None:
        print(f"instructions: {result['instructions']}", file=out)
    if result.get("exit_code") is not None:
        print(f"exit code:    {result['exit_code']}", file=out)
    if result.get("cycles") is not None:
        print(f"cycles:       {result['cycles']}", file=out)
    if result.get("cycles_estimated") is not None:
        ci = result.get("cycles_ci95")
        ci_text = f" +/- {ci:.0f} (95% CI)" if ci is not None else ""
        print(f"cycles (est): {result['cycles_estimated']}{ci_text}",
              file=out)
    if result.get("mips") is not None:
        print(f"mips:         {result['mips']}", file=out)
    if result.get("checkpoint"):
        print(f"checkpoint:   {result['checkpoint']} (resumable)",
              file=out)
    if state == "failed" and result.get("flight"):
        print(result["flight"], file=sys.stderr)
    if state != "done":
        return 1
    return int(result.get("exit_code") or 0)


def cmd_fuzz(args) -> int:
    from .fuzz import (
        GenConfig,
        assemble_fuzz,
        default_matrix,
        generate_program,
        load_corpus,
        replay_entry,
        run_differential,
        save_reproducer,
        shrink,
    )
    from .fuzz.runner import SELF_TEST_VICTIM, self_test
    from .telemetry import format_forensics

    engines = tuple(e for e in args.engines.split(",") if e)
    for engine in engines:
        if engine not in ENGINES:
            print(f"error: unknown engine {engine!r}", file=sys.stderr)
            return 2
    models = tuple(m for m in args.models.split(",") if m)
    if "rtl" in models:
        # The RTL pipeline is a clocked reference model, several orders
        # of magnitude slower than the fuzz budget assumes; a matrix
        # cell with it would time out and read as a divergence.
        print("error: the fuzz matrix does not support --models rtl "
              "(the clocked RTL reference is too slow for the "
              "differential budget; use `kahrisma run --model rtl` "
              "on a reproducer instead)", file=sys.stderr)
        return 2
    configs = default_matrix(engines, models)
    max_instructions = args.max_instructions

    def report(result) -> None:
        for div in result.divergences:
            print(
                f"DIVERGENCE [{div.kind}] {div.config.label} vs "
                f"{div.reference.label}: {div.detail}",
                file=sys.stderr,
            )
            if div.forensics is not None:
                print(format_forensics(div.forensics), file=sys.stderr)

    def minimize(program, divergence, *, inject=None, inject_into=None):
        # The shrinker's hot loop re-runs every candidate, so it uses
        # only the two configurations that disagree (reference vs
        # divergent cell) and skips lockstep escalation.
        pair = [divergence.reference, divergence.config]

        def still_fails(candidate) -> bool:
            built = assemble_fuzz(candidate.render())
            return not run_differential(
                built, pair, max_instructions=max_instructions,
                inject=inject, inject_into=inject_into, escalate=False,
            ).ok

        return shrink(program, still_fails,
                      max_attempts=args.shrink_attempts)

    if args.replay is not None:
        entries = load_corpus(args.replay)
        if not entries:
            print(f"fuzz: no corpus entries under {args.replay}")
            return 0
        failed = 0
        for entry in entries:
            result = replay_entry(entry, configs,
                                  max_instructions=max_instructions)
            print(f"{entry['path']}: "
                  f"{'ok' if result.ok else 'DIVERGED'}")
            if not result.ok:
                failed += 1
                report(result)
        print(f"fuzz: replayed {len(entries)} corpus entries x "
              f"{len(configs)} configs, {failed} divergence(s)")
        return 1 if failed else 0

    if args.self_test:
        program = generate_program(args.seed, GenConfig(smc=True))
        built = assemble_fuzz(program.render())
        try:
            inject, result = self_test(
                built, configs, max_instructions=max_instructions)
        except RuntimeError as exc:
            print(f"fuzz self-test FAILED: {exc}", file=sys.stderr)
            return 1
        div = result.divergences[0]
        print(f"fuzz self-test: injected {inject} into "
              f"{SELF_TEST_VICTIM}; caught "
              f"{len(result.divergences)} divergence(s)")
        report(result)
        small = minimize(program, div, inject=inject,
                         inject_into=SELF_TEST_VICTIM)
        before = len(program.render().splitlines())
        after = len(small.render().splitlines())
        print(f"fuzz self-test: shrunk reproducer {before} -> "
              f"{after} asm lines")
        if div.first_divergent_pc is not None:
            print("fuzz self-test: forensics localized first "
                  f"divergent pc {div.first_divergent_pc:#x}")
        print("fuzz self-test: PASS (the rig trips on an injected "
              "fault)")
        return 0

    smc_every = args.smc_every
    ran = 0
    failures = 0
    for i in range(args.count):
        seed = args.seed + i
        smc = bool(smc_every) and i % smc_every == smc_every - 1
        program = generate_program(
            seed, GenConfig(segments=args.segments, smc=smc))
        built = assemble_fuzz(program.render(), name=f"<fuzz seed {seed}>")
        result = run_differential(built, configs,
                                  max_instructions=max_instructions)
        ran += 1
        features = "+".join(program.features) or "straight-line"
        if result.ok:
            if args.verbose or (i + 1) % 25 == 0 or i + 1 == args.count:
                print(f"[{i + 1}/{args.count}] seed={seed} ok "
                      f"({features}); {failures} divergence(s) so far")
            continue
        failures += 1
        print(f"[{i + 1}/{args.count}] seed={seed} DIVERGED "
              f"({features})", file=sys.stderr)
        report(result)
        div = result.divergences[0]
        small = minimize(program, div)
        doc = {"kind": div.kind, "config": div.config.label,
               "reference": div.reference.label, "detail": div.detail}
        if div.first_divergent_pc is not None:
            doc["first_divergent_pc"] = div.first_divergent_pc
        path = save_reproducer(
            args.save_failures, small,
            note=f"found by kahrisma fuzz --seed {args.seed} "
                 f"(program seed {seed})",
            divergence=doc,
        )
        print(f"reproducer written: {path} "
              f"({len(small.render().splitlines())} asm lines)",
              file=sys.stderr)
        if not args.keep_going:
            break
    print(f"fuzz: {ran} programs x {len(configs)} configs, "
          f"{failures} divergence(s)")
    return 1 if failures else 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="kahrisma",
        description="Cycle-approximate, mixed-ISA simulator framework "
                    "for the KAHRISMA architecture",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "compile",
        help="compile KC source to an executable, or ahead-of-time "
             "translate an executable for `run --engine aot`",
    )
    p.add_argument("input",
                   help="KC source file, bundled program name, or an "
                        "ELF executable (AOT whole-program translation)")
    p.add_argument("-o", "--output", default="a.elf")
    p.add_argument("--isa", default="risc",
                   choices=["risc", "vliw2", "vliw4", "vliw6", "vliw8"])
    p.add_argument("--mixed", help="per-function ISA map: fn=isa,fn=isa,...")
    p.add_argument("--emit-asm", help="also write the assembly file")
    p.add_argument("--models", default="none,aie,doe",
                   help="ELF input: cycle-model namespaces to translate "
                        "(comma list of none/aie/doe; default all three)")
    p.add_argument("--plan-cache-dir", metavar="DIR",
                   help="ELF input: plan-cache directory (default: "
                        "$KAHRISMA_CACHE_DIR or ~/.cache/kahrisma)")
    p.add_argument("--plan-cache-limit", type=int, metavar="N",
                   help="ELF input: LRU cap on per-plan cache entries")
    p.add_argument("--max-block-len", type=int, metavar="N",
                   help="ELF input: superblock instruction cap "
                        "(default 64; folded into the plan-cache key)")
    p.add_argument("--profile-budget", type=int, default=1_000_000,
                   metavar="N",
                   help="ELF input: instructions of profile-guided "
                        "replay seeding discovery (0 disables)")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("asm", help="assemble + link an assembly file")
    p.add_argument("input")
    p.add_argument("-o", "--output", default="a.elf")
    p.add_argument("--entry", default="$risc$main")
    p.add_argument("--entry-isa", type=int, default=0)
    p.set_defaults(func=cmd_asm)

    p = sub.add_parser("run", help="simulate an executable")
    p.add_argument("input")
    p.add_argument("--model", choices=["none", "ilp", "aie", "doe", "rtl"],
                   default="none")
    p.add_argument("--isa", type=int, default=None,
                   help="override the initial ISA id")
    p.add_argument("--trace", help="write a trace file")
    p.add_argument("--engine",
                   choices=["nocache", "cache", "predict", "superblock",
                            "aot"],
                   default="superblock",
                   help="execution engine (aot dispatches a whole-program "
                        "ahead-of-time module — see `kahrisma compile "
                        "<elf>`; tracing falls back to the featureful "
                        "loop)")
    p.add_argument("--max-instructions", type=int, default=100_000_000)
    p.add_argument("--metrics", metavar="PATH",
                   help="write the telemetry metrics/report JSON")
    p.add_argument("--profile", action="store_true",
                   help="attribute instructions/cycles/misses to guest "
                        "functions (prints a hot-spot table)")
    p.add_argument("--profile-mode",
                   choices=["auto", "exact", "block"], default="auto",
                   help="exact counts every PC (featureful loop); block "
                        "keeps the superblock fast path (default: auto)")
    p.add_argument("--timeline", metavar="PATH",
                   help="write a Chrome trace_event timeline (one track "
                        "per VLIW slot; open in Perfetto). Needs --model")
    p.add_argument("--timeline-events", type=int, default=1_000_000,
                   help="cap on buffered timeline events (default 1e6)")
    p.add_argument("--top", type=int, default=10,
                   help="rows in the --profile hot-spot table")
    p.add_argument("--branch-predictor",
                   choices=["perfect", "not-taken", "bimodal", "gshare"],
                   default="perfect",
                   help="branch misprediction extension (aie/doe/rtl)")
    p.add_argument("--branch-penalty", type=int, default=3)
    p.add_argument("--checkpoint-every", type=int, metavar="N",
                   help="write a checkpoint every N executed "
                        "instructions (docs/checkpointing.md)")
    p.add_argument("--checkpoint-dir", default="checkpoints",
                   help="directory for --checkpoint-every files "
                        "(default: checkpoints/)")
    p.add_argument("--resume", metavar="PATH",
                   help="resume from a checkpoint file instead of the "
                        "ELF entry point (stats cover the whole run)")
    p.add_argument("--no-plan-cache", action="store_true",
                   help="do not persist superblock translations across "
                        "runs (docs/performance.md)")
    p.add_argument("--plan-cache-dir", metavar="DIR",
                   help="plan-cache directory (default: "
                        "$KAHRISMA_CACHE_DIR or ~/.cache/kahrisma)")
    p.add_argument("--plan-cache-limit", type=int, metavar="N",
                   help="LRU cap on per-plan cache entries "
                        "(docs/performance.md)")
    p.add_argument("--max-block-len", type=int, metavar="N",
                   help="superblock instruction cap (default 64; folded "
                        "into the plan-cache key)")
    p.add_argument("--no-cycle-fusion", action="store_true",
                   help="keep AIE/DOE accounting on the per-instruction "
                        "observe path instead of compiling it into "
                        "translated superblocks")
    p.add_argument("--sample", metavar="U:k[:W[:seed]]",
                   help="statistical sampling tier: fast-forward "
                        "functionally and run the detailed cycle model "
                        "(aie/doe) on every k-th interval of U "
                        "instructions, warming caches/predictors for W "
                        "instructions first; reports an extrapolated "
                        "cycle estimate with a 95%% CI "
                        "(docs/performance.md)")
    p.add_argument("--events", metavar="PATH",
                   help="stream NDJSON run events (run-start, periodic "
                        "heartbeats, syscalls, ISA switches, SMC, "
                        "checkpoints, run-end) to PATH, or '-' for "
                        "stdout (the summary and program output move "
                        "to stderr)")
    p.add_argument("--heartbeat", type=int, default=250_000, metavar="N",
                   help="heartbeat cadence in executed instructions "
                        "(default 250000)")
    p.add_argument("--live", action="store_true",
                   help="rewrite a one-line progress bar on stderr from "
                        "the heartbeat events")
    p.add_argument("--prom", metavar="PATH",
                   help="keep a Prometheus text-exposition snapshot of "
                        "the run metrics at PATH (atomically refreshed "
                        "per heartbeat)")
    p.add_argument("--flight", metavar="PATH",
                   help="write the flight-recorder ring buffer as JSON "
                        "(always written on trap; also arms recording "
                        "on the interactive engines)")
    p.add_argument("--flight-size", type=int, default=512, metavar="N",
                   help="flight-recorder ring capacity in blocks "
                        "(default 512)")
    p.add_argument("--no-flight", action="store_true",
                   help="disable the flight recorder (default-armed on "
                        "the superblock/aot engines)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "parallel",
        help="shard a program over worker processes (checkpoint "
             "fast-forward + parallel cycle-model simulation)",
    )
    p.add_argument("input", help="KC source file or bundled program name")
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--model", choices=["none", "ilp", "aie", "doe", "rtl"],
                   default="doe",
                   help="cycle model each shard worker runs (default doe)")
    p.add_argument("--isa", default="risc",
                   choices=["risc", "vliw2", "vliw4", "vliw6", "vliw8"])
    p.add_argument("--mixed", help="per-function ISA map: fn=isa,fn=isa,...")
    p.add_argument("--engine",
                   choices=["nocache", "cache", "predict", "superblock"],
                   default="superblock")
    p.add_argument("--branch-predictor",
                   choices=["perfect", "not-taken", "bimodal", "gshare"],
                   default="perfect")
    p.add_argument("--branch-penalty", type=int, default=3)
    p.add_argument("--max-instructions", type=int, default=100_000_000)
    p.add_argument("--checkpoint-dir",
                   help="keep shard checkpoints here (default: a "
                        "temporary directory, removed afterwards)")
    p.add_argument("--keep-checkpoints", action="store_true",
                   help="do not delete the temporary checkpoint dir")
    p.add_argument("--processes", type=int, default=None,
                   help="worker process cap (default: one per shard, "
                        "at most the CPU count)")
    p.add_argument("--no-plan-cache", action="store_true",
                   help="workers translate their own superblocks "
                        "instead of sharing the persistent plan cache")
    p.add_argument("--plan-cache-dir", metavar="DIR",
                   help="plan-cache directory shared by the workers")
    p.add_argument("--metrics", metavar="PATH",
                   help="write the merged telemetry JSON")
    p.add_argument("--sample", metavar="U:k[:W[:seed]]",
                   help="per-shard statistical sampling (aie/doe): each "
                        "shard samples its own segment with seed+index, "
                        "estimates add, CI widths combine in quadrature")
    p.add_argument("--events", metavar="PATH",
                   help="stream NDJSON run events to PATH ('-' for "
                        "stdout); worker events arrive shard-tagged "
                        "after the merge")
    p.add_argument("--heartbeat", type=int, default=250_000, metavar="N",
                   help="per-shard heartbeat cadence in executed "
                        "instructions (default 250000)")
    p.set_defaults(func=cmd_parallel)

    p = sub.add_parser("report",
                       help="render a telemetry JSON as tables")
    p.add_argument("metrics",
                   help="report written by `kahrisma run --metrics`")
    p.add_argument("--top", type=int, default=10,
                   help="rows per hot-spot table (default 10)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("disasm", help="disassemble an executable")
    p.add_argument("input")
    p.add_argument("--start", type=lambda v: int(v, 0), default=None)
    p.add_argument("--end", type=lambda v: int(v, 0), default=None)
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("ilp", help="per-function theoretical ILP report")
    p.add_argument("input")
    p.set_defaults(func=cmd_ilp)

    p = sub.add_parser("select", help="ILP-indicator ISA selection")
    p.add_argument("input")
    p.add_argument("--widths", default="1,2,4,6,8")
    p.set_defaults(func=cmd_select)

    p = sub.add_parser("targetgen",
                       help="emit generated simulator fragments")
    p.add_argument("--emit-sim", help="write the simulator module")
    p.add_argument("--emit-stubs", help="write the libc stub assembly")
    p.add_argument("--emit-doc", help="write the Markdown ISA reference")
    p.set_defaults(func=cmd_targetgen)

    p = sub.add_parser("trace-diff",
                       help="compare two trace files (ISA validation)")
    p.add_argument("left")
    p.add_argument("right")
    p.add_argument("--effects-only", action="store_true",
                   help="compare only the memory-store sequences")
    p.add_argument("--cycles", action="store_true",
                   help="require identical cycle numbers too")
    p.set_defaults(func=cmd_trace_diff)

    p = sub.add_parser(
        "fuzz",
        help="cross-engine differential fuzzing of generated guest "
             "programs (docs/validation.md)",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; program i uses seed+i (default 0)")
    p.add_argument("--count", type=int, default=50,
                   help="number of programs to generate (default 50)")
    p.add_argument("--segments", type=int, default=10,
                   help="body segments per generated program "
                        "(default 10)")
    p.add_argument("--smc-every", type=int, default=5, metavar="N",
                   help="every Nth program includes self-modifying "
                        "code (0 disables; default 5)")
    p.add_argument("--engines", default=",".join(ENGINES),
                   help="comma list of engines to cross-check "
                        f"(default {','.join(ENGINES)})")
    p.add_argument("--models", default="ilp,aie,doe",
                   help="comma list of cycle models (default "
                        "ilp,aie,doe; empty string = architectural "
                        "state only)")
    p.add_argument("--max-instructions", type=int, default=2_000_000,
                   help="per-configuration execution budget; hitting "
                        "it is itself a divergence (default 2000000)")
    p.add_argument("--save-failures", default="tests/corpus",
                   metavar="DIR",
                   help="where shrunk reproducers are written "
                        "(default tests/corpus)")
    p.add_argument("--shrink-attempts", type=int, default=120,
                   metavar="N",
                   help="candidate-evaluation budget of the shrinker "
                        "(default 120)")
    p.add_argument("--keep-going", action="store_true",
                   help="continue fuzzing after a divergence instead "
                        "of stopping at the first failure")
    p.add_argument("--replay", metavar="DIR",
                   help="replay corpus entries from DIR over the "
                        "matrix instead of generating programs")
    p.add_argument("--self-test", action="store_true",
                   help="inject a register fault into one "
                        "configuration and verify the rig catches, "
                        "localizes and shrinks it")
    p.add_argument("--verbose", action="store_true",
                   help="print one line per generated program")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP server "
             "(docs/serving.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321,
                   help="TCP port (0 picks a free port; default 8321)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes executing jobs (default 2)")
    p.add_argument("--tenant-max-running", type=int, default=2,
                   metavar="N",
                   help="default per-tenant concurrent-job cap "
                        "(default 2)")
    p.add_argument("--tenant-max-queued", type=int, default=256,
                   metavar="N",
                   help="default per-tenant queue-depth cap "
                        "(default 256)")
    p.add_argument("--max-depth", type=int, default=10_000, metavar="N",
                   help="global queue-depth cap across tenants "
                        "(default 10000)")
    p.add_argument("--tenant", action="append", metavar="NAME=R[:Q]",
                   help="per-tenant override: max_running and optional "
                        "max_queued (repeatable)")
    p.add_argument("--checkpoint-dir", default="serve-checkpoints",
                   help="where cancelled jobs drop resumable "
                        "checkpoints (default: serve-checkpoints/)")
    p.add_argument("--plan-cache-dir", metavar="DIR",
                   help="plan-cache directory shared by all workers "
                        "(default: $KAHRISMA_CACHE_DIR or "
                        "~/.cache/kahrisma)")
    p.add_argument("--no-plan-cache", action="store_true",
                   help="workers translate superblocks per job instead "
                        "of sharing the persistent plan cache")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a program to a running `kahrisma serve` server",
    )
    p.add_argument("input", help="KC source file or bundled program name")
    p.add_argument("--server", default="http://127.0.0.1:8321",
                   help="server base URL (default http://127.0.0.1:8321)")
    p.add_argument("--isa", default="risc",
                   choices=["risc", "vliw2", "vliw4", "vliw6", "vliw8"])
    p.add_argument("--mixed", help="per-function ISA map: fn=isa,fn=isa,...")
    p.add_argument("--engine",
                   choices=["nocache", "cache", "predict", "superblock",
                            "aot"],
                   default="superblock")
    p.add_argument("--model", choices=["none", "ilp", "aie", "doe", "rtl"],
                   default="none")
    p.add_argument("--branch-predictor",
                   choices=["perfect", "not-taken", "bimodal", "gshare"],
                   default="perfect")
    p.add_argument("--branch-penalty", type=int, default=3)
    p.add_argument("--max-instructions", type=int, default=100_000_000)
    p.add_argument("--tenant", default="default",
                   help="tenant the job is accounted to (default: "
                        "default)")
    p.add_argument("--priority", type=int, default=10,
                   help="scheduling priority; lower runs sooner "
                        "(default 10)")
    p.add_argument("--heartbeat", type=int, default=250_000, metavar="N",
                   help="heartbeat cadence and cancellation latency in "
                        "executed instructions (default 250000)")
    p.add_argument("--sample", metavar="U:k[:W[:seed]]",
                   help="statistical sampling tier on the server side "
                        "(requires --model aie/doe); the result carries "
                        "cycles_estimated/cycles_ci95")
    p.add_argument("--resume", metavar="PATH",
                   help="resume from a (server-local) checkpoint file — "
                        "e.g. one written by cancelling a previous job")
    p.add_argument("--no-cancel-checkpoint", action="store_true",
                   help="do not write a resumable checkpoint if this "
                        "job is cancelled")
    p.add_argument("--events", metavar="PATH",
                   help="relay the job's live NDJSON events to PATH, or "
                        "'-' for stdout (summary moves to stderr)")
    p.add_argument("--follow", action="store_true",
                   help="rewrite a one-line progress bar on stderr from "
                        "the relayed heartbeats")
    p.add_argument("--no-wait", action="store_true",
                   help="print the job id and exit without waiting")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="seconds to wait for the result (default 300)")
    p.add_argument("--json", action="store_true",
                   help="print the raw result document as JSON")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("programs", help="list bundled benchmark programs")
    p.set_defaults(func=cmd_programs)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
