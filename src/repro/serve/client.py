"""Blocking HTTP client for a running ``kahrisma serve`` instance.

Backs ``kahrisma submit`` and the load bench; usable as a library::

    from repro.serve.client import KahrismaClient

    client = KahrismaClient("http://127.0.0.1:8321")
    job = client.submit({"program": "dct4x4", "engine": "superblock"})
    result = client.wait(job["id"])
    print(result["output"])

``http.client`` only (stdlib rule) — one connection per call, matching
the server's ``Connection: close`` responses.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Callable, Dict, Iterator, Optional
from urllib.parse import urlencode, urlsplit


class ServeError(Exception):
    """An HTTP-level failure talking to the server.

    ``status`` is the HTTP status code (0 when the connection itself
    failed); the message carries the server's ``error`` field.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class KahrismaClient:
    """Thin blocking wrapper over the serve HTTP API."""

    def __init__(self, base_url: str, *, timeout: float = 300.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parts.scheme!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8321
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------

    def _connect(self, timeout: Optional[float] = None):
        return http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout,
        )

    def _request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[dict] = None,
        query: Optional[Dict[str, object]] = None,
        timeout: Optional[float] = None,
    ) -> dict:
        if query:
            path = f"{path}?{urlencode(query)}"
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        conn = self._connect(timeout)
        try:
            conn.request(
                method, path, body=payload,
                headers={"Content-Type": "application/json"}
                if payload else {},
            )
            response = conn.getresponse()
            text = response.read().decode("utf-8", errors="replace")
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(
                0, f"cannot reach {self.host}:{self.port}: {exc}"
            )
        finally:
            conn.close()
        try:
            doc = json.loads(text) if text else {}
        except ValueError:
            doc = {"error": text.strip()}
        if response.status >= 400:
            raise ServeError(
                response.status,
                str(doc.get("error", f"HTTP {response.status}")),
            )
        return doc

    # -- API ----------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        """Raw Prometheus text from ``/metrics``."""
        conn = self._connect()
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            text = response.read().decode("utf-8", errors="replace")
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(
                0, f"cannot reach {self.host}:{self.port}: {exc}"
            )
        finally:
            conn.close()
        if response.status != 200:
            raise ServeError(response.status, text.strip())
        return text

    def submit(self, spec: dict) -> dict:
        """POST /jobs; returns ``{"id": ..., "state": "queued"}``."""
        return self._request("POST", "/jobs", body=spec)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self, tenant: Optional[str] = None) -> list:
        query = {"tenant": tenant} if tenant else None
        return self._request("GET", "/jobs", query=query)["jobs"]

    def result(self, job_id: str) -> dict:
        """Result of a terminal job (409 via ServeError otherwise)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def wait(self, job_id: str, *, timeout: float = 300.0) -> dict:
        """Block until the job is terminal; returns the result doc.

        Server-side wait (``?wait=1``) so there is no polling loop;
        retries while the deadline allows if the server's own wait
        window (capped per request) expires first.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(408, f"job {job_id} not terminal "
                                      f"after {timeout}s")
            window = min(remaining, 60.0)
            try:
                return self._request(
                    "GET", f"/jobs/{job_id}/result",
                    query={"wait": 1, "timeout": round(window, 3)},
                    timeout=window + 30.0,
                )
            except ServeError as exc:
                if exc.status != 408:
                    raise

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def events(
        self,
        job_id: str,
        *,
        on_event: Optional[Callable[[dict], None]] = None,
        timeout: Optional[float] = None,
    ) -> Iterator[dict]:
        """Stream the job's live NDJSON events as dicts.

        Yields every relayed event until the server closes the stream
        (job terminal).  ``on_event`` is additionally invoked per
        event when given (convenient for progress rendering while
        still collecting the list).
        """
        conn = self._connect(timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                text = response.read().decode("utf-8", errors="replace")
                try:
                    doc = json.loads(text)
                except ValueError:
                    doc = {"error": text.strip()}
                raise ServeError(
                    response.status, str(doc.get("error", text))
                )
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if not line.strip():
                        continue
                    event = json.loads(line.decode("utf-8"))
                    if on_event is not None:
                        on_event(event)
                    yield event
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(
                0, f"event stream from {self.host}:{self.port} "
                   f"failed: {exc}"
            )
        finally:
            conn.close()
