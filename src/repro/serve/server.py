"""Asyncio HTTP front end of ``kahrisma serve``.

Single-loop design: all job state (the scheduler, the job table, the
per-job watcher queues) is touched only from the asyncio event loop
thread.  Worker processes talk back over one multiprocessing queue; a
pump thread bridges it onto the loop with ``call_soon_threadsafe``, so
no lock protects the job table — the loop serializes everything.

The HTTP layer is a minimal hand-rolled HTTP/1.1 on asyncio streams
(stdlib-only rule): every response carries ``Connection: close``, and
the live event relay (``GET /jobs/<id>/events``) is close-delimited
NDJSON — buffered replay first, then live events as they arrive, until
the job reaches a terminal state.

Routes (see ``docs/serving.md`` for the full API reference)::

    GET  /healthz                liveness + pool/queue gauges
    GET  /metrics                Prometheus text exposition
    POST /jobs                   submit a JobSpec document
    GET  /jobs[?tenant=T]        list known jobs (newest first)
    GET  /jobs/<id>              status document
    GET  /jobs/<id>/result       result document (``?wait=1`` blocks)
    POST /jobs/<id>/cancel       cancel queued or running
    GET  /jobs/<id>/events       NDJSON live event relay
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional
from urllib.parse import parse_qs, urlsplit

from .protocol import Job, JobSpec, SpecError, job_id_new
from .scheduler import QueueFull, Scheduler, TenantLimits
from .workers import WorkerPool

#: Submitted request bodies beyond this are rejected (413).
BODY_LIMIT = 4 * 1024 * 1024

#: Header-section caps: more than this many header lines, or more
#: than this many header bytes total, is rejected with 431.
MAX_HEADERS = 100
HEADER_LIMIT = 32 * 1024

#: How often the reaper sweeps the pool for dead worker processes.
REAP_INTERVAL = 0.5

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Raised by handlers to produce a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class ServerConfig:
    """Everything ``kahrisma serve`` exposes as flags."""

    host: str = "127.0.0.1"
    #: TCP port; 0 picks a free port (tests, load bench).
    port: int = 8321
    #: Worker process count (also the global running-job ceiling).
    workers: int = 2
    #: Default per-tenant limits; per-tenant overrides via ``tenants``.
    tenant_max_running: int = 2
    tenant_max_queued: int = 256
    #: Global queue-depth cap across all tenants.
    max_depth: int = 10_000
    #: Named per-tenant overrides (tenant -> TenantLimits).
    tenants: Dict[str, TenantLimits] = field(default_factory=dict)
    #: Where cancelled jobs drop resumable checkpoints.
    checkpoint_dir: str = "serve-checkpoints"
    #: Plan-cache directory shared by all workers (None = default).
    plan_cache_dir: Optional[str] = None
    use_plan_cache: bool = True
    #: Live events buffered per job for late /events subscribers.
    event_buffer: int = 4096
    #: Terminal jobs retained for status/result queries (LRU evicted).
    jobs_kept: int = 1000


class KahrismaServer:
    """The serve subsystem wired together: scheduler + pool + HTTP."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.scheduler = Scheduler(
            limits=TenantLimits(
                max_running=self.config.tenant_max_running,
                max_queued=self.config.tenant_max_queued,
            ),
            per_tenant=self.config.tenants,
            max_depth=self.config.max_depth,
        )
        self.jobs: Dict[str, Job] = {}
        self.pool: Optional[WorkerPool] = None
        self.started_at = time.time()
        #: Bound address after :meth:`start` (resolves port=0).
        self.address: Optional[tuple] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pump: Optional[threading.Thread] = None
        self._pump_stop = threading.Event()
        #: job id -> asyncio.Event set when the job turns terminal.
        self._done_events: Dict[str, asyncio.Event] = {}
        #: job id -> live /events subscriber queues.
        self._watchers: Dict[str, List[asyncio.Queue]] = {}
        #: jobs in terminal order, for retention eviction.
        self._terminal_order: List[str] = []
        self._reaper: Optional[asyncio.Task] = None
        # -- serve.* counters --
        self.http_requests = 0
        self.http_errors = 0
        #: Requests rejected before routing: unparseable framing
        #: (e.g. malformed Content-Length -> 400) and header-cap
        #: rejects (-> 431).
        self.http_bad_requests = 0
        self.http_header_rejects = 0
        self.workers_died = 0
        self.workers_respawned = 0
        self.jobs_by_state = {
            "done": 0, "cancelled": 0, "failed": 0,
        }
        self.events_relayed = 0
        self.events_dropped = 0
        self.workers_ready = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, spawn workers, start the pump thread."""
        self._loop = asyncio.get_running_loop()
        self.pool = WorkerPool(
            self.config.workers,
            checkpoint_dir=self.config.checkpoint_dir,
            plan_cache_dir=self.config.plan_cache_dir,
            use_plan_cache=self.config.use_plan_cache,
        )
        self._pump_stop.clear()
        self._pump = threading.Thread(
            target=self._pump_messages, name="kahrisma-serve-pump",
            daemon=True,
        )
        self._pump.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        self._reaper = self._loop.create_task(self._reap_forever())

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, stop workers, end open event relays."""
        if self._reaper is not None:
            self._reaper.cancel()
            try:
                await self._reaper
            except asyncio.CancelledError:
                pass
            self._reaper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pump_stop.set()
        if self.pool is not None:
            self.pool.shutdown()
            self.pool = None
        if self._pump is not None:
            self._pump.join(timeout=5.0)
            self._pump = None
        for queues in self._watchers.values():
            for queue in queues:
                queue.put_nowait(None)
        self._watchers.clear()

    def _pump_messages(self) -> None:
        """Bridge the worker message queue onto the event loop."""
        assert self.pool is not None and self._loop is not None
        messages = self.pool.messages
        while not self._pump_stop.is_set():
            try:
                msg = messages.get(timeout=0.2)
            except Exception:
                continue  # timeout or closing queue
            try:
                self._loop.call_soon_threadsafe(self._on_message, msg)
            except RuntimeError:
                break  # loop shut down

    # -- worker messages (loop thread) --------------------------------------

    def _on_message(self, msg: tuple) -> None:
        kind, worker_id, job_id, payload = msg
        if kind == "ready":
            self.workers_ready += 1
            self._schedule()
            return
        job = self.jobs.get(job_id)
        if kind == "event":
            if job is not None and not job.terminal:
                job.events.append(payload)
                if len(job.events) > self.config.event_buffer:
                    del job.events[0]
                    job.events_dropped += 1
                    self.events_dropped += 1
                self.events_relayed += 1
                for queue in self._watchers.get(job_id, ()):
                    queue.put_nowait(payload)
            return
        if kind == "done":
            if self.pool is not None:
                worker = self.pool.worker(worker_id)
                # Only clear if this worker still owns the job: a late
                # message from a reaped worker's queue must not mark a
                # respawned (and possibly re-dispatched) slot idle.
                if worker.job_id == job_id:
                    worker.job_id = None
            if job is not None and not job.terminal:
                job.state = payload.get("state", "failed")
                job.finished_at = time.time()
                job.result = payload
                job.error = payload.get("error")
                job.checkpoint = payload.get("checkpoint")
                self.scheduler.release(job)
                self._finish(job)
            self._schedule()

    def _finish(self, job: Job) -> None:
        """Terminal bookkeeping shared by done/cancelled paths."""
        self.jobs_by_state[job.state] = (
            self.jobs_by_state.get(job.state, 0) + 1
        )
        event = self._done_events.pop(job.id, None)
        if event is not None:
            event.set()
        for queue in self._watchers.pop(job.id, ()):
            queue.put_nowait(None)
        self._terminal_order.append(job.id)
        while len(self._terminal_order) > self.config.jobs_kept:
            evicted = self._terminal_order.pop(0)
            self.jobs.pop(evicted, None)

    async def _reap_forever(self) -> None:
        """Watch for dead worker processes (crash/kill) and recover.

        A worker dying mid-job would otherwise leave that job
        ``running`` forever: no ``done`` message ever arrives, the
        scheduler slot stays acquired, and result waiters block until
        their timeout.  The reaper fails the job, releases the slot,
        respawns the worker, and lets scheduling continue.
        """
        while True:
            await asyncio.sleep(REAP_INTERVAL)
            if self.pool is None:
                continue
            for worker in self.pool.dead_workers():
                self.workers_died += 1
                exitcode = worker.process.exitcode
                job = (
                    self.jobs.get(worker.job_id)
                    if worker.job_id is not None else None
                )
                if job is not None and not job.terminal:
                    job.state = "failed"
                    job.finished_at = time.time()
                    job.error = (
                        f"worker {worker.id} died while running this "
                        f"job (exit code {exitcode})"
                    )
                    job.result = {"state": "failed", "error": job.error}
                    self.scheduler.release(job)
                    self._finish(job)
                self.pool.respawn(worker.id)
                self.workers_respawned += 1
            # Respawned workers announce themselves with "ready",
            # which re-enters _schedule; nothing more to do here.

    def _schedule(self) -> None:
        """Dispatch queued jobs onto idle workers (fairness in acquire)."""
        if self.pool is None:
            return
        while True:
            worker = self.pool.idle_worker()
            if worker is None:
                return
            job = self.scheduler.acquire()
            if job is None:
                return
            job.state = "running"
            job.started_at = time.time()
            job.worker = worker.id
            try:
                worker.dispatch(job.id, job.spec)
            except (OSError, BrokenPipeError, ValueError):
                # Dead pipe: give the slot back (keeping the job first
                # in line) and let the reaper replace the worker.
                worker.job_id = None
                job.state = "queued"
                job.started_at = None
                job.worker = None
                self.scheduler.requeue(job)
                return

    # -- job operations (loop thread) ---------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Validate, admit and (if a worker is idle) dispatch a job."""
        job = Job(id=job_id_new(), spec=spec, submitted_at=time.time())
        self.scheduler.submit(job)  # may raise QueueFull
        self.jobs[job.id] = job
        self._done_events[job.id] = asyncio.Event()
        self._schedule()
        return job

    def cancel(self, job: Job) -> Dict[str, object]:
        """Cancel a queued job immediately or a running one at its
        next budget slice; terminal jobs are left untouched."""
        if job.terminal:
            return {"id": job.id, "state": job.state,
                    "already_terminal": True}
        job.cancel_requested = True
        if job.state == "queued":
            if self.scheduler.remove(job):
                job.state = "cancelled"
                job.finished_at = time.time()
                self._finish(job)
            return {"id": job.id, "state": job.state}
        if self.pool is not None and job.worker is not None:
            # Job-id-aware: the worker only honors this if it is still
            # executing *this* job (stale-cancel race fix).
            self.pool.worker(job.worker).cancel(job.id)
        return {"id": job.id, "state": job.state,
                "cancelling": True}

    def metrics(self) -> Dict[str, object]:
        """Flat ``serve.*`` metric dict for /metrics exposition."""
        out: Dict[str, object] = {
            "serve.uptime_seconds": round(
                time.time() - self.started_at, 3
            ),
            "serve.workers": len(self.pool) if self.pool else 0,
            "serve.workers_ready": self.workers_ready,
            "serve.workers_busy": (
                sum(1 for w in self.pool.workers if w.job_id is not None)
                if self.pool else 0
            ),
            "serve.http.requests": self.http_requests,
            "serve.http.errors": self.http_errors,
            "serve.http.bad_requests": self.http_bad_requests,
            "serve.http.header_rejects": self.http_header_rejects,
            "serve.workers_died": self.workers_died,
            "serve.workers_respawned": self.workers_respawned,
            "serve.jobs.known": len(self.jobs),
            "serve.jobs.done": self.jobs_by_state.get("done", 0),
            "serve.jobs.cancelled": self.jobs_by_state.get("cancelled", 0),
            "serve.jobs.failed": self.jobs_by_state.get("failed", 0),
            "serve.events.relayed": self.events_relayed,
            "serve.events.dropped": self.events_dropped,
        }
        out.update(self.scheduler.metrics())
        return out

    # -- HTTP layer ---------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            self.http_requests += 1
            await self._route(method, path, query, body, writer)
        except _HttpError as exc:
            self.http_errors += 1
            await self._send_json(
                writer, exc.status, {"error": str(exc)}
            )
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        except Exception as exc:  # never kill the accept loop
            self.http_errors += 1
            try:
                await self._send_json(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                )
            except OSError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader):
        try:
            line = await reader.readline()
        except ValueError:
            # StreamReader limit exceeded: a request line longer than
            # the 64 KiB stream buffer.
            self.http_header_rejects += 1
            raise _HttpError(431, "request line too long")
        if not line:
            return None
        try:
            method, target, _version = (
                line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            self.http_bad_requests += 1
            raise _HttpError(400, "malformed request line")
        headers: Dict[str, str] = {}
        header_count = 0
        header_bytes = 0
        while True:
            try:
                raw = await reader.readline()
            except ValueError:
                self.http_header_rejects += 1
                raise _HttpError(431, "header line too long")
            if raw in (b"\r\n", b"\n", b""):
                break
            header_count += 1
            header_bytes += len(raw)
            if header_count > MAX_HEADERS or header_bytes > HEADER_LIMIT:
                self.http_header_rejects += 1
                raise _HttpError(
                    431,
                    f"header section exceeds {MAX_HEADERS} fields / "
                    f"{HEADER_LIMIT} bytes",
                )
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            self.http_bad_requests += 1
            raise _HttpError(
                400, f"malformed Content-Length {raw_length!r}"
            )
        if length < 0:
            self.http_bad_requests += 1
            raise _HttpError(
                400, f"negative Content-Length {raw_length!r}"
            )
        if length > BODY_LIMIT:
            raise _HttpError(413, f"body exceeds {BODY_LIMIT} bytes")
        body = await reader.readexactly(length) if length else b""
        parts = urlsplit(target)
        query = {
            k: v[-1] for k, v in parse_qs(parts.query).items()
        }
        return method.upper(), parts.path, query, body

    async def _send_json(self, writer, status: int, doc) -> None:
        payload = (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        await self._send_raw(
            writer, status, "application/json", payload
        )

    async def _send_raw(
        self, writer, status: int, ctype: str, payload: bytes
    ) -> None:
        reason = _STATUS_TEXT.get(status, "?")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()

    async def _route(self, method, path, query, body, writer) -> None:
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {
                "ok": True,
                "workers": len(self.pool) if self.pool else 0,
                "queued": self.scheduler.depth,
                "running": self.scheduler.running,
            })
            return
        if path == "/metrics" and method == "GET":
            from ..telemetry.stream import prometheus_lines

            text = "\n".join(prometheus_lines(self.metrics())) + "\n"
            await self._send_raw(
                writer, 200, "text/plain; version=0.0.4",
                text.encode("utf-8"),
            )
            return
        if path == "/jobs":
            if method == "POST":
                await self._route_submit(body, writer)
                return
            if method == "GET":
                tenant = query.get("tenant")
                docs = [
                    job.status_doc()
                    for job in self.jobs.values()
                    if tenant is None or job.spec.tenant == tenant
                ]
                docs.sort(
                    key=lambda d: d["submitted_at"], reverse=True
                )
                await self._send_json(writer, 200, {"jobs": docs})
                return
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            job_id, _, action = rest.partition("/")
            job = self.jobs.get(job_id)
            if job is None:
                raise _HttpError(404, f"unknown job {job_id!r}")
            if not action and method == "GET":
                await self._send_json(writer, 200, job.status_doc())
                return
            if action == "result" and method == "GET":
                await self._route_result(job, query, writer)
                return
            if action == "cancel" and method == "POST":
                await self._send_json(writer, 200, self.cancel(job))
                return
            if action == "events" and method == "GET":
                await self._route_events(job, writer)
                return
        raise _HttpError(404, f"no route for {method} {path}")

    async def _route_submit(self, body: bytes, writer) -> None:
        try:
            doc = json.loads(body.decode("utf-8") or "null")
        except ValueError:
            raise _HttpError(400, "body is not valid JSON")
        try:
            spec = JobSpec.from_doc(doc)
        except SpecError as exc:
            raise _HttpError(400, str(exc))
        try:
            job = self.submit(spec)
        except QueueFull as exc:
            raise _HttpError(
                429 if exc.scope == "tenant" else 503, str(exc)
            )
        await self._send_json(writer, 200, {
            "id": job.id,
            "state": job.state,
            "tenant": job.spec.tenant,
            "queued": self.scheduler.queued_for(job.spec.tenant),
        })

    async def _route_result(self, job: Job, query, writer) -> None:
        if not job.terminal and query.get("wait") in ("1", "true"):
            timeout = float(query.get("timeout", "300"))
            event = self._done_events.get(job.id)
            if event is not None:
                try:
                    await asyncio.wait_for(event.wait(), timeout)
                except asyncio.TimeoutError:
                    raise _HttpError(
                        408, f"job {job.id} still {job.state} "
                        f"after {timeout}s"
                    )
        if not job.terminal:
            raise _HttpError(
                409, f"job {job.id} is {job.state}; pass ?wait=1 "
                f"to block until it finishes"
            )
        await self._send_json(writer, 200, job.result_doc())

    async def _route_events(self, job: Job, writer) -> None:
        """NDJSON relay: buffered replay, then live until terminal.

        The relayed lines are the worker's ``kahrisma-events`` v1
        dicts verbatim — the stream a client sees validates against
        :func:`repro.telemetry.stream.validate_stream_text`.
        """
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        queue: Optional[asyncio.Queue] = None
        if not job.terminal:
            queue = asyncio.Queue()
            self._watchers.setdefault(job.id, []).append(queue)
        # Replay after subscribing so no event can fall in the gap;
        # live events already replayed are skipped by seq.
        last_seq = -1
        for event in list(job.events):
            writer.write(
                (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
            )
            last_seq = max(last_seq, int(event.get("seq", -1)))
        await writer.drain()
        if queue is None:
            return
        try:
            while True:
                event = await queue.get()
                if event is None:
                    break
                if int(event.get("seq", -1)) <= last_seq:
                    continue
                writer.write(
                    (json.dumps(event, sort_keys=True) + "\n").encode(
                        "utf-8"
                    )
                )
                await writer.drain()
        finally:
            queues = self._watchers.get(job.id)
            if queues is not None and queue in queues:
                queues.remove(queue)


# -- embedding helpers -------------------------------------------------------


class ServerHandle:
    """A server running on a background thread (tests, load bench).

    ``base_url`` resolves the actual port (``port=0`` supported);
    :meth:`stop` shuts the loop, pool and thread down.
    """

    def __init__(self, server: KahrismaServer, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop) -> None:
        self.server = server
        self.thread = thread
        self.loop = loop

    @property
    def base_url(self) -> str:
        host, port = self.server.address
        return f"http://{host}:{port}"

    def stop(self, timeout: float = 10.0) -> None:
        async def _stop():
            await self.server.stop()
            asyncio.get_running_loop().stop()

        if self.loop.is_running():
            asyncio.run_coroutine_threadsafe(_stop(), self.loop)
        self.thread.join(timeout)


def start_in_thread(
    config: Optional[ServerConfig] = None,
) -> ServerHandle:
    """Start a :class:`KahrismaServer` on a dedicated loop thread.

    Blocks until the socket is bound (so ``base_url`` is immediately
    usable) and raises whatever :meth:`KahrismaServer.start` raised.
    """
    server = KahrismaServer(config)
    ready = threading.Event()
    boot_error: List[BaseException] = []
    loop_box: List[asyncio.AbstractEventLoop] = []

    def main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop_box.append(loop)

        async def boot():
            try:
                await server.start()
            except BaseException as exc:
                boot_error.append(exc)
                raise
            finally:
                ready.set()

        try:
            loop.run_until_complete(boot())
        except BaseException:
            loop.close()
            return
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(
        target=main, name="kahrisma-serve", daemon=True
    )
    thread.start()
    ready.wait(timeout=30.0)
    if boot_error:
        thread.join(timeout=5.0)
        raise boot_error[0]
    if server.address is None:
        raise RuntimeError("server failed to start within 30s")
    return ServerHandle(server, thread, loop_box[0])
