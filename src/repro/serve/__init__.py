"""Simulation-as-a-service: the ``kahrisma serve`` subsystem.

The interactive CLI treats the simulator as a one-shot tool; this
package treats it as a *service* (ROADMAP item 1): a long-lived
asyncio HTTP server that accepts run requests, schedules them onto a
pool of warm worker processes, and streams each job's live
``kahrisma-events`` NDJSON back to clients while it runs.

Layers (one module each, composable without the server)::

    protocol   job specs, lifecycle states, wire documents
    scheduler  priority queue with per-tenant limits + fair pick
    workers    process pool executing jobs via pipeline.run
    server     asyncio HTTP front end (submit/status/result/cancel/
               events/metrics)
    client     blocking HTTP client + `kahrisma submit`

Design constraints inherited from the rest of the repo:

* stdlib only — asyncio streams and a minimal HTTP/1.1 layer instead
  of a web framework;
* every worker shares the persistent plan cache
  (:mod:`repro.sim.plancache`), so a fleet serving the same binaries
  runs warm: zero translations after the first job per program;
* cancellation rides the budget-slicing seam of
  :meth:`repro.sim.interpreter.Interpreter.run` — a cancelled job
  stops at the next slice and can drop a resumable checkpoint;
* live streaming relays each job's schema-v1 event stream verbatim
  (``GET /jobs/<id>/events`` is valid NDJSON end to end).

See ``docs/serving.md`` for the HTTP API and deployment notes.
"""

from .protocol import (  # noqa: F401
    JOB_STATES,
    TERMINAL_STATES,
    JobSpec,
    SpecError,
    job_id_new,
)
from .scheduler import QueueFull, Scheduler, TenantLimits  # noqa: F401
from .server import (  # noqa: F401
    KahrismaServer,
    ServerConfig,
    ServerHandle,
    start_in_thread,
)
from .client import KahrismaClient, ServeError  # noqa: F401

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobSpec",
    "SpecError",
    "job_id_new",
    "QueueFull",
    "Scheduler",
    "TenantLimits",
    "KahrismaServer",
    "ServerConfig",
    "ServerHandle",
    "start_in_thread",
    "KahrismaClient",
    "ServeError",
]
