"""Warm worker processes executing jobs for ``kahrisma serve``.

Each worker is a long-lived process (fork start method when the
platform has one) that keeps two caches hot across jobs:

* a **build cache** — compiled/linked :class:`BuildResult` objects
  keyed by program+ISA configuration, so repeat submissions of the
  same benchmark skip the compiler entirely; and
* the **persistent plan cache** (:mod:`repro.sim.plancache`), opened
  per build inside the worker, so superblock/AOT translations survive
  both across jobs *and* across workers — the whole pool runs warm
  after the first job per program (satellite: the cache file is
  flock-protected, so concurrent worker merges are safe).

Message protocol (worker → server, one shared queue)::

    ("ready", worker_id, None, None)            worker up, accepting jobs
    ("event", worker_id, job_id, event_dict)    one relayed live event
    ("done",  worker_id, job_id, result_dict)   job reached a terminal state

Dispatch (server → worker) goes over a per-worker pipe: a job document
``{"id": ..., "spec": {...}}`` or ``None`` to shut down.  Cancellation
is **job-id-aware**: the server writes the id of the job to cancel
into a small shared-memory cell, and the worker's budget-slice poll
compares it against the id of the job it is *currently* executing.  A
stale cancel (sent for job N after N finished, arriving while job M
runs) can therefore never stop the wrong job — there is no event to
clear and no window in which clearing races dispatch.  The running
job stops at the next slice (at most ``heartbeat_every`` instructions
later) and reports ``state="cancelled"`` with a resumable checkpoint.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Dict, List, Optional, Tuple

from .protocol import JobSpec

#: Guest stdout beyond this many characters is truncated in the result
#: document (the head is kept; a marker records the loss).
OUTPUT_CAP = 65_536

#: Engines with a block-granularity seam where the flight recorder is
#: cheap; interactive engines pay per instruction, so serve skips it.
_FLIGHT_ENGINES = ("superblock", "aot")


def _truncate_output(text: str) -> Tuple[str, bool]:
    if len(text) <= OUTPUT_CAP:
        return text, False
    return text[:OUTPUT_CAP], True


def _build_key(spec: JobSpec) -> tuple:
    isa_map = (
        tuple(sorted(spec.isa_map.items())) if spec.isa_map else None
    )
    if spec.program is not None:
        return ("program", spec.program, spec.isa, isa_map)
    return ("source", hash(spec.source), spec.isa, isa_map)


def execute_job(
    job_id: str,
    spec: JobSpec,
    *,
    cancel=None,
    emit=None,
    build_cache: Optional[Dict[tuple, object]] = None,
    checkpoint_dir: Optional[str] = None,
    plan_cache_dir: Optional[str] = None,
    use_plan_cache: bool = True,
) -> Dict[str, object]:
    """Run one job to a terminal state; never raises.

    ``cancel`` is the zero-argument poll handed to
    :func:`repro.framework.pipeline.run`; ``emit`` receives every live
    event dict as it happens (the relay seam — the server bridges it
    onto the message queue).  Returns the terminal result document
    (``state`` is ``done``/``cancelled``/``failed``).

    Usable without the process pool: tests and ``tools/load_bench.py``
    call it in-process for deterministic single-threaded checks.
    """
    from ..framework import pipeline
    from ..framework.parallel import make_branch_model, make_cycle_model
    from ..programs import load_program
    from ..sim.errors import SimulationError
    from ..telemetry.stream import EventStream

    flight = None
    try:
        key = _build_key(spec)
        built = build_cache.get(key) if build_cache is not None else None
        if built is None:
            source = (
                load_program(spec.program)
                if spec.program is not None else spec.source
            )
            built = pipeline.build(
                source,
                isa=spec.isa,
                isa_map=spec.isa_map,
                filename=(
                    f"{spec.program}.kc" if spec.program else "<submit>"
                ),
            )
            if build_cache is not None:
                build_cache[key] = built
        plan_cache = None
        if use_plan_cache and spec.engine in _FLIGHT_ENGINES:
            plan_cache = pipeline.open_plan_cache(
                built, directory=plan_cache_dir
            )
        branch = make_branch_model(
            spec.branch_predictor, spec.branch_penalty
        )
        model = make_cycle_model(spec.model, built.issue_width, branch)
        events = EventStream(heartbeat_every=spec.heartbeat_every)
        if emit is not None:
            events.subscribe(emit)
        if spec.engine in _FLIGHT_ENGINES:
            from ..telemetry.flight import FlightRecorder

            flight = FlightRecorder()
        result = pipeline.run(
            built,
            cycle_model=model,
            engine=spec.engine,
            max_instructions=spec.max_instructions,
            input_data=spec.input_data.encode("utf-8"),
            resume_from=spec.resume_from,
            workload=spec.workload,
            plan_cache=plan_cache,
            fuse_cycles=spec.fuse_cycles,
            events=events,
            flight=flight,
            collect_metrics=True,
            cancel=cancel,
            cancel_checkpoint_dir=(
                checkpoint_dir if spec.checkpoint_on_cancel else None
            ),
            sampling=spec.sampling,
        )
        if plan_cache is not None:
            plan_cache.save()
        output, truncated = _truncate_output(result.output)
        doc: Dict[str, object] = {
            "state": "cancelled" if result.cancelled else "done",
            "output": output,
            "output_truncated": truncated,
            "instructions": result.stats.executed_instructions,
            "exit_code": result.exit_code,
            "cycles": result.cycles,
            "mips": round(result.stats.mips, 3),
            "elapsed_seconds": round(result.stats.elapsed_seconds, 6),
            "halted": result.program.state.halted,
            "report": result.telemetry,
        }
        if result.sampling is not None:
            doc["cycles_estimated"] = result.sampling.cycles_estimated
            doc["cycles_ci95"] = result.sampling.cycles_ci95
            doc["sampling"] = result.sampling.block()
        if result.cancel_checkpoint is not None:
            doc["checkpoint"] = result.cancel_checkpoint
        return doc
    except SimulationError as exc:
        # Guest trap: the interpreter already attached the flight
        # snapshot; render the recorder trail so the failure document
        # carries crash context (mirrors `kahrisma run` on a trap).
        doc = {"state": "failed", "error": str(exc)}
        if flight is not None:
            try:
                doc["flight"] = flight.format(last=16)
            except Exception:
                pass
        return doc
    except Exception as exc:  # build errors, bad resume paths, ...
        return {
            "state": "failed",
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(limit=8),
        }


#: Size of the shared cancel cell: one length byte plus the UTF-8 job
#: id (:func:`repro.serve.protocol.job_id_new` ids are ~16 chars).
CANCEL_CELL_SIZE = 64


def _cancel_cell_read(cell) -> str:
    with cell.get_lock():
        n = cell[0]
        return bytes(cell[1:1 + n]).decode("utf-8", "replace")


def _cancel_cell_write(cell, job_id: str) -> None:
    data = job_id.encode("utf-8")[:CANCEL_CELL_SIZE - 1]
    with cell.get_lock():
        cell[0] = len(data)
        cell[1:1 + len(data)] = data


def _worker_main(worker_id, conn, msgq, cancel_cell, config) -> None:
    """Process entry point: serve jobs from the dispatch pipe forever."""
    build_cache: Dict[tuple, object] = {}
    msgq.put(("ready", worker_id, None, None))
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            break
        if item is None:
            break
        job_id = item["id"]
        spec = JobSpec(**item["spec"])

        def emit(event, _jid=job_id):
            msgq.put(("event", worker_id, _jid, event))

        # Only a cancel naming *this* job counts; requests for any
        # other (earlier, finished) job are inert by construction.
        def cancelled(_jid=job_id):
            return _cancel_cell_read(cancel_cell) == _jid

        result = execute_job(
            job_id,
            spec,
            cancel=cancelled,
            emit=emit,
            build_cache=build_cache,
            checkpoint_dir=config.get("checkpoint_dir"),
            plan_cache_dir=config.get("plan_cache_dir"),
            use_plan_cache=config.get("use_plan_cache", True),
        )
        msgq.put(("done", worker_id, job_id, result))
    conn.close()


class Worker:
    """Server-side handle for one worker process."""

    def __init__(self, worker_id: int, ctx, msgq, config: dict) -> None:
        self.id = worker_id
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.cancel_cell = ctx.Array("B", CANCEL_CELL_SIZE)
        #: Job id currently running on this worker (None = idle).
        self.job_id: Optional[str] = None
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, child_conn, msgq, self.cancel_cell, config),
            daemon=True,
            name=f"kahrisma-worker-{worker_id}",
        )
        self.process.start()
        child_conn.close()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def idle(self) -> bool:
        return self.job_id is None and self.process.is_alive()

    def dispatch(self, job_id: str, spec: JobSpec) -> None:
        self.job_id = job_id
        self.conn.send({"id": job_id, "spec": spec.to_doc()})

    def cancel(self, job_id: Optional[str] = None) -> None:
        """Ask ``job_id`` (default: the dispatched job) to stop at its
        next budget slice.  Naming the job makes stale requests inert:
        if the worker has moved on to another job, the id comparison
        in its poll fails and nothing is cancelled."""
        target = job_id if job_id is not None else self.job_id
        if target is None:
            return
        _cancel_cell_write(self.cancel_cell, target)

    def stop(self) -> None:
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError):
            pass

    def join(self, timeout: float = 5.0) -> None:
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(1.0)


class WorkerPool:
    """A fixed pool of warm worker processes plus their message queue.

    The owner drains :attr:`messages` (``("ready"|"event"|"done", ...)``
    tuples) — the pool itself never blocks on results, which is what
    lets the asyncio server bridge the queue with one pump thread.
    """

    def __init__(
        self,
        workers: int,
        *,
        checkpoint_dir: Optional[str] = None,
        plan_cache_dir: Optional[str] = None,
        use_plan_cache: bool = True,
    ) -> None:
        methods = multiprocessing.get_all_start_methods()
        self.ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self.messages = self.ctx.Queue()
        self._config = {
            "checkpoint_dir": checkpoint_dir,
            "plan_cache_dir": plan_cache_dir,
            "use_plan_cache": use_plan_cache,
        }
        self.workers = [
            Worker(i, self.ctx, self.messages, self._config)
            for i in range(max(1, workers))
        ]

    def __len__(self) -> int:
        return len(self.workers)

    def idle_worker(self) -> Optional[Worker]:
        for worker in self.workers:
            if worker.idle:
                return worker
        return None

    def worker(self, worker_id: int) -> Worker:
        return self.workers[worker_id]

    def dead_workers(self) -> List["Worker"]:
        """Workers whose process exited (crash, OOM-kill, terminate)."""
        return [w for w in self.workers if not w.process.is_alive()]

    def respawn(self, worker_id: int) -> Worker:
        """Replace a dead worker with a fresh process under the same id.

        The old handle's pipe is closed (drops any queued dispatch);
        the replacement announces itself with the usual ``ready``
        message once it is up.
        """
        old = self.workers[worker_id]
        try:
            old.conn.close()
        except OSError:
            pass
        if old.process.is_alive():
            old.process.terminate()
        old.process.join(1.0)
        replacement = Worker(
            worker_id, self.ctx, self.messages, self._config
        )
        self.workers[worker_id] = replacement
        return replacement

    def shutdown(self) -> None:
        for worker in self.workers:
            worker.stop()
        for worker in self.workers:
            worker.join()
        self.messages.close()
        self.messages.join_thread()
