"""Job specs, lifecycle states and wire documents for ``kahrisma serve``.

Everything here is plain data: a :class:`JobSpec` is validated once at
the HTTP boundary and then shipped to a worker process as a dict, so
all fields must be picklable and JSON-serializable.  The server and
the client agree on these documents; nothing else crosses the wire.

Job lifecycle::

    queued -> running -> done        (ran to halt or budget)
                      -> cancelled   (cancel hook fired mid-run)
                      -> failed      (guest trap / build error)
    queued -> cancelled              (cancelled before dispatch)

``done``/``cancelled``/``failed`` are terminal; a cancelled job may
carry a resumable checkpoint path (``checkpoint_on_cancel``), which a
follow-up job can pass as ``resume_from``.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from ..programs import PROGRAMS
from ..sim.interpreter import ENGINES

#: Cycle-model names a job may request (mirrors the CLI's --model).
MODELS = ("none", "ilp", "aie", "doe", "rtl")
#: Branch predictors a job may request.
PREDICTORS = ("perfect", "not-taken", "bimodal", "gshare")
#: ISA names accepted for builds.
ISAS = ("risc", "vliw2", "vliw4", "vliw6", "vliw8")

#: Every state a job can be in, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "cancelled", "failed")
#: States a job never leaves.
TERMINAL_STATES = ("done", "cancelled", "failed")

_id_counter = itertools.count(1)
_id_lock = threading.Lock()


def job_id_new() -> str:
    """Process-unique, monotonic, log-friendly job id."""
    with _id_lock:
        n = next(_id_counter)
    return f"job-{os.getpid():05d}-{n:06d}"


class SpecError(ValueError):
    """A submitted job document failed validation (HTTP 400)."""


@dataclass
class JobSpec:
    """One run request, validated at the HTTP boundary.

    ``program`` names a bundled benchmark (``kahrisma programs``);
    ``source`` ships KC source text instead.  Exactly one of the two
    must be set.  Engine/model/predictor knobs mirror ``kahrisma
    run``; ``tenant`` and ``priority`` (lower = sooner) feed the
    scheduler; ``heartbeat_every`` sets both the live-event cadence
    and the cancellation latency (the run is sliced at this many
    instructions).
    """

    program: Optional[str] = None
    source: Optional[str] = None
    isa: str = "risc"
    isa_map: Optional[Dict[str, str]] = None
    engine: str = "superblock"
    model: str = "none"
    branch_predictor: str = "perfect"
    branch_penalty: int = 3
    max_instructions: int = 100_000_000
    input_data: str = ""
    tenant: str = "default"
    priority: int = 10
    heartbeat_every: int = 250_000
    checkpoint_on_cancel: bool = True
    resume_from: Optional[str] = None
    fuse_cycles: bool = True
    label: Optional[str] = None
    #: Statistical-sampling spec ``"U:k[:W[:seed]]"`` (see
    #: ``docs/performance.md``); requires ``model`` aie/doe.  The
    #: result document then carries ``cycles_estimated``/
    #: ``cycles_ci95`` and a ``sampling`` block.
    sampling: Optional[str] = None

    def validate(self) -> "JobSpec":
        """Raise :class:`SpecError` on any malformed field; return self."""
        if bool(self.program) == bool(self.source):
            raise SpecError("exactly one of 'program'/'source' is required")
        if self.program is not None and self.program not in PROGRAMS:
            known = ", ".join(sorted(PROGRAMS))
            raise SpecError(f"unknown program {self.program!r} "
                            f"(bundled: {known})")
        if self.engine not in ENGINES:
            raise SpecError(f"unknown engine {self.engine!r}; "
                            f"expected one of {ENGINES}")
        if self.model not in MODELS:
            raise SpecError(f"unknown model {self.model!r}; "
                            f"expected one of {MODELS}")
        if self.branch_predictor not in PREDICTORS:
            raise SpecError(f"unknown branch predictor "
                            f"{self.branch_predictor!r}")
        if self.isa not in ISAS:
            raise SpecError(f"unknown isa {self.isa!r}")
        if self.isa_map is not None and not (
            isinstance(self.isa_map, dict)
            and all(
                isinstance(k, str) and v in ISAS
                for k, v in self.isa_map.items()
            )
        ):
            raise SpecError("isa_map must map function names to ISA names")
        if not isinstance(self.tenant, str) or not self.tenant:
            raise SpecError("tenant must be a non-empty string")
        for name in ("priority", "max_instructions", "heartbeat_every",
                     "branch_penalty"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise SpecError(f"{name} must be an integer")
        if self.max_instructions <= 0:
            raise SpecError("max_instructions must be positive")
        if self.heartbeat_every <= 0:
            raise SpecError("heartbeat_every must be positive")
        if not isinstance(self.input_data, str):
            raise SpecError("input_data must be a string")
        if self.resume_from is not None and not isinstance(
            self.resume_from, str
        ):
            raise SpecError("resume_from must be a checkpoint path")
        if self.sampling is not None:
            if self.model not in ("aie", "doe"):
                raise SpecError(
                    f"sampling requires a detailed cycle model "
                    f"(aie/doe), not {self.model!r}"
                )
            from ..framework.sampling import SamplingConfig

            try:
                SamplingConfig.parse(self.sampling)
            except ValueError as exc:
                raise SpecError(str(exc))
        return self

    @classmethod
    def from_doc(cls, doc: object) -> "JobSpec":
        """Build and validate a spec from a decoded JSON document."""
        if not isinstance(doc, dict):
            raise SpecError("job document must be a JSON object")
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = sorted(set(doc) - known)
        if unknown:
            raise SpecError(f"unknown job fields: {', '.join(unknown)}")
        try:
            spec = cls(**doc)
        except TypeError as exc:
            raise SpecError(str(exc))
        return spec.validate()

    def to_doc(self) -> Dict[str, object]:
        return asdict(self)

    @property
    def workload(self) -> str:
        """Human label for event streams and reports."""
        if self.label:
            return self.label
        return self.program if self.program else "<source>"


@dataclass
class Job:
    """Server-side record of one submitted job (not wire-visible)."""

    id: str
    spec: JobSpec
    state: str = "queued"
    #: Scheduler sequence number (FIFO tiebreak).
    seq: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Worker index the job ran on (None while queued).
    worker: Optional[int] = None
    #: Relayed live events (bounded; oldest dropped beyond the cap).
    events: list = field(default_factory=list)
    #: Events dropped from the buffer (the live relay still saw them).
    events_dropped: int = 0
    #: Worker result payload (state/output/report/...) once terminal.
    result: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    #: Resumable checkpoint written on cancellation.
    checkpoint: Optional[str] = None
    cancel_requested: bool = False
    #: Guard against double-releasing the scheduler slot (set by
    #: :meth:`repro.serve.scheduler.Scheduler.release`).
    released: bool = False

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_doc(self) -> Dict[str, object]:
        """The ``GET /jobs/<id>`` document."""
        doc: Dict[str, object] = {
            "id": self.id,
            "state": self.state,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "workload": self.spec.workload,
            "engine": self.spec.engine,
            "model": self.spec.model,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "worker": self.worker,
            "events_buffered": len(self.events),
            "events_dropped": self.events_dropped,
            "cancel_requested": self.cancel_requested,
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.checkpoint is not None:
            doc["checkpoint"] = self.checkpoint
        if self.result is not None:
            for key in ("instructions", "exit_code", "cycles", "mips",
                        "elapsed_seconds", "cycles_estimated",
                        "cycles_ci95", "sampling"):
                if key in self.result:
                    doc[key] = self.result[key]
        return doc

    def result_doc(self) -> Dict[str, object]:
        """The ``GET /jobs/<id>/result`` document (terminal jobs)."""
        doc = self.status_doc()
        if self.result is not None:
            doc["output"] = self.result.get("output")
            doc["report"] = self.result.get("report")
            if "flight" in self.result:
                doc["flight"] = self.result["flight"]
        return doc
