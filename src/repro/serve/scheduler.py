"""Multi-tenant job scheduling for ``kahrisma serve``.

A plain (non-async) data structure the server wraps: the asyncio loop
is single-threaded, so no internal locking is needed — what matters
is the *policy*:

* **Priority within a tenant** — each tenant keeps a min-heap ordered
  by ``(priority, seq)``: lower priority values run sooner, FIFO
  within a priority class (``seq`` is the global submission counter,
  so starvation within a tenant is impossible).
* **Fairness across tenants** — :meth:`acquire` picks among tenants
  that still have headroom (running < ``max_running``) the one with
  the *fewest running jobs first*, breaking ties by best queued
  priority then oldest submission.  A tenant spraying thousands of
  jobs therefore cannot crowd out a tenant submitting one: the idle
  tenant's first job is picked ahead of the busy tenant's Nth.
* **Bounded queues** — per-tenant queue depth (``max_queued``) and a
  global cap (``max_depth``) reject at submit time
  (:class:`QueueFull` → HTTP 429/503) instead of letting memory grow
  with unserved work.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional

from .protocol import Job


@dataclass
class TenantLimits:
    """Per-tenant admission and concurrency caps."""

    #: Jobs of one tenant allowed to run simultaneously.
    max_running: int = 2
    #: Jobs of one tenant allowed to wait in the queue.
    max_queued: int = 256


class QueueFull(Exception):
    """Submission rejected by an admission cap.

    ``scope`` is ``"tenant"`` (the submitting tenant is over its
    queue depth → HTTP 429) or ``"global"`` (the whole server is →
    HTTP 503).
    """

    def __init__(self, scope: str, message: str) -> None:
        super().__init__(message)
        self.scope = scope


class Scheduler:
    """Priority queue with per-tenant limits and fair tenant pick."""

    def __init__(
        self,
        *,
        limits: Optional[TenantLimits] = None,
        per_tenant: Optional[Dict[str, TenantLimits]] = None,
        max_depth: int = 10_000,
    ) -> None:
        #: Default limits for tenants without an explicit entry.
        self.limits = limits if limits is not None else TenantLimits()
        #: Per-tenant overrides (tenant name -> limits).
        self.per_tenant = dict(per_tenant) if per_tenant else {}
        self.max_depth = max_depth
        #: tenant -> heap of (priority, seq, job) awaiting dispatch.
        self._queues: Dict[str, List[tuple]] = {}
        #: tenant -> currently running job count.
        self._running: Dict[str, int] = {}
        self._seq = 0
        self._depth = 0
        # -- telemetry counters (serve.scheduler.*) --
        self.submitted = 0
        self.rejected_tenant = 0
        self.rejected_global = 0
        self.dispatched = 0
        self.completed = 0
        self.cancelled_queued = 0
        self.requeued = 0
        #: Release calls that would have underflowed a tenant's
        #: running count (double release / release without acquire) —
        #: clamped instead of corrupting the fairness state.
        self.release_underflows = 0

    # -- admission ----------------------------------------------------------

    def limits_for(self, tenant: str) -> TenantLimits:
        return self.per_tenant.get(tenant, self.limits)

    @property
    def depth(self) -> int:
        """Jobs currently queued (all tenants)."""
        return self._depth

    @property
    def running(self) -> int:
        """Jobs currently running (all tenants)."""
        return sum(self._running.values())

    def queued_for(self, tenant: str) -> int:
        return len(self._queues.get(tenant, ()))

    def running_for(self, tenant: str) -> int:
        return self._running.get(tenant, 0)

    def submit(self, job: Job) -> None:
        """Enqueue or raise :class:`QueueFull`; assigns ``job.seq``."""
        tenant = job.spec.tenant
        if self._depth >= self.max_depth:
            self.rejected_global += 1
            raise QueueFull(
                "global",
                f"server queue full ({self.max_depth} jobs)",
            )
        if self.queued_for(tenant) >= self.limits_for(tenant).max_queued:
            self.rejected_tenant += 1
            raise QueueFull(
                "tenant",
                f"tenant {tenant!r} queue full "
                f"({self.limits_for(tenant).max_queued} jobs)",
            )
        self._seq += 1
        job.seq = self._seq
        heapq.heappush(
            self._queues.setdefault(tenant, []),
            (job.spec.priority, job.seq, job),
        )
        self._depth += 1
        self.submitted += 1

    # -- dispatch -----------------------------------------------------------

    def acquire(self) -> Optional[Job]:
        """Pop the next runnable job honoring limits and fairness.

        Returns None when nothing is runnable (queues empty, or every
        queued tenant is at its running cap).  The caller must pair
        every acquire with a later :meth:`release`.
        """
        best_tenant = None
        best_key = None
        for tenant, queue in self._queues.items():
            if not queue:
                continue
            running = self._running.get(tenant, 0)
            if running >= self.limits_for(tenant).max_running:
                continue
            priority, seq, _job = queue[0]
            key = (running, priority, seq)
            if best_key is None or key < best_key:
                best_key = key
                best_tenant = tenant
        if best_tenant is None:
            return None
        _, _, job = heapq.heappop(self._queues[best_tenant])
        if not self._queues[best_tenant]:
            del self._queues[best_tenant]
        self._depth -= 1
        self._running[best_tenant] = self._running.get(best_tenant, 0) + 1
        self.dispatched += 1
        job.released = False
        return job

    def release(self, job: Job) -> None:
        """A previously acquired job finished (any terminal state).

        Idempotent: releasing the same job twice (e.g. a worker-death
        reaper racing a late ``done`` message) is counted in
        ``release_underflows`` and otherwise ignored — the tenant's
        running count never goes negative, which would permanently
        skew the fairness pick in :meth:`acquire`.
        """
        if job.released:
            self.release_underflows += 1
            return
        job.released = True
        tenant = job.spec.tenant
        count = self._running.get(tenant, 0)
        if count <= 0:
            self.release_underflows += 1
            return
        if count == 1:
            self._running.pop(tenant, None)
        else:
            self._running[tenant] = count - 1
        self.completed += 1

    def requeue(self, job: Job) -> None:
        """Put an acquired-but-undispatchable job back in its queue.

        Used when dispatch to a worker fails (dead process, broken
        pipe): the running slot is given back and the job keeps its
        original ``seq``, so it stays first in line for its priority
        class.
        """
        if not job.released:
            job.released = True
            tenant = job.spec.tenant
            count = self._running.get(tenant, 0)
            if count <= 1:
                self._running.pop(tenant, None)
            else:
                self._running[tenant] = count - 1
        heapq.heappush(
            self._queues.setdefault(job.spec.tenant, []),
            (job.spec.priority, job.seq, job),
        )
        self._depth += 1
        self.requeued += 1

    def remove(self, job: Job) -> bool:
        """Remove a still-queued job (cancellation before dispatch)."""
        queue = self._queues.get(job.spec.tenant)
        if not queue:
            return False
        for i, (_p, _s, queued) in enumerate(queue):
            if queued.id == job.id:
                queue[i] = queue[-1]
                queue.pop()
                heapq.heapify(queue)
                if not queue:
                    del self._queues[job.spec.tenant]
                self._depth -= 1
                self.cancelled_queued += 1
                return True
        return False

    # -- telemetry ----------------------------------------------------------

    def metrics(self) -> Dict[str, object]:
        """Flat ``serve.scheduler.*`` counter dict."""
        return {
            "serve.scheduler.depth": self.depth,
            "serve.scheduler.running": self.running,
            "serve.scheduler.tenants_queued": len(self._queues),
            "serve.scheduler.submitted": self.submitted,
            "serve.scheduler.dispatched": self.dispatched,
            "serve.scheduler.completed": self.completed,
            "serve.scheduler.rejected_tenant": self.rejected_tenant,
            "serve.scheduler.rejected_global": self.rejected_global,
            "serve.scheduler.cancelled_queued": self.cancelled_queued,
            "serve.scheduler.requeued": self.requeued,
            "serve.scheduler.release_underflows": self.release_underflows,
        }
