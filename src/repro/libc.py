"""Registry of emulated C standard library functions (paper Section V-E).

The simulator provides required C library functionality *natively*: a
special ``simop`` operation carries the library function id as an
immediate, and the simulator reads arguments from registers/stack per
the calling convention, runs the function natively, and writes the
result back.  TargetGen makes each function visible to the linker by
generating a small assembly stub (``simop #id; jr r31``) per ISA.

This module is the single source of truth for the id ↔ name mapping,
shared by the stub generator (:mod:`repro.targetgen.asmgen`), the
compiler (which treats these names as externs) and the simulator's
syscall handlers (:mod:`repro.sim.syscalls`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class LibcFunction:
    """One emulated library function."""

    ident: int
    name: str
    #: Number of register-passed arguments (r4..r7).
    num_args: int
    #: Whether the function produces a result in r2.
    returns_value: bool
    #: Cycles charged by the cycle models.  The paper's default is that
    #: natively executed library functions are *not* counted; we default
    #: to the 1-cycle simop issue and make the cost configurable.
    cycle_cost: int = 1


LIBC_FUNCTIONS: Tuple[LibcFunction, ...] = (
    LibcFunction(0, "exit", 1, False),
    LibcFunction(1, "putchar", 1, True),
    LibcFunction(2, "getchar", 0, True),
    LibcFunction(3, "puts", 1, True),
    LibcFunction(4, "print_int", 1, False),
    LibcFunction(5, "print_uint", 1, False),
    LibcFunction(6, "print_hex", 1, False),
    LibcFunction(7, "malloc", 1, True),
    LibcFunction(8, "free", 1, False),
    LibcFunction(9, "memcpy", 3, True),
    LibcFunction(10, "memset", 3, True),
    LibcFunction(11, "strlen", 1, True),
    LibcFunction(12, "strcmp", 2, True),
    LibcFunction(13, "rand", 0, True),
    LibcFunction(14, "srand", 1, False),
    LibcFunction(15, "clock", 0, True),
    LibcFunction(16, "abs", 1, True),
    LibcFunction(17, "write", 2, True),
)

LIBC_BY_NAME: Dict[str, LibcFunction] = {f.name: f for f in LIBC_FUNCTIONS}
LIBC_BY_ID: Dict[int, LibcFunction] = {f.ident: f for f in LIBC_FUNCTIONS}
