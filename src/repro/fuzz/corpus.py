"""Reproducer corpus: minimized fuzz programs tier-1 replays forever.

A corpus entry is a small JSON document carrying the *rendered
assembly* (the source of truth — replay does not depend on the
generator staying bit-stable across refactors) plus the provenance
needed to regenerate or extend it: seed, generator config, features,
and — for entries born from a real divergence — the divergence
summary.

Policy (``docs/validation.md``): every divergence the rig finds is
shrunk and saved here; coverage entries (programs exercising rare
feature combinations like SMC and ISA switches) are checked in
proactively so the matrix runs them on every tier-1 invocation.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from .generator import FuzzProgram
from .runner import DiffResult, EngineConfig, assemble_fuzz, run_differential

SCHEMA = "kahrisma-fuzz-corpus-v1"

#: Default in-repo corpus location (relative to the repository root).
DEFAULT_CORPUS_DIR = os.path.join("tests", "corpus")


def save_reproducer(
    directory: str,
    program: FuzzProgram,
    *,
    note: str = "",
    divergence: Optional[Dict[str, object]] = None,
    name: Optional[str] = None,
) -> str:
    """Write one corpus entry; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    if name is None:
        name = f"seed{program.seed}"
        if divergence:
            name = f"divergence-{name}"
    path = os.path.join(directory, f"{name}.json")
    doc = {
        "schema": SCHEMA,
        "seed": program.seed,
        "config": program.config.to_doc(),
        "features": program.features,
        "note": note,
        "asm": program.render(),
    }
    if divergence:
        doc["divergence"] = divergence
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_corpus(directory: str) -> List[Dict[str, object]]:
    """All corpus entries in ``directory`` (sorted, stable order)."""
    entries = []
    if not os.path.isdir(directory):
        return entries
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".json"):
            continue
        path = os.path.join(directory, filename)
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if doc.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: unknown corpus schema {doc.get('schema')!r}"
            )
        doc["path"] = path
        entries.append(doc)
    return entries


def replay_entry(
    entry: Dict[str, object],
    configs: Optional[List[EngineConfig]] = None,
    *,
    max_instructions: int = 2_000_000,
) -> DiffResult:
    """Re-run one corpus entry's assembly over the matrix.

    Entries carry either rendered ``asm`` (fuzz reproducers) or a
    bundled benchmark name under ``program`` — the latter lets the
    corpus pin whole benchmark kernels into the replay matrix
    (compiled fresh at replay time, so they track the compiler).
    """
    asm = entry.get("asm")
    if asm is None:
        from ..adl.kahrisma import KAHRISMA
        from ..lang.driver import compile_source
        from ..programs import load_program

        name = str(entry["program"])
        compiled = compile_source(
            load_program(name), KAHRISMA, isa=str(entry.get("isa", "risc")),
            filename=f"{name}.kc",
        )
        asm = compiled.assembly
    built = assemble_fuzz(asm, name=str(entry.get("path", "<corpus>")))
    return run_differential(
        built, configs, max_instructions=max_instructions
    )


__all__ = [
    "DEFAULT_CORPUS_DIR",
    "SCHEMA",
    "load_corpus",
    "replay_entry",
    "save_reproducer",
]
