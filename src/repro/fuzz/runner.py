"""Differential execution harness over all engines and cycle models.

One generated (or corpus) program is assembled once and executed under
every configuration of the matrix; every observable the simulator
defines — registers, IP, active ISA, halt flag, exit code, memory
digest, syscall output, executed-instruction count, and model cycles —
must be *bitwise identical* across configurations (cycles are compared
within a cycle-model group, everything else across the whole matrix).

A mismatch is escalated to :func:`repro.telemetry.run_lockstep`, which
re-runs the reference engine against the divergent configuration in
lockstep and localizes the first divergent instruction/PC (the same
forensics the determinism gate uses).

``inject=`` corrupts a register of one designated configuration at an
exact instruction boundary — the rig's self-test seam: a fuzz run with
an injected fault *must* report a divergence, shrink it, and localize
it, proving the safety net actually trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..adl.kahrisma import KAHRISMA
from ..binutils.assembler import Assembler
from ..binutils.elf import ElfFile
from ..binutils.linker import LinkInfo, link
from ..binutils.loader import load_executable
from ..framework.parallel import make_cycle_model
from ..sim.interpreter import ENGINES, Interpreter
from ..snapshot.capture import memory_digest

#: Hard ceiling on one configuration run; generated programs are
#: bounded far below this by construction, so hitting it means a
#: generator bug (reported as a trap-kind divergence, not a hang).
DEFAULT_MAX_INSTRUCTIONS = 2_000_000


@dataclass(frozen=True)
class EngineConfig:
    """One cell of the differential matrix."""

    engine: str
    model: Optional[str] = None
    fuse_cycles: bool = True

    @property
    def label(self) -> str:
        parts = [self.engine, self.model or "none"]
        if self.model in ("aie", "doe") and self.engine in (
            "superblock", "aot"
        ):
            parts.append("fused" if self.fuse_cycles else "observed")
        return "/".join(parts)

    def to_doc(self) -> Dict[str, object]:
        return {"engine": self.engine, "model": self.model,
                "fuse_cycles": self.fuse_cycles}


def default_matrix(
    engines=ENGINES, models=("ilp", "aie", "doe")
) -> List[EngineConfig]:
    """All engines x models x fused/observed (where the axis exists).

    Fused accounting only exists on the translating engines; the AOT
    tier additionally *requires* fusion (an observing model has no AOT
    representation and would silently degrade to the interactive
    engine — running it again would test nothing new).
    """
    matrix: List[EngineConfig] = []
    for engine in engines:
        for model in models:
            if engine in ("superblock", "aot") and model in ("aie", "doe"):
                matrix.append(EngineConfig(engine, model, True))
                if engine == "superblock":
                    matrix.append(EngineConfig(engine, model, False))
            else:
                matrix.append(EngineConfig(engine, model, True))
    return matrix


@dataclass
class FuzzBuilt:
    """A linked fuzz executable (duck-compatible with BuildResult
    where the forensic and AOT layers need it: ``.elf`` / ``.arch``)."""

    elf: ElfFile
    link_info: LinkInfo
    arch: object
    asm: str


def assemble_fuzz(asm: str, *, name: str = "<fuzz>") -> FuzzBuilt:
    """Assemble + link one generated program into a loadable ELF."""
    obj = Assembler(KAHRISMA).assemble(asm, name)
    elf, info = link([obj], KAHRISMA, entry_symbol="$risc$main",
                     entry_isa=0)
    return FuzzBuilt(elf=elf, link_info=info, arch=KAHRISMA, asm=asm)


@dataclass
class Outcome:
    """Everything observable about one configuration run."""

    config: EngineConfig
    regs: tuple = ()
    ip: int = 0
    isa: int = 0
    halted: bool = False
    exit_code: int = 0
    output: str = ""
    mem_digest: str = ""
    instructions: int = 0
    cycles: Optional[int] = None
    #: Trap text when the run raised SimulationError (compared too:
    #: every engine must trap identically or not at all).
    error: Optional[str] = None

    def arch_key(self) -> tuple:
        return (self.regs, self.ip, self.isa, self.halted,
                self.exit_code, self.output, self.mem_digest,
                self.instructions, self.error)


def run_config(
    built: FuzzBuilt,
    config: EngineConfig,
    *,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    inject: Optional[dict] = None,
) -> Outcome:
    """Execute one configuration to halt (or budget) and observe it.

    ``inject={"at": N, "reg": idx, "xor": mask}`` splits the run at
    instruction boundary N and corrupts a register — only passed for
    the configuration the self-test designates as the victim.
    """
    from ..sim.errors import SimulationError

    program = load_executable(built.elf, built.arch)
    model = _make_model(config.model)
    aot_module = None
    if config.engine == "aot":
        from ..sim import aot

        aot_module = aot.prepare(built.elf, built.arch, model=model)
    interp = Interpreter(
        program.state,
        cycle_model=model,
        engine=config.engine,
        fuse_cycles=config.fuse_cycles,
        aot_module=aot_module,
    )
    error = None
    try:
        if inject is None:
            interp.run(max_instructions=max_instructions)
        else:
            head = min(max(0, int(inject["at"])), max_instructions)
            interp.run(max_instructions=head)
            if not program.state.halted:
                reg = int(inject["reg"])
                program.state.regs[reg] ^= int(inject.get("xor", 1))
                interp.run(max_instructions=max_instructions - head)
    except SimulationError as exc:
        error = str(exc)
    state = program.state
    return Outcome(
        config=config,
        regs=tuple(state.regs),
        ip=state.ip,
        isa=state.isa_id,
        halted=state.halted,
        exit_code=state.exit_code,
        output=program.syscalls.output_text(),
        mem_digest=memory_digest(state.mem),
        instructions=interp.stats.executed_instructions,
        cycles=model.cycles if model is not None else None,
        error=error,
    )


@dataclass
class Divergence:
    """One configuration disagreeing with the reference."""

    #: ``architectural`` (state/output/instructions), ``cycles``
    #: (same-model cycle counts differ), or ``trap`` (only one side
    #: trapped).
    kind: str
    config: EngineConfig
    reference: EngineConfig
    detail: str
    #: run_lockstep report when the divergence reproduced under
    #: lockstep; None when escalation was skipped or found nothing.
    forensics: Optional[dict] = None

    @property
    def first_divergent_pc(self) -> Optional[int]:
        if self.forensics is None:
            return None
        return self.forensics.get("first_divergent_pc")


@dataclass
class DiffResult:
    """Cross-check verdict for one program over the whole matrix."""

    outcomes: List[Outcome] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _describe_mismatch(ref: Outcome, got: Outcome) -> str:
    parts = []
    if ref.regs != got.regs:
        for i, (a, b) in enumerate(zip(ref.regs, got.regs)):
            if a != b:
                parts.append(f"r{i}: {a:#x} != {b:#x}")
                if len(parts) >= 4:
                    break
    for name in ("ip", "isa", "halted", "exit_code", "instructions"):
        a, b = getattr(ref, name), getattr(got, name)
        if a != b:
            parts.append(f"{name}: {a!r} != {b!r}")
    if ref.output != got.output:
        parts.append(f"output: {ref.output!r} != {got.output!r}")
    if ref.mem_digest != got.mem_digest:
        parts.append("memory digest differs")
    if ref.error != got.error:
        parts.append(f"trap: {ref.error!r} != {got.error!r}")
    return "; ".join(parts) or "states differ"


def _make_model(name: Optional[str]):
    # Generated programs may switch into any VLIW ISA, so width-sized
    # models (DOE) are built at the architecture's maximum issue width
    # — the same width for every configuration, keeping the
    # cycle-equality property well-defined.
    return make_cycle_model(name, 8, None)


def _lockstep_config(config: EngineConfig) -> dict:
    doc = {"engine": config.engine, "label": config.label,
           "fuse_cycles": config.fuse_cycles}
    if config.model is not None:
        doc["cycle_model"] = _make_model(config.model)
    return doc


def run_differential(
    built: FuzzBuilt,
    configs: Optional[List[EngineConfig]] = None,
    *,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    inject: Optional[dict] = None,
    inject_into: Optional[str] = None,
    escalate: bool = True,
    lockstep_interval: int = 2_000,
) -> DiffResult:
    """Run the matrix and cross-check every observable bitwise.

    The first configuration is the reference (by default ``nocache``,
    the simplest loop and therefore the most trustworthy oracle).
    Architectural observables must agree across *all* configurations;
    cycles must agree within each cycle-model group — which makes the
    fused-vs-observed accounting equivalence part of the property.

    On mismatch, the divergent configuration is re-run against the
    reference under :func:`run_lockstep` to localize the first
    divergent instruction (``escalate=False`` skips that, e.g. inside
    the shrinker's hot loop).
    """
    from ..telemetry.flight import run_lockstep

    configs = list(configs) if configs is not None else default_matrix()
    result = DiffResult()
    outcomes: List[Outcome] = []
    for config in configs:
        this_inject = inject if config.label == inject_into else None
        outcomes.append(run_config(
            built, config,
            max_instructions=max_instructions, inject=this_inject,
        ))
    result.outcomes = outcomes

    ref = outcomes[0]
    cycle_ref: Dict[str, Outcome] = {}
    for got in outcomes:
        divergence = None
        if got is not ref and got.arch_key() != ref.arch_key():
            kind = (
                "trap" if (got.error is None) != (ref.error is None)
                else "architectural"
            )
            divergence = Divergence(
                kind=kind, config=got.config, reference=ref.config,
                detail=_describe_mismatch(ref, got),
            )
        elif got.cycles is not None and got.config.model is not None:
            group = cycle_ref.setdefault(got.config.model, got)
            if got is not group and got.cycles != group.cycles:
                divergence = Divergence(
                    kind="cycles", config=got.config,
                    reference=group.config,
                    detail=(
                        f"{got.config.model} cycles: "
                        f"{group.cycles} ({group.config.label}) != "
                        f"{got.cycles} ({got.config.label})"
                    ),
                )
        if divergence is None:
            continue
        if escalate:
            base = (
                divergence.reference if divergence.kind == "cycles"
                else ref.config
            )
            victim_inject = (
                inject if divergence.config.label == inject_into else None
            )
            try:
                divergence.forensics = run_lockstep(
                    built,
                    _lockstep_config(base),
                    _lockstep_config(divergence.config),
                    interval=lockstep_interval,
                    max_instructions=max_instructions,
                    inject=victim_inject,
                )
            except Exception as exc:  # forensics must never mask a find
                divergence.detail += f" [lockstep failed: {exc}]"
        result.divergences.append(divergence)
    return result


#: Configuration the self-test corrupts (the fused fast path — the
#: most aggressively optimised cell of the matrix).
SELF_TEST_VICTIM = "superblock/doe/fused"


def self_test(
    built: FuzzBuilt,
    configs: Optional[List[EngineConfig]] = None,
    *,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    victim: str = SELF_TEST_VICTIM,
):
    """Prove the rig trips: inject a fault until a divergence is caught.

    Tries register/boundary candidates (a corrupted register may be
    dead — overwritten before it can influence anything observable)
    until :func:`run_differential` reports a divergence on the victim
    configuration.  Returns ``(inject, DiffResult)``; raises
    RuntimeError when no candidate fault is observable, which would
    mean the harness lost its teeth.
    """
    reference = run_config(
        built, EngineConfig("nocache", None),
        max_instructions=max_instructions,
    )
    total = reference.instructions
    candidates = []
    for frac in (0.9, 0.5, 0.25):
        at = max(1, int(total * frac) - 1)
        for reg in (5, 14, 9, 12, 3):
            candidates.append({"at": at, "reg": reg, "xor": 0x8})
    for inject in candidates:
        result = run_differential(
            built, configs,
            max_instructions=max_instructions,
            inject=inject, inject_into=victim,
        )
        if not result.ok:
            return inject, result
    raise RuntimeError(
        "self-test fault injection produced no observable divergence"
    )


__all__ = [
    "DEFAULT_MAX_INSTRUCTIONS",
    "DiffResult",
    "Divergence",
    "EngineConfig",
    "FuzzBuilt",
    "Outcome",
    "assemble_fuzz",
    "default_matrix",
    "run_config",
    "run_differential",
]
