"""Seeded generator of random-but-valid mixed-ISA guest programs.

Programs are built from *segments* — structured units the shrinker can
drop or reduce independently — and rendered to KAHRISMA assembly that
goes through the real assembler/linker, so every generated ELF is a
loadable program indistinguishable from compiler output.

Validity rules (what makes the generated chaos safe):

* **Termination is structural.**  All direct branches are forward;
  loops use a dedicated counter register (``r21``) that no generated
  body op may write, with a bounded count; indirect jumps go through a
  jump table whose entries all point forward.  The dynamic instruction
  count is therefore bounded by construction.
* **Stores stay in the arena** (a ``.data`` scratch region addressed
  off ``r20``, which is never written after the prologue) or — for
  the opt-in SMC segments — at a designated patch site.  Loads may
  occasionally use a wild base register: the simulated address space
  is a full sparse 32-bit space, so any load is well-defined.
* **VLIW bundles follow the scheduler's contract** (read-all-sources
  before write-back): every op in a bundle writes a distinct
  register, at most one memory op per bundle, no control ops inside a
  bundle, ``switchtarget`` in a bundle of its own.
* **Division is total** (``sdiv``/``srem`` define ÷0), so arbitrary
  ``div``/``rem`` operands are fine.

Register budget: ``r2``–``r15`` are generated-code scratch, ``r20``
the arena base, ``r21`` the loop counter, ``r22``/``r23`` indirect-jump
scratch, ``r24``/``r25`` SMC scratch; ``r0``/``r1`` and the ABI
registers ``r28``–``r31`` are never touched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

MASK32 = 0xFFFFFFFF

#: Scratch registers generated ops may read and write freely.
POOL = tuple(range(2, 16))
R_ARENA = 20
R_LOOP = 21
R_JT = 22
R_JIDX = 23
R_SMC_A = 24
R_SMC_B = 25

#: Arena size in 32-bit words (256 bytes of scratch data).
ARENA_WORDS = 64
ARENA_BYTES = ARENA_WORDS * 4

ALU3 = (
    "add", "sub", "and", "or", "xor", "sll", "srl", "sra",
    "slt", "sltu", "mul", "mulh", "div", "rem",
)
ALUI_SIGNED = ("addi", "slti")
ALUI_UNSIGNED = ("andi", "ori", "xori", "sltiu")
ALUI_SHIFT = ("slli", "srli", "srai")
LOADS = ("lw", "lh", "lhu", "lb", "lbu")
STORES = ("sw", "sh", "sb")
BRANCH_CONDS = ("beq", "bne", "blt", "bge", "bltu", "bgeu")

_MEM_SIZE = {"lw": 4, "lh": 2, "lhu": 2, "lb": 1, "lbu": 1,
             "sw": 4, "sh": 2, "sb": 1}

#: VLIW ISAs the ISA-switch segments may enter (name -> ident).
VLIW_ISAS = {"vliw2": 1, "vliw4": 2, "vliw6": 3, "vliw8": 4}
VLIW_WIDTH = {"vliw2": 2, "vliw4": 4, "vliw6": 6, "vliw8": 8}


@dataclass(frozen=True)
class GenConfig:
    """Knobs of one generated program (all deterministic given seed)."""

    #: Number of body segments to generate.
    segments: int = 10
    #: Cap on straight-line ops per segment / loop / branch body.
    max_ops: int = 8
    #: Loop trip-count range (inclusive).
    max_loop_count: int = 16
    #: Enable bounded loops.
    loops: bool = True
    #: Enable forward conditional branches.
    branches: bool = True
    #: Enable indirect jumps through a jump table.
    indirect: bool = True
    #: Enable ISA-switch segments (RISC -> VLIW -> RISC).
    isa_switches: bool = True
    #: Opt-in: self-modifying-code segments.
    smc: bool = False
    #: Enable syscall-output segments (print_int/putchar).
    output: bool = True
    #: VLIW ISAs switch segments may use.
    vliw: tuple = ("vliw2", "vliw4")

    def to_doc(self) -> Dict[str, object]:
        return {
            "segments": self.segments,
            "max_ops": self.max_ops,
            "max_loop_count": self.max_loop_count,
            "loops": self.loops,
            "branches": self.branches,
            "indirect": self.indirect,
            "isa_switches": self.isa_switches,
            "smc": self.smc,
            "output": self.output,
            "vliw": list(self.vliw),
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "GenConfig":
        doc = dict(doc)
        if "vliw" in doc:
            doc["vliw"] = tuple(doc["vliw"])
        return cls(**doc)


@dataclass
class Segment:
    """One shrinkable unit of a generated program.

    ``kind`` is one of ``straight``/``loop``/``branch``/``indirect``/
    ``switch``/``smc``/``output``.  ``body`` holds individually
    droppable instruction lines (the shrinker removes entries);
    structural lines (labels, branches, the switchtarget pair) are
    re-rendered from the other fields, so any subset of ``body`` is
    still a valid program.
    """

    kind: str
    #: Stable per-program id used in labels (survives shrinking).
    uid: int = 0
    #: Droppable instruction lines (or VLIW bundle lines for switch).
    body: List[str] = field(default_factory=list)
    #: Loop trip count (loop/smc kinds; shrinkable down to 1).
    count: int = 1
    #: Branch condition mnemonic + registers (branch kind).
    cond: str = "bne"
    cond_regs: tuple = (2, 3)
    #: Indirect-jump arms: list of droppable-line lists.
    arms: List[List[str]] = field(default_factory=list)
    #: Index register the indirect jump hashes (indirect kind).
    index_reg: int = 2
    #: VLIW ISA name (switch kind).
    isa: str = "vliw2"
    #: Register printed by an output segment.
    out_reg: int = 2
    #: Replacement-instruction line planted at the donor site (smc).
    donor_line: str = ""

    def render(self, text: List[str], donors: List[str],
               data: List[str]) -> None:
        uid = self.uid
        if self.kind == "straight":
            text.extend(self.body)
        elif self.kind == "loop":
            text.append(f"    li r{R_LOOP}, {self.count}")
            text.append(f"loop_{uid}:")
            text.extend(self.body)
            text.append(f"    addi r{R_LOOP}, r{R_LOOP}, -1")
            text.append(f"    bne r{R_LOOP}, r0, loop_{uid}")
        elif self.kind == "branch":
            a, b = self.cond_regs
            text.append(f"    {self.cond} r{a}, r{b}, skip_{uid}")
            text.extend(self.body)
            text.append(f"skip_{uid}:")
        elif self.kind == "indirect":
            n = len(self.arms)
            text.append(f"    andi r{R_JIDX}, r{self.index_reg}, {n - 1}")
            text.append(f"    slli r{R_JIDX}, r{R_JIDX}, 2")
            text.append(f"    la r{R_JT}, jt_{uid}")
            text.append(f"    add r{R_JT}, r{R_JT}, r{R_JIDX}")
            text.append(f"    lw r{R_JT}, 0(r{R_JT})")
            text.append(f"    jr r{R_JT}")
            for i, arm in enumerate(self.arms):
                text.append(f"arm_{uid}_{i}:")
                text.extend(arm)
                text.append(f"    j join_{uid}")
            text.append(f"join_{uid}:")
            entries = ", ".join(f"arm_{uid}_{i}" for i in range(n))
            data.append(f"jt_{uid}: .word {entries}")
        elif self.kind == "switch":
            ident = VLIW_ISAS[self.isa]
            text.append(f"    switchtarget {ident}")
            text.append(f".isa {self.isa}")
            text.extend(self.body)
            text.append("    { switchtarget 0 }")
            text.append(".isa risc")
        elif self.kind == "smc":
            # The first loop iteration executes the original patch-site
            # instruction and then overwrites it with the donor word;
            # later iterations execute the replacement — a store into
            # live translated code, exercising byte-precise
            # invalidation on every engine.
            text.append(f"    li r{R_LOOP}, {max(2, self.count)}")
            text.append(f"smcl_{uid}:")
            text.append(f"patch_{uid}:")
            text.append("    addi r5, r5, 1")
            text.append(f"    la r{R_SMC_A}, donor_{uid}")
            text.append(f"    lw r{R_SMC_B}, 0(r{R_SMC_A})")
            text.append(f"    la r{R_SMC_A}, patch_{uid}")
            text.append(f"    sw r{R_SMC_B}, 0(r{R_SMC_A})")
            text.extend(self.body)
            text.append(f"    addi r{R_LOOP}, r{R_LOOP}, -1")
            text.append(f"    bne r{R_LOOP}, r0, smcl_{uid}")
            donors.append(f"donor_{uid}:")
            donors.append(self.donor_line)
        elif self.kind == "output":
            text.append(f"    addi r4, r{self.out_reg}, 0")
            text.append("    simop 4")  # print_int(r4)
            text.append("    addi r4, r0, 32")
            text.append("    simop 1")  # putchar(' ')
        else:  # pragma: no cover - generator invariant
            raise ValueError(f"unknown segment kind {self.kind!r}")


@dataclass
class FuzzProgram:
    """A generated program: structured segments plus render()."""

    seed: int
    config: GenConfig
    segments: List[Segment]
    #: Prologue constants loaded into the scratch pool.
    reg_seeds: Dict[int, int] = field(default_factory=dict)
    #: Initial arena contents (words).
    arena: List[int] = field(default_factory=list)

    @property
    def features(self) -> List[str]:
        found = []
        for kind in ("loop", "branch", "indirect", "switch", "smc",
                     "output"):
            if any(s.kind == kind for s in self.segments):
                found.append("isa-switch" if kind == "switch" else kind)
        return found

    def with_segments(self, segments: List[Segment]) -> "FuzzProgram":
        return FuzzProgram(
            seed=self.seed, config=self.config, segments=list(segments),
            reg_seeds=self.reg_seeds, arena=self.arena,
        )

    def render(self) -> str:
        text: List[str] = [
            f"# generated by repro.fuzz (seed={self.seed})",
            ".isa risc",
            ".text",
            ".global $risc$main",
            "$risc$main:",
            f"    la r{R_ARENA}, arena",
        ]
        for reg in sorted(self.reg_seeds):
            text.append(f"    li r{reg}, {self.reg_seeds[reg]}")
        donors: List[str] = []
        data: List[str] = []
        for segment in self.segments:
            segment.render(text, donors, data)
        text.append("    halt")
        # Donor words live in .text after the halt — never executed,
        # only loaded as data by the SMC patch loop.
        text.extend(donors)
        text.append(".data")
        arena_words = ", ".join(str(w) for w in self.arena) or "0"
        text.append(f"arena: .word {arena_words}")
        text.extend(data)
        return "\n".join(text) + "\n"


# -- op sampling --------------------------------------------------------------


def _imm_for(rng: random.Random, mnemonic: str) -> int:
    if mnemonic in ALUI_SHIFT:
        return rng.randrange(0, 32)
    if mnemonic in ALUI_UNSIGNED:
        return rng.randrange(0, 8192)
    return rng.randrange(-8192, 8192)


def _sample_alu(rng: random.Random) -> str:
    if rng.random() < 0.55:
        mn = rng.choice(ALU3)
        rd = rng.choice(POOL)
        rs1 = rng.choice(POOL + (0,))
        rs2 = rng.choice(POOL)
        return f"    {mn} r{rd}, r{rs1}, r{rs2}"
    mn = rng.choice(ALUI_SIGNED + ALUI_UNSIGNED + ALUI_SHIFT)
    rd = rng.choice(POOL)
    rs1 = rng.choice(POOL + (0,))
    return f"    {mn} r{rd}, r{rs1}, {_imm_for(rng, mn)}"


def _sample_mem(rng: random.Random) -> str:
    if rng.random() < 0.5:
        mn = rng.choice(LOADS)
        rd = rng.choice(POOL)
        if rng.random() < 0.1:
            # Wild-base load: any 32-bit address is defined (sparse
            # memory), and identical across engines by construction.
            rs1 = rng.choice(POOL)
            return f"    {mn} r{rd}, {rng.randrange(-8192, 8192)}(r{rs1})"
        off = _arena_offset(rng, _MEM_SIZE[mn])
        return f"    {mn} r{rd}, {off}(r{R_ARENA})"
    mn = rng.choice(STORES)
    rt = rng.choice(POOL)
    off = _arena_offset(rng, _MEM_SIZE[mn])
    return f"    {mn} r{rt}, {off}(r{R_ARENA})"


def _arena_offset(rng: random.Random, size: int) -> int:
    return rng.randrange(0, (ARENA_BYTES - size) // size + 1) * size


def _sample_body(rng: random.Random, max_ops: int, *,
                 mem_ratio: float = 0.35) -> List[str]:
    ops = []
    for _ in range(rng.randrange(1, max_ops + 1)):
        if rng.random() < mem_ratio:
            ops.append(_sample_mem(rng))
        else:
            ops.append(_sample_alu(rng))
    return ops


def _sample_bundles(rng: random.Random, isa: str, max_bundles: int) -> List[str]:
    """VLIW bundle lines: distinct dests, <=1 memory op, no control."""
    width = VLIW_WIDTH[isa]
    lines = []
    for _ in range(rng.randrange(1, max_bundles + 1)):
        n = rng.randrange(1, min(width, 4) + 1)
        dests = rng.sample(POOL, n)
        ops = []
        used_mem = False
        for rd in dests:
            if not used_mem and rng.random() < 0.25:
                used_mem = True
                if rng.random() < 0.5:
                    mn = rng.choice(LOADS)
                    off = _arena_offset(rng, _MEM_SIZE[mn])
                    ops.append(f"{mn} r{rd}, {off}(r{R_ARENA})")
                else:
                    mn = rng.choice(STORES)
                    off = _arena_offset(rng, _MEM_SIZE[mn])
                    ops.append(f"{mn} r{rd}, {off}(r{R_ARENA})")
            elif rng.random() < 0.5:
                mn = rng.choice(ALU3)
                ops.append(
                    f"{mn} r{rd}, r{rng.choice(POOL)}, r{rng.choice(POOL)}"
                )
            else:
                mn = rng.choice(ALUI_SIGNED + ALUI_UNSIGNED + ALUI_SHIFT)
                ops.append(
                    f"{mn} r{rd}, r{rng.choice(POOL)}, {_imm_for(rng, mn)}"
                )
        lines.append("    { " + " ; ".join(ops) + " }")
    return lines


#: Replacement instructions an SMC donor site may carry (all one-word
#: RISC ops with no control-flow effect).
_SMC_DONORS = (
    "    xori r5, r5, 341",
    "    addi r5, r5, 7",
    "    sub r5, r0, r5",
    "    slli r5, r5, 1",
)


def generate_program(
    seed: int, config: Optional[GenConfig] = None
) -> FuzzProgram:
    """Deterministically generate one program from ``seed``."""
    config = config if config is not None else GenConfig()
    rng = random.Random(seed)
    reg_seeds = {
        reg: rng.randrange(0, 1 << 32) for reg in POOL
    }
    arena = [rng.randrange(0, 1 << 32) for _ in range(ARENA_WORDS)]

    kinds = ["straight", "straight"]
    if config.loops:
        kinds.append("loop")
    if config.branches:
        kinds.append("branch")
    if config.indirect:
        kinds.append("indirect")
    if config.isa_switches:
        kinds.append("switch")
    if config.smc:
        kinds.append("smc")
    if config.output:
        kinds.append("output")

    segments: List[Segment] = []
    # Guarantee requested rare features appear at least once.
    forced = []
    if config.smc:
        forced.append("smc")
    if config.isa_switches:
        forced.append("switch")
    for uid in range(config.segments):
        kind = forced.pop(0) if forced else rng.choice(kinds)
        if kind == "straight":
            segments.append(Segment(
                kind="straight", uid=uid,
                body=_sample_body(rng, config.max_ops),
            ))
        elif kind == "loop":
            segments.append(Segment(
                kind="loop", uid=uid,
                count=rng.randrange(1, config.max_loop_count + 1),
                body=_sample_body(rng, config.max_ops),
            ))
        elif kind == "branch":
            segments.append(Segment(
                kind="branch", uid=uid,
                cond=rng.choice(BRANCH_CONDS),
                cond_regs=(rng.choice(POOL), rng.choice(POOL)),
                body=_sample_body(rng, config.max_ops),
            ))
        elif kind == "indirect":
            n = rng.choice((2, 4))
            segments.append(Segment(
                kind="indirect", uid=uid,
                index_reg=rng.choice(POOL),
                arms=[
                    _sample_body(rng, max(2, config.max_ops // 2))
                    for _ in range(n)
                ],
            ))
        elif kind == "switch":
            isa = rng.choice(config.vliw)
            segments.append(Segment(
                kind="switch", uid=uid, isa=isa,
                body=_sample_bundles(rng, isa, 3),
            ))
        elif kind == "smc":
            segments.append(Segment(
                kind="smc", uid=uid,
                count=rng.randrange(2, max(3, config.max_loop_count // 2)),
                body=_sample_body(rng, max(1, config.max_ops // 2)),
                donor_line=rng.choice(_SMC_DONORS),
            ))
        elif kind == "output":
            segments.append(Segment(
                kind="output", uid=uid, out_reg=rng.choice(POOL),
            ))
    return FuzzProgram(
        seed=seed, config=config, segments=segments,
        reg_seeds=reg_seeds, arena=arena,
    )


__all__ = [
    "ARENA_BYTES",
    "FuzzProgram",
    "GenConfig",
    "Segment",
    "generate_program",
    "replace",
]
