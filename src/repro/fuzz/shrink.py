"""Delta-debugging minimizer for failing fuzz programs.

Given a program and a failure predicate (``still_fails(program) ->
bool``, typically "run_differential finds a divergence"), the shrinker
greedily removes structure while the failure persists:

1. **segment ddmin** — drop contiguous chunks of segments, halving
   the chunk size down to single segments;
2. **loop-count reduction** — binary-reduce every loop/SMC trip count
   towards 1 (SMC keeps the 2-iteration minimum that makes the
   patched instruction execute);
3. **instruction ddmin** — drop individual body lines inside the
   surviving segments (and whole indirect-jump arms' bodies).

Every candidate re-assembles through the real toolchain, so the
minimized reproducer is always a valid program.  The budget caps total
candidate evaluations — differential runs dominate the cost, and a
linear-ish bound keeps worst-case shrinks predictable.
"""

from __future__ import annotations

from typing import Callable, List

from .generator import FuzzProgram, Segment


def _copy_segment(segment: Segment) -> Segment:
    return Segment(
        kind=segment.kind, uid=segment.uid, body=list(segment.body),
        count=segment.count, cond=segment.cond,
        cond_regs=segment.cond_regs,
        arms=[list(arm) for arm in segment.arms],
        index_reg=segment.index_reg, isa=segment.isa,
        out_reg=segment.out_reg, donor_line=segment.donor_line,
    )


class _Budget:
    def __init__(self, attempts: int) -> None:
        self.remaining = attempts

    def spend(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


def _check(program: FuzzProgram,
           still_fails: Callable[[FuzzProgram], bool],
           budget: _Budget) -> bool:
    if not budget.spend():
        return False
    try:
        return still_fails(program)
    except Exception:
        # A candidate that breaks assembly/execution outright is not a
        # valid reduction — keep shrinking elsewhere.
        return False


def _ddmin_segments(program: FuzzProgram, still_fails, budget) -> FuzzProgram:
    segments = list(program.segments)
    chunk = max(1, len(segments) // 2)
    while chunk >= 1 and len(segments) > 1:
        shrunk_here = False
        start = 0
        while start < len(segments) and len(segments) > 1:
            candidate_segments = segments[:start] + segments[start + chunk:]
            if not candidate_segments:
                start += chunk
                continue
            candidate = program.with_segments(candidate_segments)
            if _check(candidate, still_fails, budget):
                segments = candidate_segments
                shrunk_here = True
            else:
                start += chunk
            if budget.remaining <= 0:
                return program.with_segments(segments)
        chunk = chunk // 2 if not shrunk_here else max(1, chunk // 2)
    return program.with_segments(segments)


def _shrink_counts(program: FuzzProgram, still_fails, budget) -> FuzzProgram:
    segments = [_copy_segment(s) for s in program.segments]
    for segment in segments:
        floor = 2 if segment.kind == "smc" else 1
        while segment.count > floor and budget.remaining > 0:
            candidate_count = max(floor, segment.count // 2)
            saved = segment.count
            segment.count = candidate_count
            if not _check(program.with_segments(segments), still_fails,
                          budget):
                segment.count = saved
                break
    return program.with_segments(segments)


def _shrink_bodies(program: FuzzProgram, still_fails, budget) -> FuzzProgram:
    segments = [_copy_segment(s) for s in program.segments]
    for segment in segments:
        lists: List[List[str]] = [segment.body] + segment.arms
        for lines in lists:
            i = 0
            while i < len(lines) and budget.remaining > 0:
                removed = lines.pop(i)
                if _check(program.with_segments(segments), still_fails,
                          budget):
                    continue  # stays removed; same index now next line
                lines.insert(i, removed)
                i += 1
    return program.with_segments(segments)


def shrink(
    program: FuzzProgram,
    still_fails: Callable[[FuzzProgram], bool],
    *,
    max_attempts: int = 300,
) -> FuzzProgram:
    """Return a minimized program for which ``still_fails`` holds.

    The input program itself must fail; the result is the smallest
    failing candidate found within ``max_attempts`` evaluations (the
    original is returned unchanged when nothing smaller fails).
    """
    budget = _Budget(max_attempts)
    current = program
    # Fixpoint over the three passes: a dropped segment often unlocks
    # further body reductions and vice versa.
    while budget.remaining > 0:
        before = _signature(current)
        current = _ddmin_segments(current, still_fails, budget)
        current = _shrink_counts(current, still_fails, budget)
        current = _shrink_bodies(current, still_fails, budget)
        if _signature(current) == before:
            break
    return current


def _signature(program: FuzzProgram) -> tuple:
    return tuple(
        (s.kind, s.count, tuple(s.body),
         tuple(tuple(arm) for arm in s.arms))
        for s in program.segments
    )


__all__ = ["shrink"]
