"""Cross-engine differential fuzzing (``kahrisma fuzz``).

The correctness contract of this repository — five engines and two
cycle-accounting paths that are *bitwise interchangeable* — is only as
strong as the programs it is exercised on.  This package turns that
contract into a property-based test (ROADMAP item 4; the methodology
follows the co-execution validation of generated CPU models in
arXiv:1109.4351 and the differential discipline of Reshadi & Dutt):

* :mod:`repro.fuzz.generator` — a seeded generator emitting
  random-but-valid mixed-ISA guest programs (straight-line arithmetic,
  arena-confined loads/stores, bounded direct/indirect control flow,
  ISA switches, opt-in self-modifying code), assembled through the
  real ``repro.binutils`` path into loadable ELFs;
* :mod:`repro.fuzz.runner` — executes each program on every engine ×
  cycle model × fused/observed configuration and cross-checks
  architectural state, cycles and syscall output bitwise, escalating
  any mismatch to :func:`repro.telemetry.run_lockstep` forensics;
* :mod:`repro.fuzz.shrink` — delta-debugging minimizer for failing
  programs (drop segments/instructions, shrink loop counts);
* :mod:`repro.fuzz.corpus` — reproducer files under ``tests/corpus/``
  that tier-1 replays forever after (``docs/validation.md``).
"""

from .corpus import load_corpus, replay_entry, save_reproducer
from .generator import GenConfig, FuzzProgram, generate_program
from .runner import (
    Divergence,
    EngineConfig,
    FuzzBuilt,
    assemble_fuzz,
    default_matrix,
    run_differential,
)
from .shrink import shrink

__all__ = [
    "Divergence",
    "EngineConfig",
    "FuzzBuilt",
    "FuzzProgram",
    "GenConfig",
    "assemble_fuzz",
    "default_matrix",
    "generate_program",
    "load_corpus",
    "replay_entry",
    "run_differential",
    "save_reproducer",
    "shrink",
]
