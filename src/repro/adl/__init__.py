"""Architecture Description Language (ADL) for the KAHRISMA framework.

The ADL describes all processor configurations (ISAs) in parallel; the
TargetGen utility (:mod:`repro.targetgen`) generates the simulator's
register table, operation tables and simulation functions from it, and
the assembler/compiler are retargeted from the same description.
"""

from .behavior import BehaviorError, parse_behavior
from .builder import (
    b_type,
    i_type,
    j_type,
    load_type,
    lui_type,
    r_type,
    special_type,
    store_type,
)
from .kahrisma import (
    ISA_RISC,
    ISA_VLIW2,
    ISA_VLIW4,
    ISA_VLIW6,
    ISA_VLIW8,
    KAHRISMA,
    build_architecture,
)
from .model import (
    AdlError,
    Architecture,
    Field,
    Isa,
    Operation,
    Register,
    RegisterFile,
)
from .validate import check_architecture, validate_architecture

__all__ = [
    "AdlError",
    "Architecture",
    "BehaviorError",
    "Field",
    "Isa",
    "ISA_RISC",
    "ISA_VLIW2",
    "ISA_VLIW4",
    "ISA_VLIW6",
    "ISA_VLIW8",
    "KAHRISMA",
    "Operation",
    "Register",
    "RegisterFile",
    "b_type",
    "build_architecture",
    "check_architecture",
    "i_type",
    "j_type",
    "load_type",
    "lui_type",
    "parse_behavior",
    "r_type",
    "special_type",
    "store_type",
    "validate_architecture",
]
