"""The behaviour DSL embedded in ADL operation descriptions.

The paper's ADL contains, for each operation, a simulation source code
fragment in C++ from which TargetGen generates the simulation function
(Section V).  Our ADL embeds an equivalent fragment written in a small,
restricted Python subset.  This module defines *what* the DSL may
contain; :mod:`repro.targetgen.compile_behavior` lowers it to an
executable simulation function.

DSL vocabulary
--------------

Field names of the operation (``rd``, ``rs1``, ``imm`` ...) are bound to
their decoded values.  The following intrinsics are available:

======================  ====================================================
``R(n)``                read general-purpose register ``n`` (32-bit value)
``W(n, v)``             write ``v`` to register ``n`` (buffered until all
                        parallel operations of the instruction computed)
``M1/M2/M4(a)``         load a byte / half / word from memory address ``a``
``S1/S2/S4(a, v)``      store to memory (buffered like register writes)
``BR(off)``             branch: next IP = instruction end + ``off`` words
``JABS(a)``             jump to the absolute byte address ``a``
``NIP``                 byte address of the next sequential instruction
``IP``                  byte address of the current instruction
``SWITCH(i)``           activate ISA ``i`` (the ``SWITCHTARGET`` semantics)
``SIM(i)``              run emulated C-library function ``i`` (Section V-E)
``HALT()``              stop simulation
``s8/s16/s32(v)``       reinterpret ``v`` as a signed 8/16/32-bit value
``sdiv/srem(a, b)``     truncating signed division / remainder (by-zero
                        yields -1 / the dividend, like the hardware)
======================  ====================================================

Statements allowed: expression statements, assignments to plain local
names, ``if``/``elif``/``else`` and ``pass``.  Loops, imports, attribute
access, subscripts, lambdas and comprehensions are rejected so that a
behaviour fragment is trivially auditable and compilable.
"""

from __future__ import annotations

import ast
from typing import FrozenSet

from .model import AdlError

#: Intrinsics callable from behaviour fragments.
INTRINSIC_CALLS: FrozenSet[str] = frozenset(
    {
        "R", "W",
        "M1", "M2", "M4",
        "S1", "S2", "S4",
        "BR", "JABS", "SWITCH", "SIM", "HALT",
        "s8", "s16", "s32", "sdiv", "srem",
    }
)

#: Value intrinsics usable as plain names.
INTRINSIC_NAMES: FrozenSet[str] = frozenset({"IP", "NIP"})

_ALLOWED_STMT = (ast.Expr, ast.Assign, ast.If, ast.Pass)
_ALLOWED_EXPR = (
    ast.BinOp, ast.UnaryOp, ast.BoolOp, ast.Compare, ast.Call, ast.IfExp,
    ast.Name, ast.Constant, ast.Load, ast.Store,
    # operator tokens
    ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod,
    ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr, ast.BitXor,
    ast.USub, ast.Invert, ast.Not,
    ast.And, ast.Or,
    ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
    ast.expr_context,
)


class BehaviorError(AdlError):
    """Raised when a behaviour fragment uses a disallowed construct."""


def parse_behavior(op_name: str, source: str) -> ast.Module:
    """Parse and validate a behaviour fragment.

    Returns the parsed ``ast.Module``; raises :class:`BehaviorError` on
    any construct outside the DSL.
    """
    try:
        tree = ast.parse(source, filename=f"<behavior:{op_name}>", mode="exec")
    except SyntaxError as exc:
        raise BehaviorError(f"operation {op_name!r}: {exc}") from exc
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.arguments)):
            continue
        if isinstance(node, _ALLOWED_STMT):
            continue
        if isinstance(node, _ALLOWED_EXPR):
            continue
        raise BehaviorError(
            f"operation {op_name!r}: construct {type(node).__name__} is not "
            f"part of the behaviour DSL"
        )
    _check_names(op_name, tree)
    return tree


def _check_names(op_name: str, tree: ast.Module) -> None:
    """Reject calls to names that are neither intrinsics nor locals."""
    assigned = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    raise BehaviorError(
                        f"operation {op_name!r}: assignment targets must be "
                        f"plain names"
                    )
                assigned.add(target.id)
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if not isinstance(func, ast.Name) or func.id not in INTRINSIC_CALLS:
                raise BehaviorError(
                    f"operation {op_name!r}: only DSL intrinsics may be "
                    f"called"
                )


def behavior_reads_memory(source: str) -> bool:
    return any(intr in source for intr in ("M1(", "M2(", "M4("))


def behavior_writes_memory(source: str) -> bool:
    return any(intr in source for intr in ("S1(", "S2(", "S4("))
