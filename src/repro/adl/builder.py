"""Concise construction helpers for operation encodings.

The KAHRISMA reproduction uses five instruction-word formats; these
factory functions build :class:`~repro.adl.model.Operation` instances
with consistent field layouts so the concrete architecture description
(:mod:`repro.adl.kahrisma`) stays declarative and table-like.

Formats (bit 31 = MSB of the 32-bit operation word)::

    R-type    | opcode 31:24 | rd 23:19 | rs1 18:14 | rs2 13:9 | pad 8:0 |
    I-type    | opcode 31:24 | rd 23:19 | rs1 18:14 | imm14 13:0         |
    S-type    | opcode 31:24 | rt 23:19 | rs1 18:14 | imm14 13:0         |
    B-type    | opcode 31:24 | rs1 23:19 | rs2 18:14 | imm14 13:0        |
    J-type    | opcode 31:24 | imm24 23:0                                |
    LUI-type  | opcode 31:24 | rd 23:19 | pad 18 | imm18 17:0            |

Branch and jump immediates are signed offsets in *operation words*
relative to the end of the instruction.
"""

from __future__ import annotations

from typing import Tuple

from .model import Field, Operation, WORD_BYTES

OPCODE_HI, OPCODE_LO = 31, 24


def _opcode(value: int) -> Field:
    return Field("opcode", OPCODE_HI, OPCODE_LO, const=value, role="opcode")


def _reg(name: str, hi: int, role: str) -> Field:
    return Field(name, hi, hi - 4, role=role)


def r_type(
    name: str,
    opcode: int,
    behavior: str,
    *,
    kind: str = "alu",
    fu_class: str = "alu",
    delay: int = 1,
) -> Operation:
    """Three-register ALU operation: ``name rd, rs1, rs2``."""
    return Operation(
        name=name,
        size=WORD_BYTES,
        fields=(
            _opcode(opcode),
            _reg("rd", 23, "reg_dst"),
            _reg("rs1", 18, "reg_src"),
            _reg("rs2", 13, "reg_src"),
            Field("pad", 8, 0, const=0, role="pad"),
        ),
        behavior=behavior,
        src_fields=("rs1", "rs2"),
        dst_fields=("rd",),
        kind=kind,
        fu_class=fu_class,
        delay=delay,
        asm_operands=("rd", "rs1", "rs2"),
    )


def i_type(
    name: str,
    opcode: int,
    behavior: str,
    *,
    signed_imm: bool = True,
    kind: str = "alu",
    fu_class: str = "alu",
    delay: int = 1,
) -> Operation:
    """Register-immediate operation: ``name rd, rs1, imm``."""
    return Operation(
        name=name,
        size=WORD_BYTES,
        fields=(
            _opcode(opcode),
            _reg("rd", 23, "reg_dst"),
            _reg("rs1", 18, "reg_src"),
            Field("imm", 13, 0, signed=signed_imm, role="imm"),
        ),
        behavior=behavior,
        src_fields=("rs1",),
        dst_fields=("rd",),
        kind=kind,
        fu_class=fu_class,
        delay=delay,
        asm_operands=("rd", "rs1", "imm"),
    )


def load_type(name: str, opcode: int, behavior: str, *, delay: int = 1) -> Operation:
    """Memory load: ``name rd, imm(rs1)``."""
    return Operation(
        name=name,
        size=WORD_BYTES,
        fields=(
            _opcode(opcode),
            _reg("rd", 23, "reg_dst"),
            _reg("rs1", 18, "reg_src"),
            Field("imm", 13, 0, signed=True, role="imm"),
        ),
        behavior=behavior,
        src_fields=("rs1",),
        dst_fields=("rd",),
        kind="load",
        fu_class="mem",
        delay=delay,
        asm_operands=("rd", "imm(rs1)"),
    )


def store_type(name: str, opcode: int, behavior: str, *, delay: int = 1) -> Operation:
    """Memory store: ``name rt, imm(rs1)`` (rt is the value register)."""
    return Operation(
        name=name,
        size=WORD_BYTES,
        fields=(
            _opcode(opcode),
            _reg("rt", 23, "reg_src"),
            _reg("rs1", 18, "reg_src"),
            Field("imm", 13, 0, signed=True, role="imm"),
        ),
        behavior=behavior,
        src_fields=("rt", "rs1"),
        dst_fields=(),
        kind="store",
        fu_class="mem",
        delay=delay,
        asm_operands=("rt", "imm(rs1)"),
    )


def b_type(name: str, opcode: int, behavior: str) -> Operation:
    """Conditional branch: ``name rs1, rs2, offset``."""
    return Operation(
        name=name,
        size=WORD_BYTES,
        fields=(
            _opcode(opcode),
            _reg("rs1", 23, "reg_src"),
            _reg("rs2", 18, "reg_src"),
            Field("imm", 13, 0, signed=True, role="imm"),
        ),
        behavior=behavior,
        src_fields=("rs1", "rs2"),
        dst_fields=(),
        kind="branch",
        fu_class="ctrl",
        delay=1,
        asm_operands=("rs1", "rs2", "imm"),
    )


def j_type(
    name: str,
    opcode: int,
    behavior: str,
    *,
    implicit_writes: Tuple[int, ...] = (),
) -> Operation:
    """Unconditional jump with 24-bit word offset."""
    return Operation(
        name=name,
        size=WORD_BYTES,
        fields=(
            _opcode(opcode),
            Field("imm", 23, 0, signed=True, role="imm"),
        ),
        behavior=behavior,
        implicit_writes=implicit_writes,
        kind="branch",
        fu_class="ctrl",
        delay=1,
        asm_operands=("imm",),
    )


def lui_type(name: str, opcode: int, behavior: str) -> Operation:
    """Load upper immediate: ``name rd, imm18`` (rd = imm18 << 14)."""
    return Operation(
        name=name,
        size=WORD_BYTES,
        fields=(
            _opcode(opcode),
            _reg("rd", 23, "reg_dst"),
            Field("pad", 18, 18, const=0, role="pad"),
            Field("imm", 17, 0, role="imm"),
        ),
        behavior=behavior,
        dst_fields=("rd",),
        kind="alu",
        fu_class="alu",
        delay=1,
        asm_operands=("rd", "imm"),
    )


def special_type(
    name: str,
    opcode: int,
    behavior: str,
    *,
    kind: str,
    fu_class: str = "ctrl",
    delay: int = 1,
    with_imm: bool = False,
) -> Operation:
    """Operations with no or one immediate operand (nop/halt/switch/sim)."""
    fields = [_opcode(opcode)]
    operands: Tuple[str, ...] = ()
    if with_imm:
        fields.append(Field("pad", 23, 14, const=0, role="pad"))
        fields.append(Field("imm", 13, 0, role="imm"))
        operands = ("imm",)
    else:
        fields.append(Field("pad", 23, 0, const=0, role="pad"))
    return Operation(
        name=name,
        size=WORD_BYTES,
        fields=tuple(fields),
        behavior=behavior,
        kind=kind,
        fu_class=fu_class,
        delay=delay,
        asm_operands=operands,
    )
