"""Consistency checks for architecture descriptions.

TargetGen runs these before generating any simulator source: an ADL
error caught here is an error in *every* generated artefact, so the
checks are deliberately strict.
"""

from __future__ import annotations

from typing import List

from .behavior import parse_behavior
from .model import Architecture, AdlError, Isa, Operation


def validate_operation(op: Operation) -> List[str]:
    """Return a list of problems with a single operation (empty if OK)."""
    problems: List[str] = []
    covered = 0
    for f in op.fields:
        if covered & f.mask:
            problems.append(f"operation {op.name!r}: field {f.name!r} overlaps")
        covered |= f.mask
    if not any(f.const is not None for f in op.fields):
        problems.append(f"operation {op.name!r}: no constant field for detection")
    for fname in op.src_fields:
        if op.field(fname).role != "reg_src":
            problems.append(
                f"operation {op.name!r}: src field {fname!r} lacks reg_src role"
            )
    for fname in op.dst_fields:
        if op.field(fname).role != "reg_dst":
            problems.append(
                f"operation {op.name!r}: dst field {fname!r} lacks reg_dst role"
            )
    try:
        parse_behavior(op.name, op.behavior)
    except AdlError as exc:
        problems.append(str(exc))
    return problems


def validate_isa(isa: Isa) -> List[str]:
    """Check detection is unambiguous and operation names unique."""
    problems: List[str] = []
    names = [op.name for op in isa.operations]
    if len(set(names)) != len(names):
        problems.append(f"ISA {isa.name!r}: duplicate operation names")
    ops = isa.operations
    for i, a in enumerate(ops):
        problems.extend(validate_operation(a))
        for b in ops[i + 1:]:
            shared = a.const_mask & b.const_mask
            if (a.const_value & shared) == (b.const_value & shared):
                problems.append(
                    f"ISA {isa.name!r}: operations {a.name!r} and {b.name!r} "
                    f"are not distinguishable by their constant fields"
                )
    return problems


def validate_architecture(arch: Architecture) -> List[str]:
    problems: List[str] = []
    seen_ops = set()
    for isa in arch.isas:
        key = id(isa.operations)
        if key in seen_ops:
            continue  # shared operation tuple already validated
        seen_ops.add(key)
        problems.extend(validate_isa(isa))
    num_regs = len(arch.register_file)
    for isa in arch.isas:
        for op in isa.operations:
            for reg in op.implicit_reads + op.implicit_writes:
                if not (0 <= reg < num_regs):
                    problems.append(
                        f"operation {op.name!r}: implicit register {reg} "
                        f"out of range"
                    )
        break  # operations are shared; checking one ISA suffices
    return problems


def check_architecture(arch: Architecture) -> None:
    """Raise :class:`AdlError` listing every problem found."""
    problems = validate_architecture(arch)
    if problems:
        raise AdlError("; ".join(problems))
