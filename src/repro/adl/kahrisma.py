"""The concrete KAHRISMA architecture description.

One architecture, five ISAs in parallel (Section III / Figure 1): the
RISC instruction format and 2/4/6/8-issue VLIW formats.  All ISAs share
the operation set and the 32-entry register file; an n-issue VLIW
instruction is n consecutive operation words whose slots are executed
under the Dynamic Operation Execution model.

The operation set is a compact RISC-style ISA sufficient for compiled C
programs: 32-bit integer ALU, multiply/divide, byte/half/word memory
access, compare-and-branch, jumps, and the two KAHRISMA-specific
operations ``switchtarget`` (runtime ISA reconfiguration, Section V-D)
and ``simop`` (C standard library emulation, Section V-E).
"""

from __future__ import annotations

from .builder import (
    b_type,
    i_type,
    j_type,
    load_type,
    lui_type,
    r_type,
    special_type,
    store_type,
    _opcode,
    _reg,
)
from .model import (
    Architecture,
    Field,
    Isa,
    Operation,
    Register,
    RegisterFile,
    WORD_BYTES,
)

NUM_REGS = 32

#: Conventional register assignments (roles drive compiler and syscalls).
REG_ZERO = 0
REG_AT = 1
REG_RV = 2
REG_RV2 = 3
REG_ARG_FIRST, REG_ARG_LAST = 4, 7
REG_TMP_FIRST, REG_TMP_LAST = 8, 15
REG_SAVED_FIRST, REG_SAVED_LAST = 16, 23
REG_TMP2_FIRST, REG_TMP2_LAST = 24, 27
REG_GP = 28
REG_FP = 29
REG_SP = 30
REG_RA = 31

#: ISA identifiers, as used by the ``switchtarget`` operand.
ISA_RISC = 0
ISA_VLIW2 = 1
ISA_VLIW4 = 2
ISA_VLIW6 = 3
ISA_VLIW8 = 4

ISSUE_WIDTHS = {ISA_RISC: 1, ISA_VLIW2: 2, ISA_VLIW4: 4, ISA_VLIW6: 6, ISA_VLIW8: 8}
ISA_NAMES = {
    ISA_RISC: "risc",
    ISA_VLIW2: "vliw2",
    ISA_VLIW4: "vliw4",
    ISA_VLIW6: "vliw6",
    ISA_VLIW8: "vliw8",
}

#: Latencies of the functional units (cycles).
DELAY_ALU = 1
DELAY_MUL = 3
DELAY_DIV = 10
DELAY_MEM_ISSUE = 1  # base; the memory hierarchy adds the access delay


def _role(i: int) -> str:
    if i == REG_ZERO:
        return "zero"
    if i == REG_AT:
        return "at"
    if i in (REG_RV, REG_RV2):
        return "rv"
    if REG_ARG_FIRST <= i <= REG_ARG_LAST:
        return "arg"
    if REG_TMP_FIRST <= i <= REG_TMP_LAST or REG_TMP2_FIRST <= i <= REG_TMP2_LAST:
        return "tmp"
    if REG_SAVED_FIRST <= i <= REG_SAVED_LAST:
        return "saved"
    return {REG_GP: "gp", REG_FP: "fp", REG_SP: "sp", REG_RA: "ra"}[i]


REGISTER_FILE = RegisterFile(
    name="gpr",
    registers=tuple(Register(f"r{i}", i, _role(i)) for i in range(NUM_REGS)),
    zero_register=REG_ZERO,
)


def _jr(name: str, opcode: int, behavior: str, link: bool) -> Operation:
    fields = [_opcode(opcode)]
    if link:
        fields += [
            _reg("rd", 23, "reg_dst"),
            _reg("rs1", 18, "reg_src"),
            Field("pad", 13, 0, const=0, role="pad"),
        ]
        operands = ("rd", "rs1")
        dst = ("rd",)
    else:
        fields += [
            _reg("rs1", 23, "reg_src"),
            Field("pad", 18, 0, const=0, role="pad"),
        ]
        operands = ("rs1",)
        dst = ()
    return Operation(
        name=name,
        size=WORD_BYTES,
        fields=tuple(fields),
        behavior=behavior,
        src_fields=("rs1",),
        dst_fields=dst,
        kind="branch",
        fu_class="ctrl",
        delay=1,
        asm_operands=operands,
    )


OPERATIONS = (
    # --- no-operation / machine control -------------------------------
    special_type("nop", 0x00, "pass", kind="nop", fu_class="none"),
    special_type("halt", 0x3F, "HALT()", kind="halt"),
    special_type(
        "switchtarget", 0x3C, "SWITCH(imm)", kind="switch", with_imm=True
    ),
    special_type(
        "simop", 0x3D, "SIM(imm)", kind="simop", fu_class="none", with_imm=True
    ),
    # --- three-register ALU --------------------------------------------
    r_type("add", 0x01, "W(rd, R(rs1) + R(rs2))"),
    r_type("sub", 0x02, "W(rd, R(rs1) - R(rs2))"),
    r_type("and", 0x03, "W(rd, R(rs1) & R(rs2))"),
    r_type("or", 0x04, "W(rd, R(rs1) | R(rs2))"),
    r_type("xor", 0x05, "W(rd, R(rs1) ^ R(rs2))"),
    r_type("sll", 0x06, "W(rd, R(rs1) << (R(rs2) & 31))"),
    r_type("srl", 0x07, "W(rd, R(rs1) >> (R(rs2) & 31))"),
    r_type("sra", 0x08, "W(rd, s32(R(rs1)) >> (R(rs2) & 31))"),
    r_type("slt", 0x09, "W(rd, 1 if s32(R(rs1)) < s32(R(rs2)) else 0)"),
    r_type("sltu", 0x0A, "W(rd, 1 if R(rs1) < R(rs2) else 0)"),
    r_type(
        "mul", 0x0B, "W(rd, s32(R(rs1)) * s32(R(rs2)))",
        fu_class="mul", delay=DELAY_MUL,
    ),
    r_type(
        "mulh", 0x0C, "W(rd, (s32(R(rs1)) * s32(R(rs2))) >> 32)",
        fu_class="mul", delay=DELAY_MUL,
    ),
    r_type(
        "div", 0x0D, "W(rd, sdiv(R(rs1), R(rs2)))",
        fu_class="div", delay=DELAY_DIV,
    ),
    r_type(
        "rem", 0x0E, "W(rd, srem(R(rs1), R(rs2)))",
        fu_class="div", delay=DELAY_DIV,
    ),
    # --- register-immediate ALU ----------------------------------------
    i_type("addi", 0x10, "W(rd, R(rs1) + imm)"),
    i_type("andi", 0x11, "W(rd, R(rs1) & imm)", signed_imm=False),
    i_type("ori", 0x12, "W(rd, R(rs1) | imm)", signed_imm=False),
    i_type("xori", 0x13, "W(rd, R(rs1) ^ imm)", signed_imm=False),
    i_type("slli", 0x14, "W(rd, R(rs1) << (imm & 31))", signed_imm=False),
    i_type("srli", 0x15, "W(rd, R(rs1) >> (imm & 31))", signed_imm=False),
    i_type("srai", 0x16, "W(rd, s32(R(rs1)) >> (imm & 31))", signed_imm=False),
    i_type("slti", 0x17, "W(rd, 1 if s32(R(rs1)) < imm else 0)"),
    i_type(
        "sltiu", 0x18,
        "W(rd, 1 if R(rs1) < (imm & 4294967295) else 0)",
        signed_imm=False,
    ),
    lui_type("lui", 0x19, "W(rd, imm << 14)"),
    # --- memory ----------------------------------------------------------
    load_type("lw", 0x20, "W(rd, M4(R(rs1) + imm))", delay=DELAY_MEM_ISSUE),
    load_type("lh", 0x21, "W(rd, s16(M2(R(rs1) + imm)))", delay=DELAY_MEM_ISSUE),
    load_type("lhu", 0x22, "W(rd, M2(R(rs1) + imm))", delay=DELAY_MEM_ISSUE),
    load_type("lb", 0x23, "W(rd, s8(M1(R(rs1) + imm)))", delay=DELAY_MEM_ISSUE),
    load_type("lbu", 0x24, "W(rd, M1(R(rs1) + imm))", delay=DELAY_MEM_ISSUE),
    store_type("sw", 0x25, "S4(R(rs1) + imm, R(rt))", delay=DELAY_MEM_ISSUE),
    store_type("sh", 0x26, "S2(R(rs1) + imm, R(rt))", delay=DELAY_MEM_ISSUE),
    store_type("sb", 0x27, "S1(R(rs1) + imm, R(rt))", delay=DELAY_MEM_ISSUE),
    # --- control flow ----------------------------------------------------
    b_type("beq", 0x30, "if R(rs1) == R(rs2): BR(imm)"),
    b_type("bne", 0x31, "if R(rs1) != R(rs2): BR(imm)"),
    b_type("blt", 0x32, "if s32(R(rs1)) < s32(R(rs2)): BR(imm)"),
    b_type("bge", 0x33, "if s32(R(rs1)) >= s32(R(rs2)): BR(imm)"),
    b_type("bltu", 0x34, "if R(rs1) < R(rs2): BR(imm)"),
    b_type("bgeu", 0x35, "if R(rs1) >= R(rs2): BR(imm)"),
    j_type("j", 0x38, "BR(imm)"),
    j_type("jal", 0x39, "W(31, NIP)\nBR(imm)", implicit_writes=(REG_RA,)),
    _jr("jr", 0x3A, "JABS(R(rs1))", link=False),
    _jr("jalr", 0x3B, "W(rd, NIP)\nJABS(R(rs1))", link=True),
)


def _make_isa(ident: int) -> Isa:
    width = ISSUE_WIDTHS[ident]
    return Isa(
        ident=ident,
        name=ISA_NAMES[ident],
        issue_width=width,
        operations=OPERATIONS,
        resources=width,
    )


def build_architecture() -> Architecture:
    """Construct the full KAHRISMA architecture description."""
    return Architecture(
        name="kahrisma",
        register_file=REGISTER_FILE,
        isas=tuple(_make_isa(i) for i in sorted(ISSUE_WIDTHS)),
        default_isa=ISA_RISC,
    )


#: Module-level singleton; the description is immutable.
KAHRISMA = build_architecture()
