"""Parallel interval simulation over checkpoint shards.

Cycle-approximate simulation is orders of magnitude slower than purely
functional emulation (the cycle model observes every instruction).
This module exploits that gap: a cheap functional pass fast-forwards
through the program and drops a checkpoint at every shard boundary,
then each interval is simulated *with* the expensive cycle model in a
separate worker process, and the per-shard statistics are merged into
one result.

Because the simulator is fully deterministic (``docs/checkpointing.md``),
the shards re-execute exactly the instruction stream the functional
pass saw, so the merged *architectural* statistics are bitwise-equal to
an uninterrupted run.  Cycle counts are an approximation: each shard's
cycle model starts cold (empty caches, reset slot drift, reset branch
predictor), so the summed cycles differ from a straight run by the
warm-up transient at each boundary — small for shard intervals that
are long relative to cache warm-up, and quantified in
``docs/checkpointing.md``.

Worker processes receive only checkpoint *paths* plus a small model
spec: a checkpoint is a complete run description, so workers never need
the ELF.  Only the bundled KAHRISMA architecture is supported (the
architecture is rebuilt by name inside each worker; generated simulator
functions are not picklable).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.stats import SimStats
from ..telemetry.collect import SCHEMA_NAME, SCHEMA_VERSION, collect_run_metrics
from .pipeline import DEFAULT_MAX_INSTRUCTIONS, BuildResult

#: Worker-side engine/model names are plain strings so the spec dicts
#: pickle under any multiprocessing start method.
_FAST_ENGINE = "superblock"


def make_branch_model(name: Optional[str], penalty: int = 3):
    """Branch-model factory shared by the CLI and the shard workers."""
    if name is None or name == "perfect":
        return None
    from ..cycles.branch import (
        BimodalPredictor,
        BranchModel,
        GsharePredictor,
        NotTakenPredictor,
    )

    predictors = {
        "not-taken": NotTakenPredictor,
        "bimodal": BimodalPredictor,
        "gshare": GsharePredictor,
    }
    if name not in predictors:
        raise ValueError(f"unknown branch predictor {name!r}")
    return BranchModel(predictors[name](), penalty=penalty)


def make_cycle_model(name: Optional[str], issue_width: int,
                     branch_model=None):
    """Cycle-model factory shared by the CLI and the shard workers."""
    if name is None or name == "none":
        return None
    if name == "ilp":
        from ..cycles.ilp import IlpModel

        return IlpModel()
    if name == "aie":
        from ..cycles.aie import AieModel

        return AieModel(branch_model=branch_model)
    if name == "doe":
        from ..cycles.doe import DoeModel

        return DoeModel(issue_width=issue_width, branch_model=branch_model)
    if name == "rtl":
        from ..rtl.pipeline import RtlPipeline

        return RtlPipeline(issue_width=issue_width, branch_model=branch_model)
    raise ValueError(f"unknown cycle model {name!r}")


@dataclass
class ShardPlan:
    """Result of the functional fast-forward pass."""

    #: Shard start points in executed instructions; ``boundaries[0]``
    #: is 0 and every shard ``i`` runs ``[boundaries[i], boundaries[i+1])``
    #: (the last one runs to program halt).
    boundaries: List[int]
    #: One checkpoint file per boundary, same order.
    checkpoints: List[str]
    #: Whole-program instruction count measured by the counting pass.
    total_instructions: int


def plan_shards(
    built: BuildResult,
    *,
    shards: int,
    directory: str,
    input_data: bytes = b"",
    isa_id: Optional[int] = None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    plan_cache=None,
) -> ShardPlan:
    """Fast-forward functionally and checkpoint every shard boundary.

    Two passes with the cheap functional interpreter: the first counts
    the program's total instructions, the second stops at each boundary
    ``total*i/shards`` and writes a checkpoint there.  Boundaries that
    collide (program shorter than the shard count) are deduplicated, so
    the plan may come back with fewer shards than requested.

    ``plan_cache`` (a :class:`~repro.sim.plancache.PlanCache`) lets the
    second pass — and any warm re-run — reuse the first pass's
    superblock translations instead of recompiling every hot plan.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    from ..binutils.loader import load_executable
    from ..sim.interpreter import Interpreter
    from ..snapshot import IncrementalPageEncoder, snapshot_run, write_checkpoint
    from ..snapshot.runner import checkpoint_path

    os.makedirs(directory, exist_ok=True)

    def fresh():
        program = load_executable(
            built.elf, built.arch, isa_id=isa_id, input_data=input_data
        )
        interp = Interpreter(
            program.state, engine=_FAST_ENGINE, plan_cache=plan_cache
        )
        return program, interp

    program, interp = fresh()
    interp.run(max_instructions=max_instructions)
    if not program.state.halted:
        raise ValueError(
            f"program did not halt within {max_instructions} instructions; "
            f"cannot shard an unbounded run"
        )
    total = interp.stats.executed_instructions

    boundaries = sorted({total * i // shards for i in range(shards)})
    program, interp = fresh()
    encoder = IncrementalPageEncoder()
    paths: List[str] = []
    for boundary in boundaries:
        done = interp.stats.executed_instructions
        if boundary > done:
            interp.run(max_instructions=boundary - done)
        payload = snapshot_run(
            program.state, program.syscalls,
            stats=interp.stats,
            memory_encoder=encoder,
            meta={"instructions": boundary, "shard_of": total},
        )
        path = checkpoint_path(directory, boundary, prefix="shard")
        write_checkpoint(path, payload)
        paths.append(path)
    return ShardPlan(boundaries=boundaries, checkpoints=paths,
                     total_instructions=total)


def _run_shard(spec: Dict[str, object]) -> Dict[str, object]:
    """Worker: simulate one interval with the expensive cycle model.

    Module-level so it imports cleanly under the ``spawn`` start
    method; everything in ``spec`` and in the returned dict is
    picklable (paths, ints, strings, ``SimStats``).
    """
    from ..adl.kahrisma import KAHRISMA
    from ..sim.interpreter import Interpreter
    from ..snapshot import read_checkpoint, restore_run

    branch = make_branch_model(
        spec.get("branch_predictor"), spec.get("branch_penalty", 3)
    )
    model = make_cycle_model(
        spec.get("model"), int(spec["issue_width"]), branch
    )
    plan_cache = None
    cache_spec = spec.get("plan_cache")
    if cache_spec is not None:
        # Workers never see the ELF, so the parent ships the digests;
        # every worker of a warm run then reloads the same translated
        # plans instead of recompiling them per shard.
        from ..sim.plancache import PlanCache

        plan_cache = PlanCache.open(
            elf_digest=str(cache_spec["elf"]),
            arch_digest=str(cache_spec["arch"]),
            directory=cache_spec.get("dir"),
        )
    payload = read_checkpoint(str(spec["checkpoint"]))
    restored = restore_run(payload, KAHRISMA, cycle_model=model)
    prefix = len(restored.syscalls.save_state()["stdout"])
    events = None
    events_spec = spec.get("events")
    if events_spec is not None:
        # Buffered (sink-less) stream: the event dicts are picklable
        # and shipped back to the coordinator, which re-sequences them
        # into the merged stream tagged with this shard's index.
        from ..telemetry.stream import EventStream

        events = EventStream(
            heartbeat_every=int(events_spec["heartbeat_every"]),
            shard=int(spec["shard"]),
        )
    budget = spec.get("budget")
    budget = DEFAULT_MAX_INSTRUCTIONS if budget is None else int(budget)
    sampling_spec = spec.get("sampling")
    if sampling_spec is not None:
        # Sampled shard: the schedule is local to the shard's segment
        # (its model cold-starts at the boundary anyway — see the
        # shard accuracy caveat in docs/checkpointing.md), with a
        # per-shard seed so shards don't all measure the same phase
        # of a loop that happens to align with the boundaries.
        from types import SimpleNamespace

        from .sampling import SamplingConfig, run_sampled

        outcome = run_sampled(
            SimpleNamespace(state=restored.state),
            model,
            SamplingConfig.from_doc(sampling_spec),
            engine=str(spec["engine"]),
            max_instructions=budget,
            plan_cache=plan_cache,
            events=events,
        )
        stdout = restored.syscalls.save_state()["stdout"]
        return {
            "shard": spec["shard"],
            "stats": outcome.stats,
            # Measured-interval cycles only (the model's running count
            # is reset at every warm-up boundary, so ``model.cycles``
            # would be the last region's residual, not a total).
            "cycles": outcome.result.cycles_sampled,
            "sampling": outcome.result.to_doc(),
            "metrics": collect_run_metrics(
                outcome.fast, model, stats=outcome.stats
            ),
            "stdout_delta": stdout[prefix:],
            "exit_code": restored.state.exit_code,
            "halted": restored.state.halted,
            "events": events.events if events is not None else None,
        }
    interp = Interpreter(
        restored.state, cycle_model=model, engine=str(spec["engine"]),
        plan_cache=plan_cache, events=events,
    )
    interp.run(max_instructions=budget)
    stdout = restored.syscalls.save_state()["stdout"]
    return {
        "shard": spec["shard"],
        "stats": interp.stats,
        "cycles": model.cycles if model is not None else None,
        "metrics": collect_run_metrics(interp, model),
        "stdout_delta": stdout[prefix:],
        "exit_code": restored.state.exit_code,
        "halted": restored.state.halted,
        "events": events.events if events is not None else None,
    }


#: Metric keys that describe configuration, not accumulated work —
#: merged by taking the first shard's value instead of summing.
_CONFIG_SUFFIXES = (".delay", ".ports", ".penalty")
#: Point-in-time occupancy gauges (decode/plan/AOT table sizes):
#: summing them across shards double-counts structures each worker
#: rebuilds independently, so the merge takes the maximum instead.
_GAUGE_SUFFIXES = (
    ".decode.entries", ".plans_live", ".plancache.entries",
    ".entries_total", ".entries_bound", ".entries_stale",
    ".traces_total", ".traces_bound", ".invalidation_version",
)
#: Derived ratios are dropped during the sum and recomputed afterwards
#: where the inputs are available.
_DERIVED_SUFFIXES = (
    "_rate", "_avoidance", "_fraction", "ops_per_cycle", "mips",
)


def merge_metric_dicts(dicts: List[Dict[str, object]]) -> Dict[str, object]:
    """Fold per-shard metric dicts into whole-run metrics.

    Counters sum; configuration values and non-numeric entries take the
    first shard's value; exit code takes the last shard's; derived
    ratios are recomputed from the merged counters.
    """
    merged: Dict[str, object] = {}
    for d in dicts:
        for key, value in d.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                merged.setdefault(key, value)
                continue
            if key == "sim.exit_code":
                merged[key] = value
                continue
            if key.endswith(_CONFIG_SUFFIXES):
                merged.setdefault(key, value)
                continue
            if key.endswith(_GAUGE_SUFFIXES):
                merged[key] = max(merged.get(key, 0), value)
                continue
            if key.endswith(_DERIVED_SUFFIXES):
                continue
            merged[key] = merged.get(key, 0) + value

    def ratio(num, den):
        return num / den if den else 0.0

    get = merged.get
    if "sim.executed_instructions" in merged:
        instructions = get("sim.executed_instructions", 0)
        merged["sim.mips"] = ratio(
            instructions / 1e6, get("sim.elapsed_seconds", 0.0)
        )
        merged["sim.memory_instruction_fraction"] = ratio(
            get("sim.memory_instructions", 0), instructions
        )
        merged["sim.decode.decode_avoidance"] = 1.0 - ratio(
            get("sim.decode.decoded_instructions", 0), instructions
        )
        merged["sim.decode.lookup_avoidance"] = 1.0 - ratio(
            get("sim.decode.lookups", 0), instructions
        )
    for key in list(merged):
        if key.endswith(".hits") and key.startswith("mem.cache."):
            base = key[: -len("hits")]
            merged[base + "miss_rate"] = ratio(
                get(base + "misses", 0), get(base + "accesses", 0)
            )
    if "sim.superblock.blocks_executed" in merged:
        merged["sim.superblock.chain_hit_rate"] = ratio(
            get("sim.superblock.chain_hits", 0),
            get("sim.superblock.blocks_executed", 0),
        )
    for key in list(merged):
        if key.startswith("cycles.") and key.endswith(".cycles"):
            base = key[: -len("cycles")]
            merged[base + "ops_per_cycle"] = ratio(
                get(base + "ops", 0), merged[key]
            )
    return dict(sorted(merged.items()))


@dataclass
class ParallelResult:
    """Merged outcome of a sharded cycle-model run."""

    stats: SimStats
    output: str
    exit_code: int
    #: Sum of the per-shard cycle counts (None for functional runs).
    #: An approximation — each shard's model starts cold; see module
    #: docstring and ``docs/checkpointing.md``.
    cycles: Optional[int]
    plan: ShardPlan
    #: Raw per-shard worker results, in shard order.
    shard_results: List[Dict[str, object]] = field(default_factory=list)
    #: Merged telemetry document (``kahrisma-telemetry`` schema).
    telemetry: Optional[dict] = None
    #: Merged :class:`repro.framework.sampling.SamplingResult` when the
    #: shards ran under the sampling tier; per-shard estimates add and
    #: CI widths combine in quadrature.  :attr:`cycles` then counts
    #: only the measured intervals.
    sampling: object = None

    @property
    def metrics(self) -> Optional[Dict[str, object]]:
        if self.telemetry is None:
            return None
        return self.telemetry.get("metrics")


def run_parallel(
    built: BuildResult,
    *,
    shards: int,
    model: Optional[str] = "doe",
    branch_predictor: Optional[str] = None,
    branch_penalty: int = 3,
    engine: str = "superblock",
    checkpoint_dir: Optional[str] = None,
    input_data: bytes = b"",
    isa_id: Optional[int] = None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    processes: Optional[int] = None,
    workload: Optional[str] = None,
    keep_checkpoints: bool = False,
    use_plan_cache: bool = True,
    plan_cache_dir: Optional[str] = None,
    events=None,
    sampling=None,
) -> ParallelResult:
    """Fast-forward, shard, and simulate the intervals in parallel.

    ``model``/``branch_predictor`` name the cycle model each worker
    builds (strings, because workers live in other processes);
    ``checkpoint_dir`` defaults to a temporary directory that is
    removed afterwards unless ``keep_checkpoints`` is set.  Workers run
    via ``multiprocessing`` (``fork`` start method when the platform
    offers it); ``processes`` caps the pool (default: one per shard, at
    most the CPU count).

    With ``use_plan_cache`` (default) the fast-forward pass and every
    worker share the persistent superblock translation cache
    (``plan_cache_dir`` overrides its location): warm runs skip plan
    translation entirely — visible as ``sim.superblock.plan_cache_hits``
    in the merged telemetry.

    ``events`` (a :class:`repro.telemetry.stream.EventStream`) makes
    the sharded run observable: the coordinator emits run-start /
    run-end, each worker records its own heartbeat/syscall/ISA-switch
    events into a buffered per-shard stream, and the buffers are merged
    into the coordinator stream (tagged with their shard index) as
    results arrive.
    """
    import shutil
    import tempfile

    # Validate the spec before paying for the fast-forward pass.
    probe = make_cycle_model(
        model, built.issue_width,
        make_branch_model(branch_predictor, branch_penalty),
    )
    sampling_config = None
    if sampling is not None:
        from .sampling import SamplingConfig

        sampling_config = SamplingConfig.coerce(sampling)
        if probe is None or not hasattr(probe, "reset_timing"):
            raise ValueError(
                f"sampling requires a detailed cycle model (aie/doe), "
                f"got {model!r}"
            )

    plan_cache = None
    cache_spec = None
    if use_plan_cache:
        import hashlib

        from ..targetgen.codegen import architecture_digest
        from .pipeline import open_plan_cache

        plan_cache = open_plan_cache(built, directory=plan_cache_dir)
        cache_spec = {
            "elf": hashlib.sha256(built.elf.write()).hexdigest()[:16],
            "arch": architecture_digest(built.arch),
            "dir": plan_cache_dir,
        }

    if events is not None:
        events.emit(
            "run-start",
            workload=workload,
            engine=engine,
            model=None if model == "none" else model,
            heartbeat_every=events.heartbeat_every,
            shards=shards,
        )
    own_dir = None
    if checkpoint_dir is None:
        checkpoint_dir = tempfile.mkdtemp(prefix="kahrisma-shards-")
        own_dir = checkpoint_dir
    try:
        plan = plan_shards(
            built, shards=shards, directory=checkpoint_dir,
            input_data=input_data, isa_id=isa_id,
            max_instructions=max_instructions,
            plan_cache=plan_cache,
        )
        ends = plan.boundaries[1:] + [plan.total_instructions]
        specs = [
            {
                "shard": i,
                "checkpoint": plan.checkpoints[i],
                "budget": ends[i] - plan.boundaries[i],
                "engine": engine,
                "model": model,
                "branch_predictor": branch_predictor,
                "branch_penalty": branch_penalty,
                "issue_width": built.issue_width,
                "plan_cache": cache_spec,
                "sampling": (
                    {**sampling_config.to_doc(),
                     "seed": sampling_config.seed + i}
                    if sampling_config is not None else None
                ),
                "events": (
                    {"heartbeat_every": events.heartbeat_every}
                    if events is not None else None
                ),
            }
            for i in range(len(plan.boundaries))
        ]
        if len(specs) == 1 or processes == 1:
            results = [_run_shard(spec) for spec in specs]
        else:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            workers = min(
                len(specs),
                processes if processes else (os.cpu_count() or 1),
            )
            with ctx.Pool(processes=workers) as pool:
                results = pool.map(_run_shard, specs)
    finally:
        if own_dir is not None and not keep_checkpoints:
            shutil.rmtree(own_dir, ignore_errors=True)

    results.sort(key=lambda r: r["shard"])
    merged = SimStats()
    for result in results:
        merged.merge(result["stats"])
    if events is not None:
        from ..telemetry.stream import merge_shard_events

        merge_shard_events(
            events, [r.get("events") for r in results]
        )
    last = results[-1]
    if not last["halted"]:
        raise RuntimeError(
            "final shard did not halt — shard replay diverged from the "
            "functional pass (this indicates a determinism bug)"
        )
    output = b"".join(
        bytes(result["stdout_delta"]) for result in results
    ).decode("utf-8", errors="replace")
    cycles = None
    if model is not None and model != "none":
        cycles = sum(int(result["cycles"]) for result in results)
    merged_sampling = None
    if sampling_config is not None:
        from .sampling import SamplingResult, merge_sampling_results

        merged_sampling = merge_sampling_results([
            SamplingResult.from_doc(r["sampling"]) for r in results
        ])
    telemetry = {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "engine": engine,
        "model": None if model == "none" else model,
        "workload": workload,
        "shards": len(results),
        "shard_boundaries": list(plan.boundaries),
        "metrics": merge_metric_dicts([r["metrics"] for r in results]),
    }
    if merged_sampling is not None:
        telemetry["cycles_estimated"] = merged_sampling.cycles_estimated
        telemetry["cycles_ci95"] = merged_sampling.cycles_ci95
        telemetry["sampling"] = merged_sampling.block()
    if events is not None:
        events.emit(
            "run-end",
            instructions=merged.executed_instructions,
            exit_code=int(last["exit_code"]),
            elapsed_seconds=round(merged.elapsed_seconds, 6),
            mips=round(merged.mips, 3),
            halted=bool(last["halted"]),
        )
    return ParallelResult(
        stats=merged,
        output=output,
        exit_code=int(last["exit_code"]),
        cycles=cycles,
        plan=plan,
        shard_results=results,
        telemetry=telemetry,
        sampling=merged_sampling,
    )
