"""Function-granularity ISA selection using the ILP indicator.

The paper's motivation (Sections I, VIII): the reconfigurable
instruction format raises the problem of selecting an appropriate ISA
per function of an application, and the theoretical ILP measurement is
the proposed indicator — it avoids simulating every (ISA, application)
combination.

This module implements that envisioned flow:

1. run the application once on the RISC ISA with the ILP model,
   attributing ops/cycles to functions (address ranges from the debug
   information);
2. for each function, estimate the speedup of each issue width as
   ``min(width, ILP_f)`` and choose the narrowest width that reaches a
   configurable fraction of the best achievable speedup — wider
   formats cost EDPE resources (Figure 1), so "wide enough" wins;
3. charge a reconfiguration overhead per ISA switch: functions whose
   per-call work is small compared to the switch cost inherit their
   caller's ISA rather than forcing reconfigurations.

The result is an ``isa_map`` directly usable with
:func:`repro.framework.pipeline.build`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..adl.kahrisma import KAHRISMA
from ..adl.model import Architecture
from ..binutils.loader import load_executable
from ..cycles.ilp import IlpModel
from ..sim.interpreter import Interpreter
from .pipeline import BuildResult, build

DEFAULT_WIDTH_ISAS = {1: "risc", 2: "vliw2", 4: "vliw4", 6: "vliw6", 8: "vliw8"}


def demangle(symbol: str) -> str:
    """``$risc$main`` → ``main``."""
    if symbol.startswith("$"):
        parts = symbol.split("$", 2)
        if len(parts) == 3:
            return parts[2]
    return symbol


@dataclass
class FunctionProfile:
    """Per-function measurement from the attribution run."""

    name: str
    instructions: int = 0
    ops: int = 0
    cycles: int = 0
    calls: int = 0

    @property
    def ilp(self) -> float:
        """Theoretical ILP of this function (the selection indicator)."""
        return self.ops / self.cycles if self.cycles else 0.0

    @property
    def ops_per_call(self) -> float:
        return self.ops / self.calls if self.calls else float(self.ops)


class FunctionAttributor:
    """Cycle-model wrapper attributing model-cycle growth to functions.

    Works with any model whose ``cycles`` is monotone in observations
    (ILP, AIE, DOE all are).
    """

    def __init__(self, model, functions) -> None:
        self.model = model
        ranges = sorted(functions, key=lambda f: f.start)
        self._starts = [f.start for f in ranges]
        self._ranges = ranges
        self.profiles: Dict[str, FunctionProfile] = {
            f.name: FunctionProfile(name=f.name) for f in ranges
        }
        self._fallback = FunctionProfile(name="<unknown>")
        self.profiles["<unknown>"] = self._fallback

    def _profile_at(self, addr: int) -> Tuple[FunctionProfile, bool]:
        pos = bisect.bisect_right(self._starts, addr) - 1
        if pos >= 0:
            fn = self._ranges[pos]
            if addr < fn.end:
                return self.profiles[fn.name], addr == fn.start
        return self._fallback, False

    def observe(self, dec, regs) -> None:
        before = self.model.cycles
        self.model.observe(dec, regs)
        delta = self.model.cycles - before
        profile, is_entry = self._profile_at(dec.addr)
        profile.instructions += 1
        profile.ops += dec.n_exec
        profile.cycles += delta
        if is_entry:
            profile.calls += 1

    @property
    def cycles(self) -> int:
        return self.model.cycles

    def sorted_profiles(self) -> List[FunctionProfile]:
        return sorted(
            self.profiles.values(), key=lambda p: p.cycles, reverse=True
        )


@dataclass
class FunctionChoice:
    function: str
    ilp: float
    cycle_share: float
    ops_per_call: float
    width: int
    isa: str
    reason: str


@dataclass
class SelectionReport:
    """Everything the selection produced, plus the usable isa_map."""

    choices: List[FunctionChoice]
    isa_map: Dict[str, str]
    total_cycles: int
    profiles: List[FunctionProfile] = field(default_factory=list)

    def format(self) -> str:
        lines = [
            f"{'function':<20} {'ILP':>6} {'share':>7} {'ops/call':>9} "
            f"{'ISA':>7}  reason",
            "-" * 72,
        ]
        for choice in self.choices:
            lines.append(
                f"{choice.function:<20} {choice.ilp:>6.2f} "
                f"{choice.cycle_share * 100:>6.1f}% "
                f"{choice.ops_per_call:>9.1f} {choice.isa:>7}  "
                f"{choice.reason}"
            )
        return "\n".join(lines)


def profile_functions(
    built: BuildResult,
    *,
    model=None,
    max_instructions: int = 100_000_000,
) -> FunctionAttributor:
    """Run the application once, attributing cycles per function."""
    program = load_executable(built.elf, built.arch)
    attributor = FunctionAttributor(
        model if model is not None else IlpModel(),
        program.debug_info.functions,
    )
    Interpreter(program.state, cycle_model=attributor).run(
        max_instructions=max_instructions
    )
    return attributor


def select_isas(
    source: str,
    *,
    arch: Architecture = KAHRISMA,
    widths: Sequence[int] = (1, 2, 4, 6, 8),
    speedup_threshold: float = 0.9,
    reconfig_cost_ops: float = 64.0,
    filename: str = "<kc>",
    entry: str = "main",
) -> SelectionReport:
    """Select an ISA per function from one RISC profiling run.

    ``speedup_threshold``: fraction of the best estimated speedup a
    narrower width must reach to be preferred (resource efficiency).
    ``reconfig_cost_ops``: functions doing less work per call than this
    stay on the default ISA — an ISA switch would cost more than it
    gains (the paper's reconfiguration-overhead concern).
    """
    built = build(source, arch=arch, isa="risc", filename=filename,
                  entry=entry)
    attributor = profile_functions(built)
    total = max(attributor.cycles, 1)

    width_isas = {
        w: name for w, name in DEFAULT_WIDTH_ISAS.items() if w in set(widths)
    }
    max_width = max(width_isas)

    choices: List[FunctionChoice] = []
    isa_map: Dict[str, str] = {}
    for profile in attributor.sorted_profiles():
        name = demangle(profile.name)
        if profile.name == "<unknown>" or profile.instructions == 0:
            continue
        if name not in _user_functions(built):
            continue  # libc stubs and thunks are not selectable
        ilp = profile.ilp
        best_speedup = min(max_width, ilp) if ilp else 1.0
        chosen_width = max_width
        for width in sorted(width_isas):
            estimated = min(width, ilp) if ilp else 1.0
            if estimated >= speedup_threshold * best_speedup:
                chosen_width = width
                break
        reason = f"ILP {ilp:.2f} -> width {chosen_width}"
        if (
            chosen_width > 1
            and profile.ops_per_call < reconfig_cost_ops
            and name != entry
        ):
            chosen_width = 1
            reason = (
                f"ILP {ilp:.2f} but only {profile.ops_per_call:.0f} "
                f"ops/call < reconfiguration cost"
            )
        isa = width_isas[chosen_width]
        choices.append(
            FunctionChoice(
                function=name,
                ilp=ilp,
                cycle_share=profile.cycles / total,
                ops_per_call=profile.ops_per_call,
                width=chosen_width,
                isa=isa,
                reason=reason,
            )
        )
        isa_map[name] = isa

    return SelectionReport(
        choices=choices,
        isa_map=isa_map,
        total_cycles=attributor.cycles,
        profiles=attributor.sorted_profiles(),
    )


def _user_functions(built: BuildResult) -> Dict[str, str]:
    return {
        name: symbol
        for name, (_isa, symbol) in built.compile_result.functions.items()
    }
