"""One-call build/run pipeline over the whole toolchain.

Mirrors the paper's framework flow (Figure 2): C source → compiler →
assembler → linker → ELF executable → cycle-approximate simulation.
This is the primary public API of the reproduction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..adl.kahrisma import KAHRISMA
from ..adl.model import Architecture
from ..binutils.assembler import Assembler
from ..binutils.elf import ElfFile
from ..binutils.linker import LinkInfo, link
from ..binutils.loader import LoadedProgram, load_executable
from ..lang.driver import CompileResult, compile_mixed, compile_source
from ..programs import load_program
from ..sim.interpreter import Interpreter
from ..sim.stats import SimStats
from ..sim.tracing import Tracer

DEFAULT_MAX_INSTRUCTIONS = 100_000_000


@dataclass
class BuildResult:
    """A linked executable plus everything known about it."""

    elf: ElfFile
    link_info: LinkInfo
    compile_result: CompileResult
    arch: Architecture

    @property
    def entry_symbol(self) -> str:
        return self.compile_result.entry_symbol

    @property
    def entry_isa(self) -> int:
        return self.compile_result.entry_isa

    @property
    def issue_width(self) -> int:
        return self.arch.isa(self.entry_isa).issue_width


@dataclass
class RunResult:
    """Outcome of one simulation."""

    output: str
    stats: SimStats
    program: LoadedProgram
    cycle_model: object = None
    tracer: Optional[Tracer] = None
    #: Telemetry run report (``repro.telemetry`` document) when the
    #: run was invoked with ``collect_metrics=True``; None otherwise.
    telemetry: Optional[dict] = None
    #: The profiler passed to :func:`run`, for post-run inspection.
    profiler: object = None
    #: The timeline recorder passed to :func:`run`.
    timeline: object = None
    #: Checkpoint files written when the run was invoked with
    #: ``checkpoint_every`` (in instruction order); empty otherwise.
    checkpoints: List[str] = field(default_factory=list)
    #: The interpreter that executed the run (engine counters such as
    #: ``superblock.translations`` / ``plan_cache_hits`` live here).
    interpreter: object = None
    #: True when the run stopped because the ``cancel`` hook fired
    #: (``docs/serving.md``); the architectural state is then mid-run.
    cancelled: bool = False
    #: Resumable checkpoint written on cancellation when the run was
    #: invoked with ``cancel_checkpoint_dir``; None otherwise.
    cancel_checkpoint: Optional[str] = None
    #: :class:`repro.framework.sampling.SamplingResult` when the run
    #: used the statistical-sampling tier (``sampling=...``); the
    #: extrapolated cycle estimate and CI live here, while
    #: :attr:`cycles` then covers only the measured intervals.
    sampling: object = None

    @property
    def cycles(self) -> Optional[int]:
        if self.cycle_model is None:
            return None
        return self.cycle_model.cycles

    @property
    def exit_code(self) -> int:
        return self.program.state.exit_code

    @property
    def metrics(self) -> Optional[Dict[str, object]]:
        """Flat metric dict of the telemetry report (or None)."""
        if self.telemetry is None:
            return None
        return self.telemetry.get("metrics")


def build(
    source: str,
    *,
    arch: Architecture = KAHRISMA,
    isa: str = "risc",
    isa_map: Optional[Dict[str, str]] = None,
    filename: str = "<kc>",
    optimize_ir: bool = True,
    entry: str = "main",
) -> BuildResult:
    """Compile, assemble and link one KC source file.

    ``isa`` sets the ISA for every function; ``isa_map`` overrides it
    per function (cross-ISA calls get switchtarget thunks).
    """
    if isa_map:
        compiled = compile_mixed(
            source, arch, isa_map=isa_map, default_isa=isa,
            filename=filename, optimize_ir=optimize_ir, entry=entry,
        )
    else:
        compiled = compile_source(
            source, arch, isa=isa, filename=filename,
            optimize_ir=optimize_ir, entry=entry,
        )
    asm_name = filename.replace(".kc", ".s") if filename else "<asm>"
    obj = Assembler(arch).assemble(compiled.assembly, asm_name)
    elf, info = link(
        [obj], arch,
        entry_symbol=compiled.entry_symbol,
        entry_isa=compiled.entry_isa,
    )
    return BuildResult(elf=elf, link_info=info, compile_result=compiled,
                       arch=arch)


def build_benchmark(
    name: str,
    *,
    arch: Architecture = KAHRISMA,
    isa: str = "risc",
    isa_map: Optional[Dict[str, str]] = None,
) -> BuildResult:
    """Build one of the bundled benchmark programs (paper Section VII)."""
    return build(
        load_program(name), arch=arch, isa=isa, isa_map=isa_map,
        filename=f"{name}.kc",
    )


def run(
    built: BuildResult,
    *,
    cycle_model=None,
    tracer: Optional[Tracer] = None,
    use_decode_cache: bool = True,
    use_prediction: bool = True,
    engine: Optional[str] = None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    input_data: bytes = b"",
    isa_id: Optional[int] = None,
    ip_history: int = 0,
    profiler=None,
    timeline=None,
    collect_metrics: bool = False,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume_from: Optional[str] = None,
    workload: Optional[str] = None,
    plan_cache=None,
    fuse_cycles: bool = True,
    aot_module=None,
    max_block_len: Optional[int] = None,
    events=None,
    flight=None,
    cancel=None,
    cancel_checkpoint_dir: Optional[str] = None,
    sampling=None,
) -> RunResult:
    """Load and simulate a built executable.

    Telemetry: ``profiler`` (a :class:`repro.telemetry.HotspotProfiler`)
    attributes work to guest code, ``timeline`` (a
    :class:`repro.telemetry.TimelineRecorder`) records Chrome-trace
    events from the cycle model, and ``collect_metrics=True`` attaches
    the machine-readable run report as ``RunResult.telemetry`` — this
    is how the benchmark harnesses emit telemetry automatically.

    Checkpointing (``docs/checkpointing.md``): ``checkpoint_every=N``
    writes a checkpoint into ``checkpoint_dir`` every N executed
    instructions; ``resume_from=path`` starts from a checkpoint file
    instead of the ELF entry point (the ELF still supplies debug info,
    and ``RunResult.stats`` covers the whole run, not just the resumed
    segment).  ``max_instructions`` bounds the segment executed by this
    call.

    Performance (``docs/performance.md``): ``plan_cache`` (see
    :func:`open_plan_cache`) persists superblock translations across
    runs and processes; ``fuse_cycles=False`` disables compiling
    AIE/DOE accounting into translated plans (the differential test
    suite's reference configuration); ``max_block_len`` overrides the
    64-instruction superblock cap (also folded into the plan-cache
    key — see :func:`open_plan_cache`).

    ``engine="aot"`` (``docs/performance.md``) dispatches through a
    whole-program ahead-of-time module: pass one as ``aot_module``
    (from :func:`repro.sim.aot.prepare` or a ``kahrisma compile``
    artifact in the plan cache), or leave it None and this function
    prepares one automatically — reviving it from ``plan_cache`` when
    present, compiling in place otherwise.  Configurations without an
    AOT representation (tracers, profilers, per-instruction-observing
    models) transparently degrade to the interactive engine.

    Live observability (``docs/observability.md``): ``events`` (a
    :class:`repro.telemetry.stream.EventStream`) receives run-start /
    heartbeat / syscall / ISA-switch / SMC / checkpoint / run-end
    events while the simulation runs; ``flight`` (a
    :class:`repro.telemetry.flight.FlightRecorder`) keeps a bounded
    trail of recent blocks, dumped on trap.

    Cancellation (``docs/serving.md``): ``cancel`` is a zero-argument
    callable polled between budget slices; when it returns true the
    run stops at the next instruction boundary, ``RunResult.cancelled``
    is set, and — with ``cancel_checkpoint_dir`` — a resumable
    checkpoint is written there (``RunResult.cancel_checkpoint``), so
    a preempted job can be rescheduled via ``resume_from``.

    Sampling (``docs/performance.md``): ``sampling`` (a
    :class:`repro.framework.sampling.SamplingConfig` or a spec string
    ``"U:k[:W[:seed]]"``) switches the run to the statistical-sampling
    tier: ``engine`` fast-forwards functionally between measured
    intervals and ``cycle_model`` (AIE/DOE, required) runs fused over
    warmup + measured intervals only.  ``RunResult.sampling`` carries
    the measured intervals, the extrapolated ``cycles_estimated`` and
    the 95% confidence half-width ``cycles_ci95``; the telemetry
    report gains the same fields.  Incompatible with tracers,
    profilers, timelines and ``checkpoint_every`` (cancel checkpoints
    and ``resume_from`` compose fine — the schedule is absolute).
    """
    sampling_config = None
    if sampling is not None:
        from .sampling import SamplingConfig

        sampling_config = SamplingConfig.coerce(sampling)
        if cycle_model is None:
            raise ValueError(
                "sampling requires a detailed cycle model (aie/doe)"
            )
        if not hasattr(cycle_model, "reset_timing"):
            raise ValueError(
                f"sampling needs a cycle model with reset_timing "
                f"(aie/doe); {type(cycle_model).__name__} has none"
            )
        incompatible = [
            name for name, value in (
                ("tracer", tracer), ("profiler", profiler),
                ("timeline", timeline),
                ("checkpoint_every", checkpoint_every),
            ) if value is not None
        ]
        if incompatible:
            raise ValueError(
                f"sampling is incompatible with "
                f"{', '.join(incompatible)} (per-instruction hooks "
                f"and periodic checkpointing need one continuous "
                f"detailed run)"
            )
    if resume_from is not None:
        from ..snapshot import load_checkpoint_program

        resumed = load_checkpoint_program(
            resume_from, built.arch, elf=built.elf, cycle_model=cycle_model
        )
        program = resumed.program
        base_stats = resumed.base_stats
        resume_meta = resumed.meta
    else:
        program = load_executable(
            built.elf, built.arch, isa_id=isa_id, input_data=input_data
        )
        base_stats = None
        resume_meta = None
    if (
        engine == "aot"
        and aot_module is None
        and tracer is None
        and profiler is None
        and timeline is None
        and (sampling_config is not None
             or fuse_cycles or cycle_model is None)
    ):
        from ..sim import aot

        aot_module = aot.prepare(
            built.elf, built.arch,
            # Sampling fast-forwards *functionally*; the detailed
            # model never runs under the AOT module.
            model=None if sampling_config is not None else cycle_model,
            plan_cache=plan_cache,
            max_block_len=max_block_len,
            input_data=input_data,
        )
    if sampling_config is not None:
        return _run_sampled(
            built, program,
            sampling_config=sampling_config,
            cycle_model=cycle_model,
            engine=engine,
            max_instructions=max_instructions,
            plan_cache=plan_cache,
            aot_module=aot_module,
            max_block_len=max_block_len,
            fuse_cycles=fuse_cycles,
            events=events,
            flight=flight,
            cancel=cancel,
            cancel_checkpoint_dir=cancel_checkpoint_dir,
            base_stats=base_stats,
            resume_meta=resume_meta,
            workload=workload,
            collect_metrics=collect_metrics,
        )
    interpreter = Interpreter(
        program.state,
        cycle_model=cycle_model,
        tracer=tracer,
        use_decode_cache=use_decode_cache,
        use_prediction=use_prediction,
        engine=engine,
        ip_history=ip_history,
        profiler=profiler,
        timeline=timeline,
        plan_cache=plan_cache,
        fuse_cycles=fuse_cycles,
        aot_module=aot_module,
        max_block_len=max_block_len,
        events=events,
        flight=flight,
        cancel=cancel,
    )
    if events is not None:
        events.emit(
            "run-start",
            workload=workload,
            engine=interpreter.engine,
            model=(
                str(getattr(cycle_model, "name", type(cycle_model).__name__))
                if cycle_model is not None else None
            ),
            heartbeat_every=events.heartbeat_every,
        )
    checkpoints: List[str] = []
    if checkpoint_every is not None:
        from ..snapshot import run_with_checkpoints

        ckpt = run_with_checkpoints(
            interpreter, program.syscalls,
            every=checkpoint_every,
            directory=checkpoint_dir or "checkpoints",
            max_instructions=max_instructions,
            base_stats=base_stats,
            workload=workload,
        )
        stats = ckpt.stats
        checkpoints = ckpt.checkpoints
    else:
        stats = interpreter.run(max_instructions=max_instructions)
        if base_stats is not None:
            whole = base_stats.copy()
            whole.merge(stats)
            stats = whole
    cancelled = bool(getattr(interpreter, "cancelled", False))
    cancel_checkpoint = None
    if (
        cancelled
        and cancel_checkpoint_dir is not None
        and not program.state.halted
    ):
        from ..snapshot import checkpoint_path, snapshot_run, write_checkpoint

        payload = snapshot_run(
            program.state, program.syscalls,
            stats=stats,
            cycle_model=cycle_model,
            meta={
                "instructions": stats.executed_instructions,
                "engine": interpreter.engine,
                "workload": workload,
                "cancelled": True,
            },
        )
        os.makedirs(cancel_checkpoint_dir, exist_ok=True)
        cancel_checkpoint = checkpoint_path(
            cancel_checkpoint_dir, stats.executed_instructions,
            prefix="cancel",
        )
        write_checkpoint(cancel_checkpoint, payload)
        if events is not None:
            events.emit(
                "checkpoint",
                path=cancel_checkpoint,
                instructions=stats.executed_instructions,
            )
    if events is not None:
        events.emit(
            "run-end",
            instructions=stats.executed_instructions,
            exit_code=program.state.exit_code,
            elapsed_seconds=round(stats.elapsed_seconds, 6),
            mips=round(stats.mips, 3),
            halted=program.state.halted,
        )
    telemetry = None
    if collect_metrics or profiler is not None:
        from ..telemetry import build_run_report

        telemetry = build_run_report(
            interpreter, cycle_model,
            profiler=profiler,
            debug_info=program.debug_info,
        )
    return RunResult(
        output=program.output,
        stats=stats,
        program=program,
        cycle_model=cycle_model,
        tracer=tracer,
        telemetry=telemetry,
        profiler=profiler,
        timeline=timeline,
        checkpoints=checkpoints,
        interpreter=interpreter,
        cancelled=cancelled,
        cancel_checkpoint=cancel_checkpoint,
    )


def _run_sampled(
    built: BuildResult,
    program: LoadedProgram,
    *,
    sampling_config,
    cycle_model,
    engine,
    max_instructions,
    plan_cache,
    aot_module,
    max_block_len,
    fuse_cycles,
    events,
    flight,
    cancel,
    cancel_checkpoint_dir,
    base_stats,
    resume_meta,
    workload,
    collect_metrics,
) -> RunResult:
    """Sampling-tier body of :func:`run` (validated arguments)."""
    from .sampling import run_sampled

    if events is not None:
        events.emit(
            "run-start",
            workload=workload,
            engine=engine or "superblock",
            model=str(getattr(cycle_model, "name",
                              type(cycle_model).__name__)),
            heartbeat_every=events.heartbeat_every,
            sampling=sampling_config.spec(),
        )
    outcome = run_sampled(
        program, cycle_model, sampling_config,
        engine=engine,
        max_instructions=max_instructions,
        plan_cache=plan_cache,
        aot_module=aot_module,
        max_block_len=max_block_len,
        fuse_cycles=fuse_cycles,
        events=events,
        flight=flight,
        cancel=cancel,
        base_stats=base_stats,
        meta=resume_meta,
    )
    stats = outcome.stats
    cancelled = outcome.cancelled
    cancel_checkpoint = None
    if (
        cancelled
        and cancel_checkpoint_dir is not None
        and not program.state.halted
    ):
        from ..snapshot import checkpoint_path, snapshot_run, write_checkpoint

        payload = snapshot_run(
            program.state, program.syscalls,
            stats=stats,
            cycle_model=cycle_model,
            meta={
                "instructions": stats.executed_instructions,
                "engine": outcome.fast.engine,
                "workload": workload,
                "cancelled": True,
                "sampling": outcome.progress_doc(),
            },
        )
        os.makedirs(cancel_checkpoint_dir, exist_ok=True)
        cancel_checkpoint = checkpoint_path(
            cancel_checkpoint_dir, stats.executed_instructions,
            prefix="cancel",
        )
        write_checkpoint(cancel_checkpoint, payload)
        if events is not None:
            events.emit(
                "checkpoint",
                path=cancel_checkpoint,
                instructions=stats.executed_instructions,
            )
    if events is not None:
        events.emit(
            "run-end",
            instructions=stats.executed_instructions,
            exit_code=program.state.exit_code,
            elapsed_seconds=round(stats.elapsed_seconds, 6),
            mips=round(stats.mips, 3),
            halted=program.state.halted,
            cycles_estimated=outcome.result.cycles_estimated,
        )
    telemetry = None
    if collect_metrics:
        from ..telemetry import build_run_report

        telemetry = build_run_report(
            outcome.fast, cycle_model,
            stats=stats,
            debug_info=program.debug_info,
            workload=workload,
            sampling=outcome.result,
        )
    return RunResult(
        output=program.output,
        stats=stats,
        program=program,
        cycle_model=cycle_model,
        telemetry=telemetry,
        interpreter=outcome.fast,
        cancelled=cancelled,
        cancel_checkpoint=cancel_checkpoint,
        sampling=outcome.result,
    )


def open_plan_cache(
    built: BuildResult,
    *,
    directory: Optional[str] = None,
    block_len: Optional[int] = None,
    limit: Optional[int] = None,
):
    """Open the persistent superblock plan cache for one build.

    The cache file is keyed by the ELF image, the architecture
    description and the superblock cap (plus interpreter/Python
    versioning — see :mod:`repro.sim.plancache`), so any rebuild that
    changes the program, the ADL or ``block_len`` selects a fresh
    file.  Pass the result to :func:`run` as ``plan_cache``; warm runs
    then reload hot-plan translations (and whole-program AOT modules)
    instead of recompiling them.  ``limit`` caps the number of
    per-plan entries kept on disk (LRU eviction at save time).
    """
    import hashlib

    from ..sim.plancache import PlanCache
    from ..targetgen.codegen import architecture_digest

    elf_digest = hashlib.sha256(built.elf.write()).hexdigest()[:16]
    return PlanCache.open(
        elf_digest=elf_digest,
        arch_digest=architecture_digest(built.arch),
        directory=directory,
        block_len=block_len,
        limit=limit,
    )


def build_and_run(
    source: str,
    *,
    arch: Architecture = KAHRISMA,
    isa: str = "risc",
    isa_map: Optional[Dict[str, str]] = None,
    cycle_model=None,
    filename: str = "<kc>",
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> RunResult:
    """Convenience wrapper: build() followed by run()."""
    built = build(
        source, arch=arch, isa=isa, isa_map=isa_map, filename=filename
    )
    return run(built, cycle_model=cycle_model,
               max_instructions=max_instructions)
