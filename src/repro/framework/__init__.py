"""High-level framework API: build/run pipeline and ISA selection."""

from .cost import (
    CostParameters,
    CostReport,
    OpClassCounts,
    estimate_width,
    evaluate_widths,
    select_isas_cost_aware,
)
from .parallel import (
    ParallelResult,
    ShardPlan,
    make_branch_model,
    make_cycle_model,
    merge_metric_dicts,
    plan_shards,
    run_parallel,
)
from .pipeline import (
    BuildResult,
    RunResult,
    build,
    build_and_run,
    build_benchmark,
    run,
)
from .sampling import (
    SampledRun,
    SamplingConfig,
    SamplingResult,
    estimate_cycles,
    merge_sampling_results,
    run_sampled,
)
from .selection import (
    FunctionAttributor,
    FunctionProfile,
    SelectionReport,
    demangle,
    profile_functions,
    select_isas,
)

__all__ = [
    "BuildResult",
    "CostParameters",
    "CostReport",
    "OpClassCounts",
    "estimate_width",
    "evaluate_widths",
    "select_isas_cost_aware",
    "FunctionAttributor",
    "FunctionProfile",
    "ParallelResult",
    "RunResult",
    "SampledRun",
    "SamplingConfig",
    "SamplingResult",
    "ShardPlan",
    "make_branch_model",
    "make_cycle_model",
    "merge_metric_dicts",
    "plan_shards",
    "run_parallel",
    "SelectionReport",
    "build",
    "build_and_run",
    "build_benchmark",
    "demangle",
    "estimate_cycles",
    "merge_sampling_results",
    "profile_functions",
    "run",
    "run_sampled",
    "select_isas",
]
