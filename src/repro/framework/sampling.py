"""Statistical sampling execution tier (SMARTS-style, ROADMAP item 5).

Full detailed simulation — fused DOE plus the three-level memory
hierarchy — is the slowest configuration in the repository, while the
functional superblock/AOT engines run ~5x faster.  This module buys
back most of that gap without giving up cycle accuracy: the run
*fast-forwards* functionally through most of the program and drops
into the detailed model only for systematically sampled intervals,
then extrapolates total cycles from the measured intervals' CPI and
reports a standard-error-based 95% confidence interval.

Systematic interval sampling
----------------------------

The instruction stream is divided into back-to-back intervals of ``U``
instructions.  Every ``k``-th interval (phase-shifted by
``seed % k``) is *measured*; the rest are fast-forwarded.  Before
each measured interval the detailed model executes ``W`` *warmup*
instructions: the model's cycle clock is re-based to zero
(:meth:`~repro.cycles.base.CycleModel.reset_timing` — cache tags, LRU
order and branch-predictor tables survive, absolute timestamps do
not), the W instructions warm the caches and predictors, and the
measurement baseline is taken where warmup ends.  A measured
interval's contribution is then ``model.cycles`` growth over its U
instructions, uncontaminated by the cold-start transient.

Because measured/warm/fast regions are pure functions of the absolute
executed-instruction position and ``(U, k, W, seed)``, a sampled run
is deterministic, composes with checkpoints (cancel/resume lands on
the same schedule) and with ``kahrisma parallel`` (each shard samples
its own segment with a per-shard seed; estimates add, CI widths
combine in quadrature).

Two interpreters, one architectural state
-----------------------------------------

The driver alternates two :class:`~repro.sim.interpreter.Interpreter`
objects over the *same* :class:`~repro.sim.state.ProcessorState`: a
functional one (no cycle model, warm superblock or AOT plans) and a
detailed one (fused cycle model).  The differential suite proves every
engine architecturally bitwise-equivalent and ``Interpreter.run`` is
re-entrant, so handing the state back and forth at instruction
boundaries leaves the architectural end-state identical to a pure
functional run — that is the determinism gate's sampled check.

Estimator
---------

Point estimate: the ratio estimator ``(sum cycles_i / sum instr_i) *
total_instructions`` (robust to a partial final interval).  The 95%
interval uses the t-distribution over per-interval CPI:
``ci95 = t_{n-1} * stddev(cpi) / sqrt(n) * total_instructions``.

See ``docs/performance.md`` (sampling section) for knob guidance and
the accuracy table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.interpreter import Interpreter
from ..sim.stats import SimStats

#: Two-tailed 97.5% quantiles of Student's t by degrees of freedom;
#: beyond the table the normal quantile is used.
_T_975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064,
    25: 2.060, 26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_quantile_975(df: int) -> float:
    """97.5% Student-t quantile (two-tailed 95% CI multiplier)."""
    if df <= 0:
        return float("nan")
    return _T_975.get(df, 1.960)


@dataclass(frozen=True)
class SamplingConfig:
    """Systematic-sampling schedule: ``(U, k, W, seed)``.

    ``interval`` (U) instructions per interval, every ``period``-th
    (k) interval measured, ``warmup`` (W) detailed instructions run
    before each measured interval, ``seed`` phase-shifting which
    intervals are measured (``offset = seed % k``).
    """

    interval: int
    period: int
    warmup: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("sampling interval U must be positive")
        if self.period < 1:
            raise ValueError("sampling period k must be >= 1")
        if self.warmup < 0:
            raise ValueError("sampling warmup W must be >= 0")
        if self.seed < 0:
            raise ValueError("sampling seed must be >= 0")

    @property
    def offset(self) -> int:
        """Index (mod k) of the measured intervals."""
        return self.seed % self.period

    @classmethod
    def parse(cls, spec: str) -> "SamplingConfig":
        """Parse the CLI form ``U:k[:W[:seed]]`` (e.g. ``2000:50:200``)."""
        parts = str(spec).split(":")
        if not 2 <= len(parts) <= 4:
            raise ValueError(
                f"bad sampling spec {spec!r}: expected U:k[:W[:seed]]"
            )
        try:
            numbers = [int(p) for p in parts]
        except ValueError:
            raise ValueError(
                f"bad sampling spec {spec!r}: fields must be integers"
            ) from None
        interval, period = numbers[0], numbers[1]
        warmup = numbers[2] if len(numbers) > 2 else 0
        seed = numbers[3] if len(numbers) > 3 else 0
        return cls(interval=interval, period=period, warmup=warmup,
                   seed=seed)

    @classmethod
    def coerce(cls, value) -> "SamplingConfig":
        """Accept a config, a spec string, or a doc dict."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, dict):
            return cls.from_doc(value)
        raise TypeError(
            f"cannot interpret {type(value).__name__} as a SamplingConfig"
        )

    def spec(self) -> str:
        text = f"{self.interval}:{self.period}:{self.warmup}"
        if self.seed:
            text += f":{self.seed}"
        return text

    def to_doc(self) -> Dict[str, int]:
        return {
            "interval": self.interval,
            "period": self.period,
            "warmup": self.warmup,
            "seed": self.seed,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, int]) -> "SamplingConfig":
        return cls(
            interval=int(doc["interval"]),
            period=int(doc["period"]),
            warmup=int(doc.get("warmup", 0)),
            seed=int(doc.get("seed", 0)),
        )


def estimate_cycles(intervals, total_instructions):
    """Extrapolate total cycles from measured ``(instr, cycles)`` pairs.

    Returns ``(estimate, ci95)``; ``(None, None)`` with no measured
    interval, ``ci95=None`` with fewer than two (no variance sample).
    """
    pairs = [(int(n), int(c)) for n, c in intervals if int(n) > 0]
    if not pairs:
        return None, None
    sampled_instr = sum(n for n, _ in pairs)
    sampled_cycles = sum(c for _, c in pairs)
    cpi = sampled_cycles / sampled_instr
    estimate = int(round(cpi * total_instructions))
    if len(pairs) < 2:
        return estimate, None
    cpis = [c / n for n, c in pairs]
    mean = sum(cpis) / len(cpis)
    var = sum((x - mean) ** 2 for x in cpis) / (len(cpis) - 1)
    se = math.sqrt(var / len(cpis))
    ci95 = t_quantile_975(len(cpis) - 1) * se * total_instructions
    return estimate, round(ci95, 3)


@dataclass
class SamplingResult:
    """Outcome of one sampled run (or merged shard runs)."""

    config: SamplingConfig
    #: ``[instructions, cycles]`` per measured interval, schedule order.
    #: The final entry may be partial (halt/budget mid-interval).
    intervals: List[List[int]] = field(default_factory=list)
    total_instructions: int = 0
    cancelled: bool = False
    cycles_estimated: Optional[int] = None
    cycles_ci95: Optional[float] = None

    def finalize(self) -> "SamplingResult":
        self.cycles_estimated, self.cycles_ci95 = estimate_cycles(
            self.intervals, self.total_instructions
        )
        return self

    @property
    def instructions_sampled(self) -> int:
        return sum(int(n) for n, _ in self.intervals)

    @property
    def cycles_sampled(self) -> int:
        return sum(int(c) for _, c in self.intervals)

    @property
    def detailed_fraction(self) -> float:
        if not self.total_instructions:
            return 0.0
        return self.instructions_sampled / self.total_instructions

    def block(self) -> Dict[str, object]:
        """The run-report / result-document ``sampling`` block."""
        return {
            **self.config.to_doc(),
            "intervals_measured": len(self.intervals),
            "instructions_sampled": self.instructions_sampled,
            "cycles_sampled": self.cycles_sampled,
            "detailed_fraction": round(self.detailed_fraction, 6),
        }

    def to_doc(self) -> Dict[str, object]:
        """Picklable/JSON form (parallel shard results ship these)."""
        return {
            "config": self.config.to_doc(),
            "intervals": [list(pair) for pair in self.intervals],
            "total_instructions": self.total_instructions,
            "cancelled": self.cancelled,
            "cycles_estimated": self.cycles_estimated,
            "cycles_ci95": self.cycles_ci95,
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "SamplingResult":
        result = cls(
            config=SamplingConfig.from_doc(doc["config"]),
            intervals=[[int(n), int(c)] for n, c in doc["intervals"]],
            total_instructions=int(doc["total_instructions"]),
            cancelled=bool(doc.get("cancelled", False)),
        )
        result.cycles_estimated = doc.get("cycles_estimated")
        result.cycles_ci95 = doc.get("cycles_ci95")
        return result


def merge_sampling_results(results) -> SamplingResult:
    """Combine independent per-shard sampled estimates.

    Shards cover disjoint instruction ranges, so point estimates add;
    independent errors combine in quadrature
    (``ci = sqrt(sum ci_i^2)``).  A shard too short to yield a CI
    (fewer than two intervals) contributes its point estimate with
    zero width — the merged interval is then a lower bound on the
    true uncertainty, which the report flags via ``intervals_measured``.
    """
    results = [r for r in results if r is not None]
    if not results:
        raise ValueError("no sampling results to merge")
    merged = SamplingResult(config=results[0].config)
    estimate = 0
    ci_sq = 0.0
    any_estimate = any_ci = False
    for r in results:
        merged.intervals.extend(r.intervals)
        merged.total_instructions += r.total_instructions
        merged.cancelled = merged.cancelled or r.cancelled
        if r.cycles_estimated is not None:
            estimate += r.cycles_estimated
            any_estimate = True
        if r.cycles_ci95 is not None:
            ci_sq += float(r.cycles_ci95) ** 2
            any_ci = True
    merged.cycles_estimated = estimate if any_estimate else None
    merged.cycles_ci95 = round(math.sqrt(ci_sq), 3) if any_ci else None
    return merged


@dataclass
class SampledRun:
    """Everything :func:`run_sampled` hands back to its caller."""

    result: SamplingResult
    #: Whole-run cumulative statistics (base + fast + detailed).
    stats: SimStats
    #: The fast-forward interpreter (engine counters, AOT binding).
    fast: Interpreter
    #: The detailed interpreter (fused model, superblock counters).
    detailed: Interpreter
    cancelled: bool = False

    def progress_doc(self) -> Dict[str, object]:
        """Checkpoint-meta payload for cancel/resume mid-schedule."""
        doc: Dict[str, object] = {
            "config": self.result.config.to_doc(),
            "intervals": [list(pair) for pair in self.result.intervals],
        }
        if self._cycles0 is not None:
            doc["cycles0"] = self._cycles0
        return doc

    #: Measurement baseline when cancelled mid-measured-interval
    #: (``model.cycles`` where the current interval's warmup ended).
    _cycles0: Optional[int] = None


def sampling_progress_from_meta(meta, config: SamplingConfig):
    """Validate and extract sampling progress from checkpoint meta.

    Returns ``(intervals, cycles0)``.  A checkpoint from a non-sampled
    run has no progress (fresh schedule over its position); one from a
    *differently configured* sampled run is rejected — the schedules
    disagree about which instructions were measured.
    """
    progress = (meta or {}).get("sampling")
    if progress is None:
        return [], None
    stored = SamplingConfig.from_doc(progress.get("config", {}))
    if stored != config:
        raise ValueError(
            f"checkpoint was sampled with {stored.spec()} "
            f"(seed {stored.seed}), resuming with {config.spec()} "
            f"(seed {config.seed}) — estimates would mix schedules"
        )
    intervals = [
        [int(n), int(c)] for n, c in progress.get("intervals", [])
    ]
    cycles0 = progress.get("cycles0")
    return intervals, (int(cycles0) if cycles0 is not None else None)


def run_sampled(
    program,
    cycle_model,
    sampling,
    *,
    engine: Optional[str] = None,
    max_instructions: int = 1 << 62,
    plan_cache=None,
    aot_module=None,
    max_block_len: Optional[int] = None,
    fuse_cycles: bool = True,
    events=None,
    flight=None,
    cancel=None,
    base_stats: Optional[SimStats] = None,
    meta: Optional[Dict[str, object]] = None,
) -> SampledRun:
    """Drive one program under the sampling schedule to halt/budget.

    ``program`` is a :class:`~repro.binutils.loader.LoadedProgram`
    (fresh or checkpoint-restored); ``cycle_model`` an AIE/DOE model,
    **already carrying checkpoint state when resuming**.  ``engine``
    names the fast-forward engine (default ``superblock``;
    ``aot`` with a functional ``aot_module`` is the fastest).  The
    detailed interpreter always runs the superblock engine with the
    model fused (``fuse_cycles=False`` switches it to per-instruction
    observation — the bitwise-equivalence reference).

    ``base_stats``/``meta`` come from a resumed checkpoint: the
    schedule is absolute in executed instructions, so the position in
    ``base_stats`` plus the meta's sampling progress put the driver
    back exactly where the cancelled run stopped.
    """
    config = SamplingConfig.coerce(sampling)
    if cycle_model is None:
        raise ValueError("sampling needs a detailed cycle model (aie/doe)")
    if not hasattr(cycle_model, "reset_timing"):
        raise ValueError(
            f"cycle model {type(cycle_model).__name__} has no "
            f"reset_timing; sampling supports AIE/DOE"
        )
    state = program.state
    intervals, cycles0 = sampling_progress_from_meta(meta, config)

    fast = Interpreter(
        state,
        cycle_model=None,
        engine=engine,
        plan_cache=plan_cache,
        aot_module=aot_module,
        max_block_len=max_block_len,
        events=events,
        flight=flight,
        cancel=cancel,
    )
    detailed = Interpreter(
        state,
        cycle_model=cycle_model,
        engine="superblock",
        plan_cache=plan_cache,
        fuse_cycles=fuse_cycles,
        max_block_len=max_block_len,
        events=events,
        flight=flight,
        cancel=cancel,
    )

    base = base_stats.executed_instructions if base_stats is not None else 0
    U, k, W, offset = (config.interval, config.period, config.warmup,
                       config.offset)
    budget = max_instructions
    executed = 0
    cancelled = False

    def segment(interp: Interpreter, count: int, phase: str) -> int:
        nonlocal executed, cancelled
        if events is not None:
            events.phase = phase
        before = interp.stats.executed_instructions
        interp.run(max_instructions=count)
        ran = interp.stats.executed_instructions - before
        executed += ran
        if interp.cancelled:
            cancelled = True
        if ran == 0 and not state.halted and not interp.cancelled:
            raise RuntimeError(
                f"sampling driver made no progress at instruction "
                f"{base + executed} (engine {interp.engine})"
            )
        return ran

    try:
        while not state.halted and not cancelled and executed < budget:
            pos = base + executed
            j = pos // U
            jm = j + ((offset - j % k) % k)
            m_start = jm * U
            m_end = m_start + U
            prev_end = (jm - k + 1) * U if jm >= k else 0
            w_start = max(m_start - W, prev_end)
            remaining = budget - executed
            if pos < w_start:
                segment(fast, min(w_start - pos, remaining),
                        "fast-forward")
            elif pos < m_start:
                # Warmup: detailed model, fresh zero-based clock.  The
                # reset is idempotent, so a resume landing exactly on
                # the region boundary cannot double-apply it.
                if pos == w_start:
                    cycle_model.reset_timing()
                segment(detailed, min(m_start - pos, remaining),
                        "detailed")
            else:
                if pos == m_start:
                    if w_start == m_start:
                        cycle_model.reset_timing()  # W == 0: no warmup ran
                    cycles0 = cycle_model.cycles
                if cycles0 is None:
                    raise RuntimeError(
                        "resumed mid-measured-interval without a "
                        "measurement baseline in the checkpoint meta"
                    )
                segment(detailed, min(m_end - pos, remaining), "detailed")
                new_pos = base + executed
                closed = new_pos == m_end or (
                    new_pos > m_start
                    and (state.halted or executed >= budget)
                    and not cancelled
                )
                if closed:
                    # Full interval, or a partial final one (halt or
                    # budget exhaustion).  A *cancelled* partial stays
                    # open: its baseline rides in the checkpoint meta
                    # and the resumed run completes the interval.
                    intervals.append(
                        [new_pos - m_start, cycle_model.cycles - cycles0]
                    )
                    cycles0 = None
    finally:
        if events is not None:
            events.phase = None

    stats = base_stats.copy() if base_stats is not None else SimStats()
    stats.merge(fast.stats)
    stats.merge(detailed.stats)
    stats.exit_code = state.exit_code

    result = SamplingResult(
        config=config,
        intervals=intervals,
        total_instructions=stats.executed_instructions,
        cancelled=cancelled,
    ).finalize()
    run = SampledRun(
        result=result,
        stats=stats,
        fast=fast,
        detailed=detailed,
        cancelled=cancelled,
    )
    run._cycles0 = cycles0
    return run
