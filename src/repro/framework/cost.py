"""Energy / resource / reconfiguration cost model for ISA selection.

The paper's outlook (Section VIII): ISA selection should weigh
*reconfiguration overhead, resource consumption, energy consumption and
performance*.  This module provides that cost side:

* a per-operation-class dynamic energy model (counted on the functional
  stream, so it is ISA-independent except for NOP fetch overhead);
* static energy proportional to the EDPEs a configuration occupies
  (Figure 1: an n-issue instance binds n EDPEs) times its runtime;
* a reconfiguration charge per ISA switch (cycles and energy);
* :func:`evaluate_widths` — the per-function width sweep combining the
  ILP-based cycle estimate with the energy model;
* :func:`select_isas_cost_aware` — selection minimising cycles, energy
  or energy-delay product under an EDPE budget.

Units are arbitrary but self-consistent (think pJ and cycles); all
weights are configurable through :class:`CostParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..adl.kahrisma import KAHRISMA
from ..adl.model import Architecture
from ..sim.decoder import (
    KIND_CTRL,
    KIND_LOAD,
    KIND_NOP,
    KIND_STORE,
)
from .pipeline import build
from .selection import (
    DEFAULT_WIDTH_ISAS,
    FunctionAttributor,
    demangle,
    profile_functions,
)


@dataclass(frozen=True)
class CostParameters:
    """Energy and overhead weights (arbitrary consistent units)."""

    energy_alu: float = 1.0
    energy_mul: float = 3.0
    energy_div: float = 8.0
    energy_mem: float = 4.0
    energy_ctrl: float = 1.0
    #: A fetched-and-issued NOP still burns fetch/issue energy.
    energy_nop: float = 0.2
    #: Static/leakage energy per EDPE per cycle.
    static_per_edpe: float = 0.05
    #: Cycles to reconfigure the fabric to another instruction format.
    reconfig_cycles: int = 32
    #: Energy per reconfiguration.
    reconfig_energy: float = 50.0


@dataclass
class OpClassCounts:
    """Operation-class histogram of one function (functional stream)."""

    alu: int = 0
    mul: int = 0
    div: int = 0
    mem: int = 0
    ctrl: int = 0

    @property
    def total(self) -> int:
        return self.alu + self.mul + self.div + self.mem + self.ctrl

    def dynamic_energy(self, params: CostParameters) -> float:
        return (
            self.alu * params.energy_alu
            + self.mul * params.energy_mul
            + self.div * params.energy_div
            + self.mem * params.energy_mem
            + self.ctrl * params.energy_ctrl
        )


class ClassCountingAttributor(FunctionAttributor):
    """Function attributor that additionally histograms op classes."""

    def __init__(self, model, functions) -> None:
        super().__init__(model, functions)
        self.class_counts: Dict[str, OpClassCounts] = {
            name: OpClassCounts() for name in self.profiles
        }

    def observe(self, dec, regs) -> None:
        super().observe(dec, regs)
        profile, _is_entry = self._profile_at(dec.addr)
        counts = self.class_counts[profile.name]
        for op in dec.ops:
            kind = op.kind_code
            if kind == KIND_NOP:
                continue
            if kind in (KIND_LOAD, KIND_STORE):
                counts.mem += 1
            elif kind == KIND_CTRL:
                counts.ctrl += 1
            elif op.fu_class == "mul":
                counts.mul += 1
            elif op.fu_class == "div":
                counts.div += 1
            else:
                counts.alu += 1


@dataclass
class WidthEstimate:
    """Estimated cost of running one function on one issue width."""

    width: int
    cycles: float
    dynamic_energy: float
    nop_energy: float
    static_energy: float

    @property
    def energy(self) -> float:
        return self.dynamic_energy + self.nop_energy + self.static_energy

    @property
    def edp(self) -> float:
        return self.energy * self.cycles


def estimate_width(
    counts: OpClassCounts,
    ilp: float,
    width: int,
    params: CostParameters,
) -> WidthEstimate:
    """Estimate cycles and energy of one function at one issue width.

    Cycles follow the selection heuristic: effective parallelism is
    ``min(width, ILP)``.  Energy adds NOP-slot fetch energy (wider
    formats fetch more padding) and static energy for ``width`` EDPEs
    over the estimated runtime.
    """
    ops = counts.total
    effective = max(min(float(width), ilp), 1.0) if ops else 1.0
    cycles = ops / effective if ops else 0.0
    bundles = cycles  # one bundle issued per cycle per slot group
    nop_slots = max(bundles * width - ops, 0.0)
    return WidthEstimate(
        width=width,
        cycles=cycles,
        dynamic_energy=counts.dynamic_energy(params),
        nop_energy=nop_slots * params.energy_nop,
        static_energy=cycles * width * params.static_per_edpe,
    )


def evaluate_widths(
    counts: OpClassCounts,
    ilp: float,
    widths: Sequence[int],
    params: CostParameters,
) -> List[WidthEstimate]:
    return [estimate_width(counts, ilp, w, params) for w in widths]


@dataclass
class CostChoice:
    function: str
    isa: str
    width: int
    estimate: WidthEstimate
    reconfig_cost: float
    objective_value: float


@dataclass
class CostReport:
    """Outcome of cost-aware selection."""

    objective: str
    choices: List[CostChoice]
    isa_map: Dict[str, str]
    params: CostParameters
    estimates: Dict[str, List[WidthEstimate]] = field(default_factory=dict)

    def format(self) -> str:
        lines = [
            f"objective: {self.objective}",
            f"{'function':<20} {'ISA':>7} {'cycles':>10} {'energy':>10} "
            f"{'EDP':>12} {'reconfig':>9}",
            "-" * 74,
        ]
        for choice in self.choices:
            est = choice.estimate
            lines.append(
                f"{choice.function:<20} {choice.isa:>7} "
                f"{est.cycles:>10.0f} {est.energy:>10.1f} "
                f"{est.edp:>12.0f} {choice.reconfig_cost:>9.1f}"
            )
        return "\n".join(lines)


def select_isas_cost_aware(
    source: str,
    *,
    arch: Architecture = KAHRISMA,
    objective: str = "edp",
    widths: Sequence[int] = (1, 2, 4, 6, 8),
    params: CostParameters = CostParameters(),
    edpe_budget: Optional[int] = None,
    filename: str = "<kc>",
    entry: str = "main",
) -> CostReport:
    """Pick an ISA per function minimising the chosen objective.

    ``objective``: ``"cycles"``, ``"energy"`` or ``"edp"``.
    ``edpe_budget`` caps the *widest* configuration any function may
    use (resource consumption: an n-issue instance occupies n EDPEs).
    Reconfiguration overhead is charged per call of each function whose
    ISA differs from the entry function's (a switch in and out).
    """
    if objective not in ("cycles", "energy", "edp"):
        raise ValueError(f"unknown objective {objective!r}")
    built = build(source, arch=arch, isa="risc", filename=filename,
                  entry=entry)
    from ..binutils.loader import load_executable
    from ..cycles.ilp import IlpModel
    from ..sim.interpreter import Interpreter

    program = load_executable(built.elf, built.arch)
    attributor = ClassCountingAttributor(
        IlpModel(), program.debug_info.functions
    )
    Interpreter(program.state, cycle_model=attributor).run()

    usable_widths = [
        w for w in widths
        if w in DEFAULT_WIDTH_ISAS
        and (edpe_budget is None or w <= edpe_budget)
    ]
    if not usable_widths:
        raise ValueError("no usable issue widths under the EDPE budget")

    user_functions = {
        name for name in built.compile_result.functions
    }
    choices: List[CostChoice] = []
    isa_map: Dict[str, str] = {}
    estimates: Dict[str, List[WidthEstimate]] = {}
    entry_width = None

    # Decide the entry function first: every other function's
    # reconfiguration charge is relative to the format it is entered
    # from, and the entry function's format is the baseline.
    ordered = sorted(
        attributor.sorted_profiles(),
        key=lambda p: demangle(p.name) != entry,
    )
    for profile in ordered:
        name = demangle(profile.name)
        if name not in user_functions or profile.instructions == 0:
            continue
        counts = attributor.class_counts[profile.name]
        candidate_estimates = evaluate_widths(
            counts, profile.ilp, usable_widths, params
        )
        estimates[name] = candidate_estimates

        def objective_of(est: WidthEstimate, reconfig: float) -> float:
            if objective == "cycles":
                return est.cycles + reconfig
            if objective == "energy":
                return est.energy + reconfig
            return (est.energy + reconfig) * (est.cycles + reconfig)

        best = None
        for est in candidate_estimates:
            # Reconfiguration: entering and leaving the function's ISA
            # once per call if it differs from the entry function's.
            differs = (
                name != entry
                and est.width != (entry_width if entry_width else 1)
            )
            reconfig = 0.0
            if differs:
                switches = 2 * profile.calls
                if objective == "cycles":
                    reconfig = switches * params.reconfig_cycles
                elif objective == "energy":
                    reconfig = switches * params.reconfig_energy
                else:
                    reconfig = switches * (
                        params.reconfig_cycles + params.reconfig_energy
                    ) / 2.0
            value = objective_of(est, reconfig)
            if best is None or value < best[0]:
                best = (value, est, reconfig)

        value, est, reconfig = best
        isa = DEFAULT_WIDTH_ISAS[est.width]
        if name == entry:
            entry_width = est.width
        choices.append(
            CostChoice(
                function=name,
                isa=isa,
                width=est.width,
                estimate=est,
                reconfig_cost=reconfig,
                objective_value=value,
            )
        )
        isa_map[name] = isa

    return CostReport(
        objective=objective,
        choices=choices,
        isa_map=isa_map,
        params=params,
        estimates=estimates,
    )
