"""Cycle-accurate DOE microarchitecture reference (the paper's "RTL")."""

from .pipeline import RtlConfig, RtlPipeline

__all__ = ["RtlConfig", "RtlPipeline"]
