"""Cycle-accurate reference model of the DOE microarchitecture.

The paper validates its heuristic DOE cycle model against an RTL
simulation of the KAHRISMA hardware (Table II).  The RTL itself is not
available, so this module implements the microarchitecture at
cycle-accurate level from the description in Section III/VI-C — in
particular, it models exactly the three effects the heuristic model
ignores:

1. **Resource constraints** — each slot has its own ALU (the EDPE), but
   a multiplier is shared between each *pair* of slots, a single
   divider serves all slots, and the L1 cache has a limited number of
   access ports;
2. **Bounded drift** — the slots of consecutive VLIW instructions may
   drift against each other only up to a configurable window (the
   hardware bounds drift to enable precise interrupts);
3. **Memory in issue order** — memory operations reach the cache
   hierarchy in the order the hardware issues them, not in program
   order.

Like the heuristic models it consumes the dynamic instruction stream of
the functional simulator (perfect branch prediction for both, as in the
paper's comparison).  Timing is simulated cycle by cycle: one bundle is
fetched per cycle into per-slot issue queues; the head operation of a
slot issues when its sources are ready and its functional unit and
(for memory operations) an L1 port are free.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from ..cycles.branch import BranchModel
from ..cycles.memmodel import (
    Cache,
    HierarchyConfig,
    MainMemory,
    MASK32,
    MemoryModule,
)
from ..sim.decoder import (
    DecodedInstruction,
    KIND_CTRL,
    KIND_LOAD,
    KIND_NOP,
    KIND_STORE,
)


@dataclass(frozen=True)
class RtlConfig:
    """Microarchitecture parameters of the reference pipeline."""

    #: Maximum inter-slot drift in instructions (issue-queue depth).
    drift_limit: int = 8
    #: One multiplier shared per pair of adjacent slots.
    share_mul_per_pair: bool = True
    #: Number of dividers serving all slots.
    div_units: int = 1
    #: L1 access ports (memory operations issued per cycle).
    mem_ports: int = 1
    #: Blocking port: the response occupies the port as well (see
    #: ConnectionLimit.reserve_completion — keep both models on the
    #: same semantics when comparing).
    blocking_port: bool = False
    #: Bundles fetched per cycle.
    fetch_per_cycle: int = 1
    memory: HierarchyConfig = HierarchyConfig()


@dataclass
class _OpRecord:
    """One dynamic operation with everything timing needs."""

    slot: int
    kind: int
    delay: int
    fu_class: str
    srcs: Tuple[int, ...]
    dsts: Tuple[int, ...]
    mem_addr: int
    #: Program-order sequence number (for misprediction refetch).
    seq: int = 0
    #: This control operation was mispredicted (branch-model extension).
    mispredict: bool = False


def _build_hierarchy(config: HierarchyConfig) -> MemoryModule:
    """Cache chain without a ConnectionLimit — the pipeline models the
    L1 ports explicitly, per cycle, in issue order."""
    main = MainMemory(config.main_delay)
    l2 = Cache(size=config.l2_size, line_size=config.line_size,
               assoc=config.l2_assoc, delay=config.l2_delay, sub=main,
               name="L2")
    return Cache(size=config.l1_size, line_size=config.line_size,
                 assoc=config.l1_assoc, delay=config.l1_delay, sub=l2,
                 name="L1")


class RtlPipeline:
    """Cycle-accurate DOE timing over a recorded instruction stream.

    Shares the observer interface of the heuristic cycle models so it
    can be attached to the same interpreter run:  ``observe`` records
    the stream (with resolved memory addresses), ``cycles`` runs the
    timing simulation.
    """

    name = "RTL"

    def __init__(self, issue_width: int,
                 config: Optional[RtlConfig] = None,
                 *, branch_model: Optional[BranchModel] = None) -> None:
        self.issue_width = issue_width
        self.config = config if config is not None else RtlConfig()
        self.branch_model = branch_model
        self._stream: List[List[_OpRecord]] = []
        self.instructions = 0
        self.ops = 0
        self._seq = 0
        self._cycles: Optional[int] = None

    # -- recording (interpreter hook) ------------------------------------

    def observe(self, dec: DecodedInstruction, regs: Sequence[int]) -> None:
        self.instructions += 1
        bundle: List[_OpRecord] = []
        for op in dec.ops:
            self._seq += 1
            if op.kind_code == KIND_NOP:
                # NOPs occupy their issue slot like any operation.
                bundle.append(
                    _OpRecord(op.slot, KIND_NOP, 1, "none", (), (), 0,
                              seq=self._seq)
                )
                continue
            self.ops += 1
            addr = 0
            if op.kind_code in (KIND_LOAD, KIND_STORE):
                addr = (regs[op.mem_base] + op.mem_imm) & MASK32
            mispredict = False
            if self.branch_model is not None and op.kind_code == KIND_CTRL:
                mispredict = self.branch_model.observe_op(
                    op, regs, dec.addr, dec.size
                )
            bundle.append(
                _OpRecord(op.slot, op.kind_code, op.delay, op.fu_class,
                          op.srcs, op.dsts, addr, seq=self._seq,
                          mispredict=mispredict)
            )
        self._stream.append(bundle)
        self._cycles = None

    def reset(self) -> None:
        self._stream = []
        self.instructions = 0
        self.ops = 0
        self._seq = 0
        if self.branch_model is not None:
            self.branch_model.reset()
        self._cycles = None

    # -- timing simulation ---------------------------------------------------

    @property
    def cycles(self) -> int:
        if self._cycles is None:
            self._cycles = self._simulate()
        return self._cycles

    def _mul_unit(self, slot: int) -> int:
        if self.config.share_mul_per_pair:
            return slot // 2
        return slot

    def _simulate(self) -> int:
        width = self.issue_width
        config = self.config
        memory = _build_hierarchy(config.memory)
        queues: List[Deque[_OpRecord]] = [deque() for _ in range(width)]
        reg_ready = [0] * 64  # generous; registers index < 32
        num_muls = (width + 1) // 2 if config.share_mul_per_pair else width
        mul_busy = [0] * max(num_muls, 1)
        div_busy = [0] * max(config.div_units, 1)
        # Single-ported cache semantics: the L1 port is occupied both
        # when a request is accepted and when its response is delivered
        # (one usage table for both, as in the hardware's port
        # arbitration).
        mem_port_usage: dict = {}
        fetch_index = 0
        stream = self._stream
        total = len(stream)
        cycle = 0
        last_completion = 0
        # Misprediction refetch floors: (seq, cycle) — operations with
        # a larger program-order seq may not issue before that cycle.
        refetch_floors: List[Tuple[int, int]] = []
        penalty = self.branch_model.penalty if self.branch_model else 0
        # Safety net: a timing bug must not hang the host.
        max_cycles = 64 * (sum(len(b) for b in stream) + 16) + 1024

        while fetch_index < total or any(queues):
            # -- fetch: one bundle per cycle into the issue queues when
            #    the drift window has room.
            for _ in range(config.fetch_per_cycle):
                if fetch_index >= total:
                    break
                if any(len(q) >= config.drift_limit for q in queues):
                    break
                for record in stream[fetch_index]:
                    queues[record.slot].append(record)
                fetch_index += 1

            # -- issue: head of each slot queue, at most one per slot.
            for slot in range(width):
                queue = queues[slot]
                if not queue:
                    continue
                record = queue[0]
                if record.kind == KIND_NOP:
                    queue.popleft()
                    continue
                # Misprediction refetch: wrong-path fetches restart.
                if refetch_floors:
                    refetch_floors = [
                        (s, c) for s, c in refetch_floors if c > cycle
                    ]
                    if any(record.seq > s for s, c in refetch_floors):
                        continue
                # True data dependencies (scoreboard).
                if any(reg_ready[s] > cycle for s in record.srcs):
                    continue
                # Functional-unit constraints.
                if record.fu_class == "mul":
                    unit = self._mul_unit(slot)
                    if mul_busy[unit] > cycle:
                        continue
                    mul_busy[unit] = cycle + 1  # pipelined: 1 issue/cycle
                elif record.fu_class == "div":
                    free = None
                    for i, busy in enumerate(div_busy):
                        if busy <= cycle:
                            free = i
                            break
                    if free is None:
                        continue
                    div_busy[free] = cycle + record.delay  # not pipelined
                elif record.kind in (KIND_LOAD, KIND_STORE):
                    if mem_port_usage.get(cycle, 0) >= config.mem_ports:
                        continue
                # Issue now.
                queue.popleft()
                if record.kind in (KIND_LOAD, KIND_STORE):
                    mem_port_usage[cycle] = mem_port_usage.get(cycle, 0) + 1
                    completion = memory.access(
                        record.mem_addr, record.kind == KIND_STORE,
                        slot, cycle,
                    )
                    if config.blocking_port:
                        # Response delivery occupies the port too.
                        while (
                            mem_port_usage.get(completion, 0)
                            >= config.mem_ports
                        ):
                            completion += 1
                        mem_port_usage[completion] = \
                            mem_port_usage.get(completion, 0) + 1
                else:
                    completion = cycle + record.delay
                for dst in record.dsts:
                    if completion > reg_ready[dst]:
                        reg_ready[dst] = completion
                if record.mispredict:
                    refetch_floors.append((record.seq, completion + penalty))
                if completion > last_completion:
                    last_completion = completion

            cycle += 1
            if cycle > max_cycles:
                raise RuntimeError(
                    "RTL timing simulation exceeded the cycle safety bound"
                )
        return max(last_completion, cycle - 1)

    # -- reporting ---------------------------------------------------------------

    @property
    def ops_per_cycle(self) -> float:
        c = self.cycles
        return self.ops / c if c else 0.0

    def summary(self) -> str:
        return (
            f"RTL: {self.cycles} cycles, {self.ops} ops, "
            f"{self.ops_per_cycle:.3f} ops/cycle"
        )
