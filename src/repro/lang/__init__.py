"""The KC retargetable compiler (paper Section IV)."""

from .astnodes import Program, Type
from .driver import CompileResult, compile_mixed, compile_source
from .irgen import generate_ir
from .lexer import LexError, tokenize
from .opt import optimize
from .parser import ParseError, parse_program
from .regalloc import allocate_registers
from .sched import schedule_block, schedule_function
from .sema import SemaError, analyze

__all__ = [
    "CompileResult",
    "LexError",
    "ParseError",
    "Program",
    "SemaError",
    "Type",
    "allocate_registers",
    "analyze",
    "compile_mixed",
    "compile_source",
    "generate_ir",
    "optimize",
    "parse_program",
    "schedule_block",
    "schedule_function",
    "tokenize",
]
