"""Backward liveness dataflow over virtual registers.

Produces per-block live-in/live-out sets and, for the linear-scan
allocator, live intervals over a linearised instruction numbering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .ir import Block, ICall, IRFunction, VReg


@dataclass
class LivenessInfo:
    live_in: Dict[str, Set[VReg]]
    live_out: Dict[str, Set[VReg]]


def compute_liveness(fn: IRFunction) -> LivenessInfo:
    preds: Dict[str, List[str]] = {b.label: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors():
            preds.setdefault(succ, []).append(block.label)

    use_sets: Dict[str, Set[VReg]] = {}
    def_sets: Dict[str, Set[VReg]] = {}
    for block in fn.blocks:
        uses: Set[VReg] = set()
        defs: Set[VReg] = set()
        for instr in block.instrs:
            for u in instr.uses():
                if u not in defs:
                    uses.add(u)
            defs.update(instr.defs())
        use_sets[block.label] = uses
        def_sets[block.label] = defs

    live_in: Dict[str, Set[VReg]] = {b.label: set() for b in fn.blocks}
    live_out: Dict[str, Set[VReg]] = {b.label: set() for b in fn.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(fn.blocks):
            label = block.label
            out: Set[VReg] = set()
            for succ in block.successors():
                out |= live_in.get(succ, set())
            new_in = use_sets[label] | (out - def_sets[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return LivenessInfo(live_in=live_in, live_out=live_out)


@dataclass
class Interval:
    """Live interval of one virtual register over the linearised body."""

    reg: VReg
    start: int
    end: int
    #: True when a call instruction lies strictly inside the interval —
    #: such intervals must live in callee-saved registers (or spill).
    crosses_call: bool = False

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end


def build_intervals(
    fn: IRFunction,
) -> Tuple[List[Interval], Dict[str, Tuple[int, int]]]:
    """Compute conservative live intervals.

    Returns the intervals (sorted by start) and the [start, end) position
    range of each block in the linear numbering.  Positions count one
    slot per instruction; a register live-out of a block extends to the
    block's end, live-in extends from the block's start — conservative
    but correct for loops.
    """
    liveness = compute_liveness(fn)
    block_range: Dict[str, Tuple[int, int]] = {}
    position = 0
    for block in fn.blocks:
        start = position
        position += max(len(block.instrs), 1)
        block_range[block.label] = (start, position)

    starts: Dict[VReg, int] = {}
    ends: Dict[VReg, int] = {}
    call_positions: List[int] = []

    def extend(reg: VReg, pos: int) -> None:
        if reg not in starts or pos < starts[reg]:
            starts[reg] = pos
        if reg not in ends or pos > ends[reg]:
            ends[reg] = pos

    for param in fn.param_regs:
        extend(param, 0)

    for block in fn.blocks:
        begin, finish = block_range[block.label]
        for reg in liveness.live_in[block.label]:
            extend(reg, begin)
        for reg in liveness.live_out[block.label]:
            extend(reg, finish)
        for offset, instr in enumerate(block.instrs):
            pos = begin + offset
            if isinstance(instr, ICall):
                call_positions.append(pos)
            for reg in instr.uses():
                extend(reg, pos)
            for reg in instr.defs():
                extend(reg, pos)

    intervals: List[Interval] = []
    for reg, start in starts.items():
        end = ends[reg] + 1
        crosses = any(start < c < end - 1 for c in call_positions)
        intervals.append(Interval(reg, start, end, crosses))
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return intervals, block_range
