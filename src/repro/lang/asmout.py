"""Machine-operation representation between codegen and the scheduler.

The code generator produces :class:`MachineOp` objects — concrete
KAHRISMA operations with physical registers and (possibly symbolic)
immediates.  The RISC backend renders them one per line; the VLIW
backend first runs the list scheduler over each basic block and renders
bundles.  Definition/use sets come from the ADL operation description,
so the scheduler reasons about exactly the dependences the hardware
sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..adl.model import Operation

#: Immediate operand: numeric, or a symbolic string such as
#: "%hi(table+4)" or a branch label.
Imm = Union[int, str]


@dataclass
class MachineOp:
    """One concrete operation, pre-scheduling."""

    op: Operation
    #: Field name -> value (int for registers, Imm for immediates).
    values: Dict[str, Imm]
    line: int = 0
    #: Calls/returns act as scheduling barriers.
    is_barrier: bool = False

    @property
    def mnemonic(self) -> str:
        return self.op.name

    @property
    def defs(self) -> Tuple[int, ...]:
        regs = tuple(self.values[f] for f in self.op.dst_fields)
        return tuple(r for r in regs + self.op.implicit_writes if r != 0)

    @property
    def uses(self) -> Tuple[int, ...]:
        regs = tuple(self.values[f] for f in self.op.src_fields)
        return regs + self.op.implicit_reads

    @property
    def is_load(self) -> bool:
        return self.op.kind == "load"

    @property
    def is_store(self) -> bool:
        return self.op.kind == "store"

    @property
    def is_control(self) -> bool:
        return self.op.kind in ("branch", "halt", "switch", "simop")

    def render(self) -> str:
        operands: List[str] = []
        for template in self.op.asm_operands:
            if template.endswith("(rs1)"):
                inner = template[:-5]
                operands.append(
                    f"{self.values[inner]}(r{self.values['rs1']})"
                )
            elif self.op.field(template).role in ("reg_dst", "reg_src"):
                operands.append(f"r{self.values[template]}")
            else:
                operands.append(str(self.values[template]))
        if operands:
            return f"{self.mnemonic} " + ", ".join(operands)
        return self.mnemonic


@dataclass
class AsmBlock:
    """One basic block of machine operations with its label."""

    label: str
    ops: List[MachineOp] = field(default_factory=list)


@dataclass
class AsmFunction:
    """Machine code of one function, pre-rendering."""

    name: str
    #: Mangled symbol, e.g. ``$risc$main``.
    symbol: str
    isa_name: str
    blocks: List[AsmBlock] = field(default_factory=list)
    source_file: str = ""
    line: int = 0


def render_risc(fn: AsmFunction, *, with_loc: bool = True) -> List[str]:
    """Render a function as one operation per line (issue width 1)."""
    lines: List[str] = []
    last_line = 0
    for block in fn.blocks:
        if block.label:
            lines.append(f"{block.label}:")
        for op in block.ops:
            if with_loc and op.line and op.line != last_line:
                lines.append(f"    .loc 1 {op.line}")
                last_line = op.line
            lines.append(f"    {op.render()}")
    return lines


def render_bundles(
    fn: AsmFunction,
    bundles_per_block: Dict[str, List[List[MachineOp]]],
    *,
    with_loc: bool = True,
) -> List[str]:
    """Render a function as VLIW bundles produced by the scheduler."""
    lines: List[str] = []
    last_line = 0
    for block in fn.blocks:
        if block.label:
            lines.append(f"{block.label}:")
        for bundle in bundles_per_block[block.label]:
            first = next((op.line for op in bundle if op.line), 0)
            if with_loc and first and first != last_line:
                lines.append(f"    .loc 1 {first}")
                last_line = first
            body = " ; ".join(op.render() for op in bundle)
            lines.append(f"    {{ {body} }}")
    return lines
