"""Linear-scan register allocation.

Physical register classes (KAHRISMA calling convention):

* caller-saved pool: r8..r15, r24..r27 — intervals not crossing calls;
* callee-saved pool: r16..r23 — intervals live across a call (saved and
  restored in the prologue/epilogue);
* reserved: r0 zero, r1/r3 codegen scratch, r2 return value, r4..r7
  argument registers (never allocated: argument marshalling writes
  them freely), r28..r31 gp/fp/sp/ra.

Intervals that cannot get a register are spilled to the stack frame;
the code generator rewrites spilled operands through the scratch
registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .ir import IRFunction, VReg
from .liveness import Interval, build_intervals

CALLER_SAVED = tuple(range(8, 16)) + tuple(range(24, 28))
CALLEE_SAVED = tuple(range(16, 24))

#: Allocation result for one virtual register.
Location = Tuple[str, int]  # ("reg", phys) or ("spill", slot)


@dataclass
class AllocationResult:
    #: VReg -> ("reg", physical index) | ("spill", spill slot id)
    locations: Dict[VReg, Location]
    #: Callee-saved registers the function must preserve.
    used_callee_saved: List[int]
    #: Number of 4-byte spill slots.
    num_spill_slots: int
    intervals: List[Interval] = field(default_factory=list)

    def location(self, reg: VReg) -> Location:
        return self.locations[reg]


def allocate_registers(fn: IRFunction) -> AllocationResult:
    intervals, _ranges = build_intervals(fn)
    locations: Dict[VReg, Location] = {}
    used_callee: Set[int] = set()
    num_spills = 0

    free_caller: List[int] = list(CALLER_SAVED)
    free_callee: List[int] = list(CALLEE_SAVED)
    #: Active intervals sorted by end, with their physical register.
    active: List[Tuple[Interval, int]] = []

    def expire(position: int) -> None:
        while active and active[0][0].end <= position:
            interval, phys = active.pop(0)
            if phys in CALLEE_SAVED:
                free_callee.append(phys)
            else:
                free_caller.append(phys)

    def insert_active(interval: Interval, phys: int) -> None:
        index = 0
        while index < len(active) and active[index][0].end <= interval.end:
            index += 1
        active.insert(index, (interval, phys))

    for interval in intervals:
        expire(interval.start)
        phys: Optional[int] = None
        if interval.crosses_call:
            if free_callee:
                phys = free_callee.pop(0)
        else:
            if free_caller:
                phys = free_caller.pop(0)
            elif free_callee:
                # Borrow a callee-saved register rather than spilling.
                phys = free_callee.pop(0)
        if phys is not None:
            locations[interval.reg] = ("reg", phys)
            if phys in CALLEE_SAVED:
                used_callee.add(phys)
            insert_active(interval, phys)
            continue
        # Spill: evict the compatible active interval ending last if it
        # outlives the current one, else spill the current interval.
        victim_index = None
        for index in range(len(active) - 1, -1, -1):
            candidate, candidate_phys = active[index]
            if interval.crosses_call and candidate_phys not in CALLEE_SAVED:
                continue
            victim_index = index
            break
        if victim_index is not None and \
                active[victim_index][0].end > interval.end:
            victim, victim_phys = active.pop(victim_index)
            locations[victim.reg] = ("spill", num_spills)
            num_spills += 1
            locations[interval.reg] = ("reg", victim_phys)
            if victim_phys in CALLEE_SAVED:
                used_callee.add(victim_phys)
            insert_active(interval, victim_phys)
        else:
            locations[interval.reg] = ("spill", num_spills)
            num_spills += 1

    return AllocationResult(
        locations=locations,
        used_callee_saved=sorted(used_callee),
        num_spill_slots=num_spills,
        intervals=intervals,
    )
