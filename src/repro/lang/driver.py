"""Compiler driver: KC source → mixed-ISA KAHRISMA assembly.

Implements the three mixed-ISA features of the paper's compiler
(Section IV): it can (1) switch the target ISA during code generation —
here per function —, (2) emit the ``.isa`` pseudo directive so the
assembler knows the active ISA, and (3) prefix function symbols with
the target ISA identifier so one application can carry multiple
implementations of the same function.

Cross-ISA calls go through generated *thunks*: a thunk named for the
caller's ISA switches the processor, calls the callee's implementation,
switches back and returns — the runtime counterpart of the
``switchtarget`` operation (Section V-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..adl.model import Architecture
from ..libc import LIBC_BY_NAME
from ..targetgen.asmgen import mangle
from .asmout import AsmFunction, render_bundles, render_risc
from .astnodes import GlobalVar, Program
from .codegen import generate_function
from .irgen import generate_ir
from .opt import optimize
from .parser import parse_program
from .sema import SemaError, analyze
from .sched import schedule_function


@dataclass
class CompileResult:
    """Assembly text plus the metadata the framework needs to link/run."""

    assembly: str
    entry_symbol: str
    entry_isa: int
    #: function name -> (isa name, mangled symbol)
    functions: Dict[str, Tuple[str, str]] = field(default_factory=dict)


def compile_source(
    source: str,
    arch: Architecture,
    *,
    isa: str = "risc",
    filename: str = "<kc>",
    optimize_ir: bool = True,
    entry: str = "main",
    disambiguate_offsets: bool = False,
) -> CompileResult:
    """Compile every function for a single ISA."""
    return compile_mixed(
        source, arch, isa_map={}, default_isa=isa, filename=filename,
        optimize_ir=optimize_ir, entry=entry,
        disambiguate_offsets=disambiguate_offsets,
    )


def compile_mixed(
    source: str,
    arch: Architecture,
    *,
    isa_map: Dict[str, str],
    default_isa: str = "risc",
    filename: str = "<kc>",
    optimize_ir: bool = True,
    entry: str = "main",
    disambiguate_offsets: bool = False,
) -> CompileResult:
    """Compile with per-function ISA selection.

    ``isa_map`` maps function names to ISA names; unmapped functions use
    ``default_isa``.  Cross-ISA calls are bridged with switchtarget
    thunks.  ``disambiguate_offsets`` lets the VLIW scheduler prove
    same-base constant-offset memory accesses independent instead of
    using the paper's fully pessimistic model.
    """
    program = parse_program(source, filename)
    sema = analyze(program)
    ir = generate_ir(program, sema)
    if optimize_ir:
        optimize(ir)

    for name in isa_map:
        if all(fn.name != name for fn in ir.functions):
            raise SemaError(f"isa_map names unknown function {name!r}",
                            filename, 0)

    fn_isa: Dict[str, str] = {}
    for fn in ir.functions:
        isa_name = isa_map.get(fn.name, default_isa)
        arch.isa_named(isa_name)  # validate
        fn_isa[fn.name] = isa_name

    lines: List[str] = [f'.file 1 "{filename}"']
    result_functions: Dict[str, Tuple[str, str]] = {}
    thunks: Set[Tuple[str, str]] = set()  # (caller isa, callee name)

    for fn in ir.functions:
        isa_name = fn_isa[fn.name]
        symbol = mangle(isa_name, fn.name)
        result_functions[fn.name] = (isa_name, symbol)
        callee_symbols: Dict[str, str] = {}
        for other in ir.functions:
            callee_symbols[other.name] = mangle(isa_name, other.name)
            if fn_isa[other.name] != isa_name:
                thunks.add((isa_name, other.name))
        for libc_name in LIBC_BY_NAME:
            callee_symbols.setdefault(libc_name, mangle(isa_name, libc_name))

        asm_fn = generate_function(
            fn, arch, symbol=symbol, isa_name=isa_name,
            callee_symbols=callee_symbols, source_file=filename,
        )
        width = arch.isa_named(isa_name).issue_width
        lines.append("")
        lines.append(f".isa {isa_name}")
        lines.append(".text")
        lines.append(f".global {symbol}")
        lines.append(f".func {symbol}")
        lines.append(f"{symbol}:")
        if width == 1:
            lines.extend(render_risc(asm_fn))
        else:
            bundles = schedule_function(
                asm_fn, width, disambiguate_offsets=disambiguate_offsets
            )
            lines.extend(render_bundles(asm_fn, bundles))
        lines.append(".endfunc")

    for caller_isa, callee in sorted(thunks):
        lines.extend(
            _render_thunk(arch, caller_isa, fn_isa[callee], callee)
        )

    lines.extend(_render_globals(ir.globals))

    if entry not in fn_isa:
        raise SemaError(f"entry function {entry!r} not defined", filename, 0)
    entry_isa_name = fn_isa[entry]
    return CompileResult(
        assembly="\n".join(lines) + "\n",
        entry_symbol=mangle(entry_isa_name, entry),
        entry_isa=arch.isa_named(entry_isa_name).ident,
        functions=result_functions,
    )


def _render_thunk(
    arch: Architecture, caller_isa: str, callee_isa: str, callee: str
) -> List[str]:
    """Cross-ISA call thunk: switch, call, switch back, return.

    Entered in the caller's ISA under the caller-ISA-mangled name; the
    body after the first ``switchtarget`` executes in the callee's ISA.
    """
    thunk_symbol = mangle(caller_isa, callee)
    target_symbol = mangle(callee_isa, callee)
    caller = arch.isa_named(caller_isa)
    callee_desc = arch.isa_named(callee_isa)
    lines = ["", f"# thunk: {caller_isa} -> {callee_isa} for {callee}"]
    lines.append(f".isa {caller_isa}")
    lines.append(".text")
    lines.append(f".global {thunk_symbol}")
    lines.append(f"{thunk_symbol}:")

    def op(text: str, width: int) -> str:
        return f"    {{ {text} }}" if width > 1 else f"    {text}"

    lines.append(op(f"switchtarget {callee_desc.ident}", caller.issue_width))
    lines.append(f".isa {callee_isa}")
    width = callee_desc.issue_width
    lines.append(op("addi sp, sp, -8", width))
    lines.append(op("sw ra, 4(sp)", width))
    lines.append(op(f"jal {target_symbol}", width))
    lines.append(op("lw ra, 4(sp)", width))
    lines.append(op("addi sp, sp, 8", width))
    lines.append(op(f"switchtarget {caller.ident}", width))
    lines.append(f".isa {caller_isa}")
    lines.append(op("jr ra", caller.issue_width))
    return lines


def _render_globals(global_vars: List[GlobalVar]) -> List[str]:
    lines: List[str] = []
    data: List[str] = []
    bss: List[str] = []
    for var in global_vars:
        initialised = (
            var.init is not None
            or var.init_list is not None
            or var.init_string is not None
        )
        target = data if initialised else bss
        element = var.type.size
        if element >= 4:
            target.append("    .align 4")
        elif element == 2:
            target.append("    .align 2")
        if not var.name.startswith(".L"):
            # Export user globals so debuggers and tools can resolve
            # them by name (string-literal pool symbols stay local).
            target.append(f"    .global {var.name}")
        target.append(f"{var.name}:")
        length = var.array_len if var.array_len is not None else 1
        if not initialised:
            target.append(f"    .space {element * length}")
            continue
        if var.init_string is not None:
            data_directive = ".asciiz"
            escaped = (
                var.init_string.replace("\\", "\\\\").replace('"', '\\"')
                .replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r")
            )
            target.append(f'    {data_directive} "{escaped}"')
            pad = length - (len(var.init_string) + 1)
            if pad > 0:
                target.append(f"    .space {pad}")
            continue
        values = var.init_list if var.init_list is not None else [var.init]
        values = list(values) + [0] * (length - len(values))
        directive = {4: ".word", 2: ".half", 1: ".byte"}[element]
        for start in range(0, len(values), 8):
            chunk = values[start:start + 8]
            masked = [v & 0xFFFFFFFF for v in chunk]
            target.append(f"    {directive} " + ", ".join(map(str, masked)))
    if data:
        lines.append("")
        lines.append(".data")
        lines.extend(data)
    if bss:
        lines.append("")
        lines.append(".bss")
        lines.extend(bss)
    return lines
