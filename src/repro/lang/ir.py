"""Three-address intermediate representation of the KC compiler.

Functions are graphs of basic blocks over an infinite set of virtual
registers.  Operands are either :class:`VReg` or Python ints (immediate
constants); the optimiser folds aggressively and the code generator
picks immediate instruction forms where the ISA allows.

The IR is deliberately close to the KAHRISMA operation set so that
RISC code generation is a thin lowering and the VLIW scheduler can
reason about the same dependences the hardware sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union


@dataclass(frozen=True)
class VReg:
    index: int

    def __repr__(self) -> str:
        return f"%{self.index}"


Operand = Union[VReg, int]

#: Arithmetic/logic IBin operators.
BIN_OPS = frozenset(
    {
        "add", "sub", "mul", "div", "rem",
        "and", "or", "xor", "shl", "shr", "sar",
        "slt", "sltu",
    }
)

#: ICondBr comparison operators.
COND_OPS = frozenset(
    {"eq", "ne", "lt", "le", "gt", "ge", "ltu", "leu", "gtu", "geu"}
)

#: Negation map for branch inversion.
COND_NEGATE = {
    "eq": "ne", "ne": "eq",
    "lt": "ge", "ge": "lt", "le": "gt", "gt": "le",
    "ltu": "geu", "geu": "ltu", "leu": "gtu", "gtu": "leu",
}

#: Operand-swapped equivalents (a OP b == b SWAP(OP) a).
COND_SWAP = {
    "eq": "eq", "ne": "ne",
    "lt": "gt", "gt": "lt", "le": "ge", "ge": "le",
    "ltu": "gtu", "gtu": "ltu", "leu": "geu", "geu": "leu",
}


class Instr:
    """Base class; every instruction records its source line."""

    __slots__ = ("line",)

    def __init__(self, line: int = 0) -> None:
        self.line = line

    # Subclasses override the introspection helpers used by the
    # optimiser, liveness analysis and register allocator.

    def defs(self) -> Tuple[VReg, ...]:
        return ()

    def uses(self) -> Tuple[VReg, ...]:
        return ()

    def replace_uses(self, mapping: Dict[VReg, Operand]) -> None:
        """Substitute operands (copy/constant propagation)."""

    @property
    def is_terminator(self) -> bool:
        return False

    @property
    def has_side_effects(self) -> bool:
        return False


def _as_uses(*operands: Operand) -> Tuple[VReg, ...]:
    return tuple(op for op in operands if isinstance(op, VReg))


def _subst(op: Operand, mapping: Dict[VReg, Operand]) -> Operand:
    while isinstance(op, VReg) and op in mapping:
        op = mapping[op]
    return op


class IConst(Instr):
    __slots__ = ("dst", "value")

    def __init__(self, dst: VReg, value: int, line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.value = value

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"{self.dst} = const {self.value}"


class IBin(Instr):
    __slots__ = ("dst", "op", "a", "b")

    def __init__(self, dst: VReg, op: str, a: Operand, b: Operand,
                 line: int = 0) -> None:
        super().__init__(line)
        assert op in BIN_OPS, op
        self.dst = dst
        self.op = op
        self.a = a
        self.b = b

    def defs(self):
        return (self.dst,)

    def uses(self):
        return _as_uses(self.a, self.b)

    def replace_uses(self, mapping):
        self.a = _subst(self.a, mapping)
        self.b = _subst(self.b, mapping)

    def __repr__(self):
        return f"{self.dst} = {self.op} {self.a}, {self.b}"


class ICopy(Instr):
    __slots__ = ("dst", "src")

    def __init__(self, dst: VReg, src: Operand, line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.src = src

    def defs(self):
        return (self.dst,)

    def uses(self):
        return _as_uses(self.src)

    def replace_uses(self, mapping):
        self.src = _subst(self.src, mapping)

    def __repr__(self):
        return f"{self.dst} = {self.src}"


class ILoad(Instr):
    __slots__ = ("dst", "base", "offset", "size", "signed")

    def __init__(self, dst: VReg, base: VReg, offset: int, size: int,
                 signed: bool = False, line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.base = base
        self.offset = offset
        self.size = size
        self.signed = signed

    def defs(self):
        return (self.dst,)

    def uses(self):
        return (self.base,)

    def replace_uses(self, mapping):
        new = _subst(self.base, mapping)
        if isinstance(new, VReg):
            self.base = new

    def __repr__(self):
        return f"{self.dst} = load{self.size} [{self.base}+{self.offset}]"


class IStore(Instr):
    __slots__ = ("base", "offset", "value", "size")

    def __init__(self, base: VReg, offset: int, value: Operand, size: int,
                 line: int = 0) -> None:
        super().__init__(line)
        self.base = base
        self.offset = offset
        self.value = value
        self.size = size

    def uses(self):
        return _as_uses(self.base, self.value)

    def replace_uses(self, mapping):
        new = _subst(self.base, mapping)
        if isinstance(new, VReg):
            self.base = new
        self.value = _subst(self.value, mapping)

    @property
    def has_side_effects(self):
        return True

    def __repr__(self):
        return f"store{self.size} [{self.base}+{self.offset}] = {self.value}"


class IAddrGlobal(Instr):
    __slots__ = ("dst", "symbol", "offset")

    def __init__(self, dst: VReg, symbol: str, offset: int = 0,
                 line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.symbol = symbol
        self.offset = offset

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"{self.dst} = &{self.symbol}+{self.offset}"


class IAddrStack(Instr):
    __slots__ = ("dst", "slot", "offset")

    def __init__(self, dst: VReg, slot: int, offset: int = 0,
                 line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.slot = slot
        self.offset = offset

    def defs(self):
        return (self.dst,)

    def __repr__(self):
        return f"{self.dst} = &stack[{self.slot}]+{self.offset}"


class ICall(Instr):
    __slots__ = ("dst", "callee", "args")

    def __init__(self, dst: Optional[VReg], callee: str,
                 args: List[Operand], line: int = 0) -> None:
        super().__init__(line)
        self.dst = dst
        self.callee = callee
        self.args = args

    def defs(self):
        return (self.dst,) if self.dst is not None else ()

    def uses(self):
        return _as_uses(*self.args)

    def replace_uses(self, mapping):
        self.args = [_subst(a, mapping) for a in self.args]

    @property
    def has_side_effects(self):
        return True

    def __repr__(self):
        prefix = f"{self.dst} = " if self.dst else ""
        return f"{prefix}call {self.callee}({', '.join(map(str, self.args))})"


class IRet(Instr):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Operand] = None, line: int = 0) -> None:
        super().__init__(line)
        self.value = value

    def uses(self):
        return _as_uses(self.value) if self.value is not None else ()

    def replace_uses(self, mapping):
        if self.value is not None:
            self.value = _subst(self.value, mapping)

    @property
    def is_terminator(self):
        return True

    @property
    def has_side_effects(self):
        return True

    def __repr__(self):
        return f"ret {self.value}" if self.value is not None else "ret"


class IJmp(Instr):
    __slots__ = ("target",)

    def __init__(self, target: str, line: int = 0) -> None:
        super().__init__(line)
        self.target = target

    @property
    def is_terminator(self):
        return True

    @property
    def has_side_effects(self):
        return True

    def __repr__(self):
        return f"jmp {self.target}"


class ICondBr(Instr):
    __slots__ = ("op", "a", "b", "if_true", "if_false")

    def __init__(self, op: str, a: Operand, b: Operand,
                 if_true: str, if_false: str, line: int = 0) -> None:
        super().__init__(line)
        assert op in COND_OPS, op
        self.op = op
        self.a = a
        self.b = b
        self.if_true = if_true
        self.if_false = if_false

    def uses(self):
        return _as_uses(self.a, self.b)

    def replace_uses(self, mapping):
        self.a = _subst(self.a, mapping)
        self.b = _subst(self.b, mapping)

    @property
    def is_terminator(self):
        return True

    @property
    def has_side_effects(self):
        return True

    def __repr__(self):
        return (f"br {self.op} {self.a}, {self.b} ? {self.if_true} "
                f": {self.if_false}")


@dataclass
class Block:
    label: str
    instrs: List[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    def successors(self) -> Tuple[str, ...]:
        term = self.terminator
        if isinstance(term, IJmp):
            return (term.target,)
        if isinstance(term, ICondBr):
            return (term.if_true, term.if_false)
        return ()

    def __repr__(self):  # pragma: no cover - debugging aid
        body = "\n  ".join(map(repr, self.instrs))
        return f"{self.label}:\n  {body}"


@dataclass
class IRFunction:
    name: str
    num_params: int
    param_regs: List[VReg]
    blocks: List[Block] = field(default_factory=list)
    #: Stack slot id -> size in bytes (local arrays and spills).
    stack_slots: Dict[int, int] = field(default_factory=dict)
    vreg_count: int = 0
    returns_value: bool = True
    line: int = 0

    def new_vreg(self) -> VReg:
        reg = VReg(self.vreg_count)
        self.vreg_count += 1
        return reg

    def new_slot(self, size: int) -> int:
        slot = len(self.stack_slots)
        self.stack_slots[slot] = size
        return slot

    def block(self, label: str) -> Block:
        for b in self.blocks:
            if b.label == label:
                return b
        raise KeyError(label)

    def dump(self) -> str:
        header = f"function {self.name}({self.num_params} params)"
        return header + "\n" + "\n".join(map(repr, self.blocks))


@dataclass
class IRProgram:
    functions: List[IRFunction] = field(default_factory=list)
    #: Global variables in AST form (layout happens at codegen).
    globals: list = field(default_factory=list)
    filename: str = "<kc>"
