"""Semantic analysis: name resolution, type annotation and checks.

Runs between parser and IR generation.  Annotates every expression with
its :class:`~repro.lang.astnodes.Type` (used for pointer-arithmetic
scaling and load widths), resolves calls against defined functions and
the emulated C library, and rejects the constructs KC does not support
with source-located errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..libc import LIBC_BY_NAME
from .astnodes import (
    AddrOfExpr,
    AssignExpr,
    BinaryExpr,
    BlockStmt,
    BreakStmt,
    CallExpr,
    CHAR,
    ContinueStmt,
    DeclStmt,
    DerefExpr,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    GlobalVar,
    IfStmt,
    IncDecExpr,
    IndexExpr,
    INT,
    NameExpr,
    NumberExpr,
    Program,
    ReturnStmt,
    Stmt,
    StringExpr,
    SwitchStmt,
    TernaryExpr,
    Type,
    UnaryExpr,
    WhileStmt,
)

MAX_REG_ARGS = 4


class SemaError(Exception):
    def __init__(self, message: str, filename: str, line: int) -> None:
        super().__init__(f"{filename}:{line}: {message}")
        self.line = line


@dataclass
class VarInfo:
    type: Type
    #: True for variables that denote storage addressable as an array
    #: (global arrays, local arrays) — their name decays to a pointer.
    is_array: bool = False
    is_global: bool = False


@dataclass
class FuncSig:
    name: str
    return_type: Type
    param_types: List[Type]
    is_libc: bool = False


class SemanticChecker:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.filename = program.filename
        self.functions: Dict[str, FuncSig] = {}
        self.globals: Dict[str, VarInfo] = {}
        self._scopes: List[Dict[str, VarInfo]] = []
        self._current: Optional[FunctionDef] = None
        self._loop_depth = 0
        self._switch_depth = 0

    def error(self, message: str, line: int) -> SemaError:
        return SemaError(message, self.filename, line)

    # -- entry point -----------------------------------------------------

    def check(self) -> None:
        for name, libc_fn in LIBC_BY_NAME.items():
            self.functions[name] = FuncSig(
                name=name,
                return_type=INT if libc_fn.returns_value else Type("void"),
                param_types=[INT] * libc_fn.num_args,
                is_libc=True,
            )
        for var in self.program.globals:
            if var.name in self.globals:
                raise self.error(f"duplicate global {var.name!r}", var.line)
            if var.type.is_void:
                raise self.error("void variable", var.line)
            self.globals[var.name] = VarInfo(
                var.type, is_array=var.array_len is not None, is_global=True
            )
        for fn in self.program.functions:
            if fn.name in self.functions:
                raise self.error(f"duplicate function {fn.name!r}", fn.line)
            if len(fn.params) > MAX_REG_ARGS:
                raise self.error(
                    f"function {fn.name!r} has {len(fn.params)} parameters; "
                    f"KC passes at most {MAX_REG_ARGS} (in registers)",
                    fn.line,
                )
            self.functions[fn.name] = FuncSig(
                name=fn.name,
                return_type=fn.return_type,
                param_types=[p.type for p in fn.params],
            )
        for fn in self.program.functions:
            self._check_function(fn)

    # -- functions ----------------------------------------------------------

    def _check_function(self, fn: FunctionDef) -> None:
        self._current = fn
        scope: Dict[str, VarInfo] = {}
        for param in fn.params:
            if param.name in scope:
                raise self.error(f"duplicate parameter {param.name!r}",
                                 param.line)
            scope[param.name] = VarInfo(param.type)
        self._scopes = [scope]
        self._check_block(fn.body)
        self._scopes = []
        self._current = None

    # -- statements --------------------------------------------------------------

    def _check_block(self, block: BlockStmt) -> None:
        self._scopes.append({})
        for stmt in block.body:
            self._check_stmt(stmt)
        self._scopes.pop()

    def _check_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, BlockStmt):
            self._check_block(stmt)
        elif isinstance(stmt, DeclStmt):
            self._check_decl(stmt)
        elif isinstance(stmt, ExprStmt):
            self._check_expr(stmt.expr)
        elif isinstance(stmt, IfStmt):
            self._check_expr(stmt.cond)
            self._check_stmt(stmt.then)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise)
        elif isinstance(stmt, WhileStmt):
            self._check_expr(stmt.cond)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, DoWhileStmt):
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
            self._check_expr(stmt.cond)
        elif isinstance(stmt, ForStmt):
            self._scopes.append({})
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                self._check_expr(stmt.cond)
            if stmt.step is not None:
                self._check_expr(stmt.step)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
            self._scopes.pop()
        elif isinstance(stmt, ReturnStmt):
            fn = self._current
            if stmt.value is not None:
                if fn.return_type.is_void:
                    raise self.error("return with value in void function",
                                     stmt.line)
                self._check_expr(stmt.value)
            elif not fn.return_type.is_void:
                raise self.error("return without value", stmt.line)
        elif isinstance(stmt, SwitchStmt):
            self._check_expr(stmt.value)
            self._switch_depth += 1
            for _const, body in stmt.cases:
                self._scopes.append({})
                for inner in body:
                    self._check_stmt(inner)
                self._scopes.pop()
            if stmt.default is not None:
                self._scopes.append({})
                for inner in stmt.default:
                    self._check_stmt(inner)
                self._scopes.pop()
            self._switch_depth -= 1
        elif isinstance(stmt, BreakStmt):
            if self._loop_depth == 0 and self._switch_depth == 0:
                raise self.error("break outside a loop or switch",
                                 stmt.line)
        elif isinstance(stmt, ContinueStmt):
            if self._loop_depth == 0:
                raise self.error("continue outside a loop", stmt.line)
        else:  # pragma: no cover - parser produces no other nodes
            raise self.error(f"unsupported statement {type(stmt).__name__}",
                             stmt.line)

    def _check_decl(self, stmt: DeclStmt) -> None:
        scope = self._scopes[-1]
        if stmt.name in scope:
            raise self.error(f"redeclaration of {stmt.name!r}", stmt.line)
        if stmt.decl_type.is_void:
            raise self.error("void variable", stmt.line)
        if stmt.array_len is not None:
            if stmt.array_len <= 0:
                raise self.error("array length must be positive", stmt.line)
            if stmt.init is not None:
                raise self.error("array initialised with scalar", stmt.line)
            scope[stmt.name] = VarInfo(stmt.decl_type, is_array=True)
            if stmt.init_list is not None:
                if len(stmt.init_list) > stmt.array_len:
                    raise self.error("too many initializers", stmt.line)
                for expr in stmt.init_list:
                    self._check_expr(expr)
        else:
            if stmt.init_list is not None:
                raise self.error("scalar initialised with list", stmt.line)
            scope[stmt.name] = VarInfo(stmt.decl_type)
            if stmt.init is not None:
                self._check_expr(stmt.init)

    # -- expressions ---------------------------------------------------------------

    def lookup(self, name: str, line: int) -> VarInfo:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        info = self.globals.get(name)
        if info is None:
            raise self.error(f"undeclared identifier {name!r}", line)
        return info

    def _check_expr(self, expr: Expr) -> Type:
        result = self._infer(expr)
        expr.type = result
        return result

    def _infer(self, expr: Expr) -> Type:
        if isinstance(expr, NumberExpr):
            return INT
        if isinstance(expr, StringExpr):
            return CHAR.pointer_to()
        if isinstance(expr, NameExpr):
            info = self.lookup(expr.name, expr.line)
            if info.is_array:
                return info.type.pointer_to()  # decay
            return info.type
        if isinstance(expr, UnaryExpr):
            inner = self._check_expr(expr.operand)
            if expr.op in ("-", "~") and inner.is_pointer:
                raise self.error(f"{expr.op} on pointer", expr.line)
            return INT
        if isinstance(expr, BinaryExpr):
            return self._infer_binary(expr)
        if isinstance(expr, AssignExpr):
            target_t = self._check_lvalue(expr.target)
            self._check_expr(expr.value)
            if expr.op != "=" and target_t.is_pointer and \
                    expr.op not in ("+=", "-="):
                raise self.error(f"{expr.op} on pointer", expr.line)
            return target_t
        if isinstance(expr, TernaryExpr):
            self._check_expr(expr.cond)
            then_t = self._check_expr(expr.then)
            self._check_expr(expr.otherwise)
            return then_t
        if isinstance(expr, CallExpr):
            sig = self.functions.get(expr.callee)
            if sig is None:
                raise self.error(f"call to undefined function "
                                 f"{expr.callee!r}", expr.line)
            if not sig.is_libc and len(expr.args) != len(sig.param_types):
                raise self.error(
                    f"{expr.callee}: expected {len(sig.param_types)} "
                    f"arguments, got {len(expr.args)}", expr.line,
                )
            if sig.is_libc and len(expr.args) != len(sig.param_types):
                raise self.error(
                    f"{expr.callee}: C library function takes "
                    f"{len(sig.param_types)} arguments", expr.line,
                )
            for arg in expr.args:
                self._check_expr(arg)
            return sig.return_type
        if isinstance(expr, IndexExpr):
            base_t = self._check_expr(expr.base)
            if not base_t.is_pointer:
                raise self.error("indexing a non-pointer", expr.line)
            self._check_expr(expr.index)
            return base_t.deref()
        if isinstance(expr, DerefExpr):
            inner = self._check_expr(expr.pointer)
            if not inner.is_pointer:
                raise self.error("dereference of non-pointer", expr.line)
            return inner.deref()
        if isinstance(expr, AddrOfExpr):
            target = expr.target
            if isinstance(target, IndexExpr):
                elem_t = self._check_expr(target)
                return elem_t.pointer_to()
            if isinstance(target, NameExpr):
                info = self.lookup(target.name, expr.line)
                if info.is_array:
                    self._check_expr(target)
                    return info.type.pointer_to()
                if info.is_global:
                    self._check_expr(target)
                    return info.type.pointer_to()
                raise self.error(
                    "address-of on register-allocated local (only globals "
                    "and array elements are addressable in KC)", expr.line,
                )
            if isinstance(target, DerefExpr):
                return self._check_expr(target.pointer)
            raise self.error("invalid operand of &", expr.line)
        if isinstance(expr, IncDecExpr):
            return self._check_lvalue(expr.target)
        raise self.error(f"unsupported expression {type(expr).__name__}",
                         expr.line)

    def _infer_binary(self, expr: BinaryExpr) -> Type:
        left = self._check_expr(expr.left)
        right = self._check_expr(expr.right)
        op = expr.op
        if op in ("&&", "||"):
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return INT
        if op == "+":
            if left.is_pointer and right.is_pointer:
                raise self.error("pointer + pointer", expr.line)
            if left.is_pointer:
                return left
            if right.is_pointer:
                return right
            return self._arith_type(left, right)
        if op == "-":
            if left.is_pointer and right.is_pointer:
                if left.element_size != right.element_size:
                    raise self.error("pointer difference of distinct "
                                     "element types", expr.line)
                return INT
            if left.is_pointer:
                return left
            if right.is_pointer:
                raise self.error("int - pointer", expr.line)
            return self._arith_type(left, right)
        if left.is_pointer or right.is_pointer:
            raise self.error(f"{op} on pointer", expr.line)
        return self._arith_type(left, right)

    @staticmethod
    def _arith_type(left: Type, right: Type) -> Type:
        unsigned = (left.base == "int" and left.unsigned) or (
            right.base == "int" and right.unsigned
        )
        return Type("int", unsigned=unsigned)

    def _check_lvalue(self, expr: Expr) -> Type:
        if isinstance(expr, NameExpr):
            info = self.lookup(expr.name, expr.line)
            if info.is_array:
                raise self.error("array is not assignable", expr.line)
            expr.type = info.type
            return info.type
        if isinstance(expr, (IndexExpr, DerefExpr)):
            return self._check_expr(expr)
        raise self.error("expression is not assignable", expr.line)


def analyze(program: Program) -> SemanticChecker:
    """Run semantic analysis; returns the checker (symbol tables)."""
    checker = SemanticChecker(program)
    checker.check()
    return checker
