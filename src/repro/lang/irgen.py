"""IR generation: typed AST → three-address code.

Scalar locals live in virtual registers (KC has no address-of on
locals), local arrays in stack slots, globals/string literals in data
sections.  Conditions compile to fused compare-and-branch IR, matching
the KAHRISMA branch operations one-to-one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .astnodes import (
    AddrOfExpr,
    AssignExpr,
    BinaryExpr,
    BlockStmt,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    DeclStmt,
    DerefExpr,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    GlobalVar,
    IfStmt,
    IncDecExpr,
    IndexExpr,
    NameExpr,
    NumberExpr,
    Program,
    ReturnStmt,
    Stmt,
    StringExpr,
    SwitchStmt,
    TernaryExpr,
    Type,
    UnaryExpr,
    WhileStmt,
)
from .ir import (
    Block,
    IAddrGlobal,
    IAddrStack,
    IBin,
    ICall,
    ICondBr,
    IConst,
    ICopy,
    IJmp,
    ILoad,
    IRet,
    IRFunction,
    IRProgram,
    IStore,
    Operand,
    VReg,
)
from .sema import SemaError, SemanticChecker

MASK32 = 0xFFFFFFFF

_CMP_TO_COND = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
                ">": "gt", ">=": "ge"}


class _PreEvaluated(Expr):
    """Wraps an already-computed operand so compound assignments can
    re-enter the binary-expression generator without re-evaluating the
    lvalue."""

    def __init__(self, operand: Operand, expr_type, line: int) -> None:
        super().__init__(line=line, type=expr_type)
        self.operand = operand

#: name -> ("reg", VReg, Type) | ("slot", slot_id, Type) | ("global", GlobalVar)
_Binding = Tuple[str, object, Optional[Type]]


class IRGenerator:
    def __init__(self, program: Program, sema: SemanticChecker) -> None:
        self.program = program
        self.sema = sema
        self.filename = program.filename
        self.ir = IRProgram(filename=program.filename)
        self.ir.globals = list(program.globals)
        self._string_pool: Dict[str, str] = {}
        self._label_counter = 0
        # per-function state
        self.fn: Optional[IRFunction] = None
        self.block: Optional[Block] = None
        self._scopes: List[Dict[str, _Binding]] = []
        self._breaks: List[str] = []
        self._continues: List[str] = []
        self._line = 0

    # -- program ------------------------------------------------------------

    def generate(self) -> IRProgram:
        for fn in self.program.functions:
            self.ir.functions.append(self._gen_function(fn))
        return self.ir

    def _intern_string(self, text: str) -> str:
        symbol = self._string_pool.get(text)
        if symbol is None:
            symbol = f".Lstr{len(self._string_pool)}"
            self._string_pool[symbol] = text
            # Strings become const char arrays in the data image.
            self.ir.globals.append(
                GlobalVar(
                    name=symbol,
                    type=Type("char"),
                    array_len=len(text) + 1,
                    init_string=text,
                    is_const=True,
                )
            )
            self._string_pool[text] = symbol
        return symbol

    # -- function ------------------------------------------------------------

    def _gen_function(self, fn_ast: FunctionDef) -> IRFunction:
        fn = IRFunction(
            name=fn_ast.name,
            num_params=len(fn_ast.params),
            param_regs=[],
            returns_value=not fn_ast.return_type.is_void,
            line=fn_ast.line,
        )
        self.fn = fn
        self._label_counter = 0
        self._scopes = [{}]
        entry = self._new_block("entry")
        self.block = entry
        for param in fn_ast.params:
            reg = fn.new_vreg()
            fn.param_regs.append(reg)
            self._scopes[0][param.name] = ("reg", reg, param.type)
        self._gen_block(fn_ast.body)
        if self.block.terminator is None:
            # Implicit return (0 for value-returning functions, as for
            # C's main).
            self._emit(IRet(0 if fn.returns_value else None, line=self._line))
        self._scopes = []
        self.fn = None
        result = fn
        self.block = None
        return result

    # -- plumbing --------------------------------------------------------------

    def _new_block(self, hint: str) -> Block:
        label = f".L{self.fn.name}_{self._label_counter}_{hint}"
        self._label_counter += 1
        block = Block(label)
        self.fn.blocks.append(block)
        return block

    def _emit(self, instr) -> None:
        if instr.line == 0:
            instr.line = self._line
        self.block.instrs.append(instr)

    def _set_block(self, block: Block) -> None:
        self.block = block

    def _jump(self, target: Block) -> None:
        if self.block.terminator is None:
            self._emit(IJmp(target.label))

    def _materialize(self, operand: Operand) -> VReg:
        if isinstance(operand, VReg):
            return operand
        reg = self.fn.new_vreg()
        self._emit(IConst(reg, operand & MASK32))
        return reg

    def error(self, message: str, line: int) -> SemaError:
        return SemaError(message, self.filename, line)

    def _lookup(self, name: str, line: int) -> _Binding:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        for var in self.ir.globals:
            if var.name == name:
                return ("global", var, var.type)
        raise self.error(f"undeclared identifier {name!r}", line)

    # -- statements ----------------------------------------------------------------

    def _gen_block(self, block_ast: BlockStmt) -> None:
        self._scopes.append({})
        for stmt in block_ast.body:
            self._gen_stmt(stmt)
        self._scopes.pop()

    def _gen_stmt(self, stmt: Stmt) -> None:
        self._line = stmt.line or self._line
        if isinstance(stmt, BlockStmt):
            self._gen_block(stmt)
        elif isinstance(stmt, DeclStmt):
            self._gen_decl(stmt)
        elif isinstance(stmt, ExprStmt):
            self._gen_expr(stmt.expr)
        elif isinstance(stmt, IfStmt):
            self._gen_if(stmt)
        elif isinstance(stmt, WhileStmt):
            self._gen_while(stmt)
        elif isinstance(stmt, DoWhileStmt):
            self._gen_do_while(stmt)
        elif isinstance(stmt, ForStmt):
            self._gen_for(stmt)
        elif isinstance(stmt, SwitchStmt):
            self._gen_switch(stmt)
        elif isinstance(stmt, ReturnStmt):
            value = None
            if stmt.value is not None:
                value = self._gen_expr(stmt.value)
            self._emit(IRet(value, line=stmt.line))
            self._set_block(self._new_block("dead"))
        elif isinstance(stmt, BreakStmt):
            self._emit(IJmp(self._breaks[-1], line=stmt.line))
            self._set_block(self._new_block("dead"))
        elif isinstance(stmt, ContinueStmt):
            self._emit(IJmp(self._continues[-1], line=stmt.line))
            self._set_block(self._new_block("dead"))
        else:  # pragma: no cover
            raise self.error(f"unsupported statement {type(stmt).__name__}",
                             stmt.line)

    def _gen_decl(self, stmt: DeclStmt) -> None:
        scope = self._scopes[-1]
        if stmt.array_len is not None:
            elem = stmt.decl_type.size
            slot = self.fn.new_slot(elem * stmt.array_len)
            scope[stmt.name] = ("slot", slot, stmt.decl_type)
            if stmt.init_list:
                base = self.fn.new_vreg()
                self._emit(IAddrStack(base, slot, 0))
                for i, expr in enumerate(stmt.init_list):
                    value = self._gen_expr(expr)
                    self._emit(IStore(base, i * elem, value, elem))
        else:
            reg = self.fn.new_vreg()
            scope[stmt.name] = ("reg", reg, stmt.decl_type)
            if stmt.init is not None:
                value = self._gen_expr(stmt.init)
                self._emit(ICopy(reg, value))
            else:
                self._emit(IConst(reg, 0))

    def _gen_if(self, stmt: IfStmt) -> None:
        then_b = self._new_block("then")
        end_b = self._new_block("endif")
        else_b = self._new_block("else") if stmt.otherwise else end_b
        self._gen_cond(stmt.cond, then_b, else_b)
        self._set_block(then_b)
        self._gen_stmt(stmt.then)
        self._jump(end_b)
        if stmt.otherwise is not None:
            self._set_block(else_b)
            self._gen_stmt(stmt.otherwise)
            self._jump(end_b)
        self._set_block(end_b)

    def _gen_while(self, stmt: WhileStmt) -> None:
        head = self._new_block("while")
        body = self._new_block("body")
        end = self._new_block("endwhile")
        self._jump(head)
        self._set_block(head)
        self._gen_cond(stmt.cond, body, end)
        self._breaks.append(end.label)
        self._continues.append(head.label)
        self._set_block(body)
        self._gen_stmt(stmt.body)
        self._jump(head)
        self._breaks.pop()
        self._continues.pop()
        self._set_block(end)

    def _gen_do_while(self, stmt: DoWhileStmt) -> None:
        body = self._new_block("do")
        cond_b = self._new_block("docond")
        end = self._new_block("enddo")
        self._jump(body)
        self._breaks.append(end.label)
        self._continues.append(cond_b.label)
        self._set_block(body)
        self._gen_stmt(stmt.body)
        self._jump(cond_b)
        self._breaks.pop()
        self._continues.pop()
        self._set_block(cond_b)
        self._gen_cond(stmt.cond, body, end)
        self._set_block(end)

    def _gen_for(self, stmt: ForStmt) -> None:
        self._scopes.append({})
        if stmt.init is not None:
            self._gen_stmt(stmt.init)
        head = self._new_block("for")
        body = self._new_block("forbody")
        step_b = self._new_block("forstep")
        end = self._new_block("endfor")
        self._jump(head)
        self._set_block(head)
        if stmt.cond is not None:
            self._gen_cond(stmt.cond, body, end)
        else:
            self._jump(body)
        self._breaks.append(end.label)
        self._continues.append(step_b.label)
        self._set_block(body)
        self._gen_stmt(stmt.body)
        self._jump(step_b)
        self._set_block(step_b)
        if stmt.step is not None:
            self._gen_expr(stmt.step)
        self._jump(head)
        self._breaks.pop()
        self._continues.pop()
        self._scopes.pop()
        self._set_block(end)

    def _gen_switch(self, stmt: SwitchStmt) -> None:
        """C semantics: sequential case compare, fall-through bodies,
        ``break`` exits to the end block."""
        value = self._gen_expr(stmt.value)
        value_reg = self._materialize(value)
        end = self._new_block("endswitch")
        case_blocks = [
            self._new_block(f"case{i}") for i in range(len(stmt.cases))
        ]
        default_block = (
            self._new_block("default") if stmt.default is not None else end
        )

        # Dispatch chain: one equality test per case label.
        for i, (const, _body) in enumerate(stmt.cases):
            next_check = (
                self._new_block(f"check{i + 1}")
                if i + 1 < len(stmt.cases)
                else default_block
            )
            self._emit(
                ICondBr("eq", value_reg, const & MASK32,
                        case_blocks[i].label, next_check.label,
                        line=stmt.line)
            )
            self._set_block(next_check)
        if not stmt.cases:
            self._jump(default_block)

        # Bodies with fall-through; break exits the switch.
        self._breaks.append(end.label)
        bodies = list(zip(case_blocks, [b for _c, b in stmt.cases]))
        if stmt.default is not None:
            bodies.append((default_block, stmt.default))
        for index, (block, body) in enumerate(bodies):
            self._set_block(block)
            for inner in body:
                self._gen_stmt(inner)
            if self.block.terminator is None:
                fallthrough = (
                    bodies[index + 1][0] if index + 1 < len(bodies) else end
                )
                self._jump(fallthrough)
        self._breaks.pop()
        self._set_block(end)

    # -- conditions ---------------------------------------------------------------

    def _gen_cond(self, expr: Expr, if_true: Block, if_false: Block) -> None:
        self._line = expr.line or self._line
        if isinstance(expr, BinaryExpr):
            if expr.op == "&&":
                mid = self._new_block("and")
                self._gen_cond(expr.left, mid, if_false)
                self._set_block(mid)
                self._gen_cond(expr.right, if_true, if_false)
                return
            if expr.op == "||":
                mid = self._new_block("or")
                self._gen_cond(expr.left, if_true, mid)
                self._set_block(mid)
                self._gen_cond(expr.right, if_true, if_false)
                return
            if expr.op in _CMP_TO_COND:
                cond = _CMP_TO_COND[expr.op]
                if self._is_unsigned_cmp(expr) and cond not in ("eq", "ne"):
                    cond += "u"
                a = self._gen_expr(expr.left)
                b = self._gen_expr(expr.right)
                self._emit(
                    ICondBr(cond, a, b, if_true.label, if_false.label,
                            line=expr.line)
                )
                return
        if isinstance(expr, UnaryExpr) and expr.op == "!":
            self._gen_cond(expr.operand, if_false, if_true)
            return
        value = self._gen_expr(expr)
        self._emit(
            ICondBr("ne", value, 0, if_true.label, if_false.label,
                    line=expr.line)
        )

    @staticmethod
    def _is_unsigned_cmp(expr: BinaryExpr) -> bool:
        for side in (expr.left.type, expr.right.type):
            if side is not None and (side.is_pointer or side.unsigned):
                return True
        return False

    def _cond_value(self, expr: Expr) -> Operand:
        """Materialise a boolean expression as 0/1."""
        result = self.fn.new_vreg()
        true_b = self._new_block("tval")
        false_b = self._new_block("fval")
        end = self._new_block("bval")
        self._gen_cond(expr, true_b, false_b)
        self._set_block(true_b)
        self._emit(IConst(result, 1))
        self._jump(end)
        self._set_block(false_b)
        self._emit(IConst(result, 0))
        self._jump(end)
        self._set_block(end)
        return result

    # -- expressions ----------------------------------------------------------------

    def _gen_expr(self, expr: Expr) -> Operand:
        self._line = expr.line or self._line
        if isinstance(expr, _PreEvaluated):
            return expr.operand
        if isinstance(expr, NumberExpr):
            return expr.value & MASK32
        if isinstance(expr, StringExpr):
            symbol = self._intern_string(expr.value)
            reg = self.fn.new_vreg()
            self._emit(IAddrGlobal(reg, symbol))
            return reg
        if isinstance(expr, NameExpr):
            return self._gen_name(expr)
        if isinstance(expr, UnaryExpr):
            return self._gen_unary(expr)
        if isinstance(expr, BinaryExpr):
            return self._gen_binary(expr)
        if isinstance(expr, AssignExpr):
            return self._gen_assign(expr)
        if isinstance(expr, TernaryExpr):
            result = self.fn.new_vreg()
            then_b = self._new_block("tern_t")
            else_b = self._new_block("tern_f")
            end = self._new_block("tern_e")
            self._gen_cond(expr.cond, then_b, else_b)
            self._set_block(then_b)
            self._emit(ICopy(result, self._gen_expr(expr.then)))
            self._jump(end)
            self._set_block(else_b)
            self._emit(ICopy(result, self._gen_expr(expr.otherwise)))
            self._jump(end)
            self._set_block(end)
            return result
        if isinstance(expr, CallExpr):
            args = [self._gen_expr(a) for a in expr.args]
            sig = self.sema.functions[expr.callee]
            dst = self.fn.new_vreg() if not sig.return_type.is_void else None
            self._emit(ICall(dst, expr.callee, args, line=expr.line))
            return dst if dst is not None else 0
        if isinstance(expr, IndexExpr):
            base, offset, size, signed = self._gen_lvalue_addr(expr)
            dst = self.fn.new_vreg()
            self._emit(ILoad(dst, base, offset, size, signed))
            return dst
        if isinstance(expr, DerefExpr):
            base, offset, size, signed = self._gen_lvalue_addr(expr)
            dst = self.fn.new_vreg()
            self._emit(ILoad(dst, base, offset, size, signed))
            return dst
        if isinstance(expr, AddrOfExpr):
            return self._gen_addr_of(expr)
        if isinstance(expr, IncDecExpr):
            return self._gen_incdec(expr)
        raise self.error(f"unsupported expression {type(expr).__name__}",
                         expr.line)

    def _gen_name(self, expr: NameExpr) -> Operand:
        kind, payload, var_type = self._lookup(expr.name, expr.line)
        if kind == "reg":
            return payload
        if kind == "slot":
            reg = self.fn.new_vreg()
            self._emit(IAddrStack(reg, payload, 0))
            return reg
        var: GlobalVar = payload
        reg = self.fn.new_vreg()
        if var.array_len is not None:
            self._emit(IAddrGlobal(reg, var.name))
            return reg
        addr = self.fn.new_vreg()
        self._emit(IAddrGlobal(addr, var.name))
        self._emit(
            ILoad(reg, addr, 0, var.type.size, signed=False)
        )
        return reg

    def _gen_unary(self, expr: UnaryExpr) -> Operand:
        if expr.op == "!":
            return self._cond_value(expr)
        value = self._gen_expr(expr.operand)
        dst = self.fn.new_vreg()
        if expr.op == "-":
            self._emit(IBin(dst, "sub", 0, value))
        else:  # "~"
            self._emit(IBin(dst, "xor", value, 0xFFFFFFFF))
        return dst

    _BIN_TO_IR = {
        "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
        "&": "and", "|": "or", "^": "xor", "<<": "shl",
    }

    def _gen_binary(self, expr: BinaryExpr) -> Operand:
        op = expr.op
        if op in ("&&", "||"):
            return self._cond_value(expr)
        if op in _CMP_TO_COND:
            return self._gen_compare(expr)
        left_t = expr.left.type
        right_t = expr.right.type
        a = self._gen_expr(expr.left)
        b = self._gen_expr(expr.right)
        if op == ">>":
            is_signed = not (
                left_t is not None and (left_t.unsigned or left_t.is_pointer)
            )
            dst = self.fn.new_vreg()
            self._emit(IBin(dst, "sar" if is_signed else "shr", a, b))
            return dst
        if op in ("+", "-"):
            left_ptr = left_t is not None and left_t.is_pointer
            right_ptr = right_t is not None and right_t.is_pointer
            if op == "+" and (left_ptr or right_ptr):
                if right_ptr:
                    a, b = b, a
                    left_t = right_t
                scale = left_t.element_size
                b = self._scale(b, scale)
            elif op == "-" and left_ptr and right_ptr:
                diff = self.fn.new_vreg()
                self._emit(IBin(diff, "sub", a, b))
                return self._unscale(diff, left_t.element_size)
            elif op == "-" and left_ptr:
                b = self._scale(b, left_t.element_size)
        dst = self.fn.new_vreg()
        self._emit(IBin(dst, self._BIN_TO_IR[op], a, b))
        return dst

    def _scale(self, operand: Operand, scale: int) -> Operand:
        if scale == 1:
            return operand
        if isinstance(operand, int):
            return (operand * scale) & MASK32
        dst = self.fn.new_vreg()
        if scale & (scale - 1) == 0:
            self._emit(IBin(dst, "shl", operand, scale.bit_length() - 1))
        else:
            self._emit(IBin(dst, "mul", operand, scale))
        return dst

    def _unscale(self, operand: VReg, scale: int) -> Operand:
        if scale == 1:
            return operand
        dst = self.fn.new_vreg()
        if scale & (scale - 1) == 0:
            self._emit(IBin(dst, "sar", operand, scale.bit_length() - 1))
        else:
            self._emit(IBin(dst, "div", operand, scale))
        return dst

    def _gen_compare(self, expr: BinaryExpr) -> Operand:
        cond = _CMP_TO_COND[expr.op]
        unsigned = self._is_unsigned_cmp(expr)
        a = self._gen_expr(expr.left)
        b = self._gen_expr(expr.right)
        dst = self.fn.new_vreg()
        slt = "sltu" if unsigned else "slt"
        if cond == "eq":
            diff = self.fn.new_vreg()
            self._emit(IBin(diff, "sub", a, b))
            self._emit(IBin(dst, "sltu", diff, 1))
        elif cond == "ne":
            diff = self.fn.new_vreg()
            self._emit(IBin(diff, "sub", a, b))
            self._emit(IBin(dst, "sltu", 0, diff))
        elif cond == "lt":
            self._emit(IBin(dst, slt, a, b))
        elif cond == "gt":
            self._emit(IBin(dst, slt, b, a))
        elif cond == "le":
            tmp = self.fn.new_vreg()
            self._emit(IBin(tmp, slt, b, a))
            self._emit(IBin(dst, "xor", tmp, 1))
        else:  # ge
            tmp = self.fn.new_vreg()
            self._emit(IBin(tmp, slt, a, b))
            self._emit(IBin(dst, "xor", tmp, 1))
        return dst

    # -- lvalues -------------------------------------------------------------------

    def _gen_lvalue_addr(self, expr: Expr) -> Tuple[VReg, int, int, bool]:
        """Return (base vreg, const offset, access size, signed load)."""
        if isinstance(expr, IndexExpr):
            elem_t: Type = expr.type
            size = elem_t.size if not elem_t.is_pointer else 4
            base = self._materialize(self._gen_expr(expr.base))
            index = self._gen_expr(expr.index)
            if isinstance(index, int):
                signed_index = index - (1 << 32) if index & 0x80000000 else index
                return base, signed_index * size, size, False
            scaled = self._scale(index, size)
            addr = self.fn.new_vreg()
            self._emit(IBin(addr, "add", base, scaled))
            return addr, 0, size, False
        if isinstance(expr, DerefExpr):
            elem_t = expr.type
            size = elem_t.size if not elem_t.is_pointer else 4
            base = self._materialize(self._gen_expr(expr.pointer))
            return base, 0, size, False
        if isinstance(expr, NameExpr):
            kind, payload, _t = self._lookup(expr.name, expr.line)
            if kind == "global":
                var: GlobalVar = payload
                addr = self.fn.new_vreg()
                self._emit(IAddrGlobal(addr, var.name))
                return addr, 0, var.type.size, False
        raise self.error("expression is not addressable", expr.line)

    def _gen_addr_of(self, expr: AddrOfExpr) -> Operand:
        target = expr.target
        if isinstance(target, IndexExpr):
            base, offset, size, _signed = self._gen_lvalue_addr(target)
            if offset == 0:
                return base
            dst = self.fn.new_vreg()
            self._emit(IBin(dst, "add", base, offset & MASK32))
            return dst
        if isinstance(target, NameExpr):
            kind, payload, _t = self._lookup(target.name, target.line)
            if kind == "slot":
                reg = self.fn.new_vreg()
                self._emit(IAddrStack(reg, payload, 0))
                return reg
            if kind == "global":
                reg = self.fn.new_vreg()
                self._emit(IAddrGlobal(reg, payload.name))
                return reg
            raise self.error("address-of on register local", expr.line)
        if isinstance(target, DerefExpr):
            return self._gen_expr(target.pointer)
        raise self.error("invalid operand of &", expr.line)

    # -- assignment ----------------------------------------------------------------

    def _gen_assign(self, expr: AssignExpr) -> Operand:
        target = expr.target
        if expr.op == "=":
            value = self._gen_expr(expr.value)
            self._store_lvalue(target, value)
            return value
        # Compound assignment: load, apply, store.
        base_op = expr.op[:-1]
        current = self._gen_expr(target)
        synthetic = BinaryExpr(line=expr.line, op=base_op,
                               left=target, right=expr.value)
        synthetic.left = _PreEvaluated(current, target.type, expr.line)
        result = self._gen_binary(synthetic)
        self._store_lvalue(target, result)
        return result

    def _gen_incdec(self, expr: IncDecExpr) -> Operand:
        target = expr.target
        step = 1
        target_t = target.type
        if target_t is not None and target_t.is_pointer:
            step = target_t.element_size
        current = self._gen_expr(target)
        if not expr.is_prefix:
            # Snapshot the pre-update value: ``current`` may alias the
            # variable's own vreg, which the store below overwrites.
            snapshot = self.fn.new_vreg()
            self._emit(ICopy(snapshot, current))
            current = snapshot
        updated = self.fn.new_vreg()
        op = "add" if expr.op == "++" else "sub"
        self._emit(IBin(updated, op, current, step))
        self._store_lvalue(target, updated)
        return updated if expr.is_prefix else current

    def _store_lvalue(self, target: Expr, value: Operand) -> None:
        if isinstance(target, NameExpr):
            kind, payload, _t = self._lookup(target.name, target.line)
            if kind == "reg":
                self._emit(ICopy(payload, value))
                return
            if kind == "global":
                var: GlobalVar = payload
                addr = self.fn.new_vreg()
                self._emit(IAddrGlobal(addr, var.name))
                self._emit(IStore(addr, 0, value, var.type.size))
                return
            raise self.error("array is not assignable", target.line)
        if isinstance(target, (IndexExpr, DerefExpr)):
            base, offset, size, _signed = self._gen_lvalue_addr(target)
            self._emit(IStore(base, offset, value, size))
            return
        raise self.error("expression is not assignable", target.line)


def generate_ir(program: Program, sema: SemanticChecker) -> IRProgram:
    return IRGenerator(program, sema).generate()
