"""Code generation: IR → KAHRISMA machine operations.

Lowers one :class:`~repro.lang.ir.IRFunction` (after register
allocation) to a list of :class:`~repro.lang.asmout.MachineOp` basic
blocks.  The result is rendered either directly (RISC) or after VLIW
list scheduling (:mod:`repro.lang.sched`).

Scratch-register discipline: r1 (the assembler-temporary role) and r3
are never allocated; spilled operands are reloaded through them and
out-of-range immediates materialised into them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..adl.kahrisma import REG_ARG_FIRST, REG_RA, REG_RV, REG_SP
from ..adl.model import Architecture
from ..targetgen.optable import OperationTable, TargetDescription, build_target
from .asmout import AsmBlock, AsmFunction, Imm, MachineOp
from .ir import (
    IAddrGlobal,
    IAddrStack,
    IBin,
    ICall,
    ICondBr,
    IConst,
    ICopy,
    IJmp,
    ILoad,
    IRet,
    IRFunction,
    IStore,
    Operand,
    VReg,
)
from .regalloc import AllocationResult, allocate_registers

MASK32 = 0xFFFFFFFF
IMM14_MIN, IMM14_MAX = -(1 << 13), (1 << 13) - 1
UIMM14_MAX = (1 << 14) - 1

SCRATCH_A = 1  # r1: first reload / result staging
SCRATCH_B = 3  # r3: second reload / immediate materialisation


class CodegenError(Exception):
    pass


#: IBin op -> (register form, immediate form, signed immediate?).
_BIN_LOWERING = {
    "add": ("add", "addi", True),
    "sub": ("sub", None, True),
    "mul": ("mul", None, True),
    "div": ("div", None, True),
    "rem": ("rem", None, True),
    "and": ("and", "andi", False),
    "or": ("or", "ori", False),
    "xor": ("xor", "xori", False),
    "shl": ("sll", "slli", False),
    "shr": ("srl", "srli", False),
    "sar": ("sra", "srai", False),
    "slt": ("slt", "slti", True),
    "sltu": ("sltu", "sltiu", False),
}

#: ICondBr op -> (branch mnemonic, swap operands?).
_BRANCH_LOWERING = {
    "eq": ("beq", False), "ne": ("bne", False),
    "lt": ("blt", False), "ge": ("bge", False),
    "gt": ("blt", True), "le": ("bge", True),
    "ltu": ("bltu", False), "geu": ("bgeu", False),
    "gtu": ("bltu", True), "leu": ("bgeu", True),
}

_NEGATED_BRANCH = {
    "eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
    "gt": "le", "le": "gt", "ltu": "geu", "geu": "ltu",
    "gtu": "leu", "leu": "gtu",
}

_LOAD_MNEMONIC = {(4, False): "lw", (4, True): "lw",
                  (2, False): "lhu", (2, True): "lh",
                  (1, False): "lbu", (1, True): "lb"}
_STORE_MNEMONIC = {4: "sw", 2: "sh", 1: "sb"}


class FunctionCodegen:
    """Lowers one IR function."""

    def __init__(
        self,
        fn: IRFunction,
        optable: OperationTable,
        symbol: str,
        isa_name: str,
        callee_symbols: Dict[str, str],
        source_file: str,
    ) -> None:
        self.fn = fn
        self.optable = optable
        self.symbol = symbol
        self.isa_name = isa_name
        self.callee_symbols = callee_symbols
        self.alloc: AllocationResult = allocate_registers(fn)
        self.has_calls = any(
            isinstance(instr, ICall)
            for block in fn.blocks
            for instr in block.instrs
        )
        self.out = AsmFunction(
            name=fn.name, symbol=symbol, isa_name=isa_name,
            source_file=source_file, line=fn.line,
        )
        self.current: Optional[AsmBlock] = None
        self._line = fn.line
        self._layout_frame()

    # -- frame ------------------------------------------------------------

    def _layout_frame(self) -> None:
        offset = 0
        self.spill_base = offset
        offset += 4 * self.alloc.num_spill_slots
        self.array_offsets: Dict[int, int] = {}
        for slot, size in self.fn.stack_slots.items():
            self.array_offsets[slot] = offset
            offset += (size + 3) & ~3
        self.saved_offsets: Dict[int, int] = {}
        for reg in self.alloc.used_callee_saved:
            self.saved_offsets[reg] = offset
            offset += 4
        self.ra_offset: Optional[int] = None
        if self.has_calls:
            self.ra_offset = offset
            offset += 4
        self.frame_size = (offset + 7) & ~7

    def _spill_offset(self, slot: int) -> int:
        return self.spill_base + 4 * slot

    # -- emission helpers -----------------------------------------------------

    def emit(self, mnemonic: str, line: Optional[int] = None,
             is_barrier: bool = False, **values: Imm) -> MachineOp:
        entry = self.optable.by_name[mnemonic]
        op = MachineOp(
            op=entry.op, values=values,
            line=self._line if line is None else line,
            is_barrier=is_barrier,
        )
        self.current.ops.append(op)
        return op

    def emit_li(self, rd: int, value: int) -> None:
        value &= MASK32
        signed = value - (1 << 32) if value & 0x80000000 else value
        if IMM14_MIN <= signed <= IMM14_MAX:
            self.emit("addi", rd=rd, rs1=0, imm=signed)
            return
        high, low = value >> 14, value & 0x3FFF
        self.emit("lui", rd=rd, imm=high)
        if low:
            self.emit("ori", rd=rd, rs1=rd, imm=low)

    def emit_la(self, rd: int, symbol: str, offset: int = 0) -> None:
        suffix = f"+{offset}" if offset > 0 else (str(offset) if offset else "")
        ref = f"{symbol}{suffix}"
        self.emit("lui", rd=rd, imm=f"%hi({ref})")
        self.emit("ori", rd=rd, rs1=rd, imm=f"%lo({ref})")

    def emit_move(self, rd: int, rs: int) -> None:
        if rd != rs:
            self.emit("addi", rd=rd, rs1=rs, imm=0)

    # -- operand access ------------------------------------------------------

    def read_operand(self, operand: Operand, scratch: int) -> int:
        """Bring an operand into a register; returns the register."""
        if isinstance(operand, int):
            value = operand & MASK32
            if value == 0:
                return 0
            self.emit_li(scratch, value)
            return scratch
        kind, payload = self.alloc.location(operand)
        if kind == "reg":
            return payload
        self.emit("lw", rd=scratch, rs1=REG_SP, imm=self._spill_offset(payload))
        return scratch

    def dst_register(self, reg: VReg) -> int:
        """Register the result should be computed into (may be scratch)."""
        kind, payload = self.alloc.location(reg)
        return payload if kind == "reg" else SCRATCH_A

    def commit_dst(self, reg: VReg, holding: int) -> None:
        """Store the result back if the vreg was spilled."""
        kind, payload = self.alloc.location(reg)
        if kind == "spill":
            self.emit("sw", rt=holding, rs1=REG_SP,
                      imm=self._spill_offset(payload))

    def write_operand_to(self, operand: Operand, rd: int) -> None:
        """Materialise an operand value into a specific register."""
        if isinstance(operand, int):
            self.emit_li(rd, operand)
            return
        kind, payload = self.alloc.location(operand)
        if kind == "reg":
            self.emit_move(rd, payload)
        else:
            self.emit("lw", rd=rd, rs1=REG_SP,
                      imm=self._spill_offset(payload))

    # -- function structure ---------------------------------------------------

    def generate(self) -> AsmFunction:
        entry_block = AsmBlock(label="")
        self.out.blocks.append(entry_block)
        self.current = entry_block
        self._emit_prologue()

        labels = [b.label for b in self.fn.blocks]
        epilogue_label = f".L_{self.fn.name}_epilogue"
        next_label: Dict[str, str] = {}
        for i, label in enumerate(labels):
            next_label[label] = labels[i + 1] if i + 1 < len(labels) else epilogue_label

        for ir_block in self.fn.blocks:
            block = AsmBlock(label=ir_block.label)
            self.out.blocks.append(block)
            self.current = block
            for instr in ir_block.instrs:
                if instr.line:
                    self._line = instr.line
                self._lower(instr, next_label[ir_block.label], epilogue_label)

        epilogue = AsmBlock(label=epilogue_label)
        self.out.blocks.append(epilogue)
        self.current = epilogue
        self._emit_epilogue()
        return self.out

    def _emit_prologue(self) -> None:
        if self.frame_size:
            self.emit("addi", rd=REG_SP, rs1=REG_SP, imm=-self.frame_size)
        if self.ra_offset is not None:
            self.emit("sw", rt=REG_RA, rs1=REG_SP, imm=self.ra_offset)
        for reg, offset in self.saved_offsets.items():
            self.emit("sw", rt=reg, rs1=REG_SP, imm=offset)
        for index, param in enumerate(self.fn.param_regs):
            source = REG_ARG_FIRST + index
            kind, payload = self.alloc.location(param)
            if kind == "reg":
                self.emit_move(payload, source)
            else:
                self.emit("sw", rt=source, rs1=REG_SP,
                          imm=self._spill_offset(payload))

    def _emit_epilogue(self) -> None:
        for reg, offset in self.saved_offsets.items():
            self.emit("lw", rd=reg, rs1=REG_SP, imm=offset)
        if self.ra_offset is not None:
            self.emit("lw", rd=REG_RA, rs1=REG_SP, imm=self.ra_offset)
        if self.frame_size:
            self.emit("addi", rd=REG_SP, rs1=REG_SP, imm=self.frame_size)
        self.emit("jr", rs1=REG_RA, is_barrier=True)

    # -- instruction lowering ------------------------------------------------------

    def _lower(self, instr, next_label: str, epilogue_label: str) -> None:
        if isinstance(instr, IConst):
            rd = self.dst_register(instr.dst)
            self.emit_li(rd, instr.value)
            self.commit_dst(instr.dst, rd)
        elif isinstance(instr, ICopy):
            rd = self.dst_register(instr.dst)
            self.write_operand_to(instr.src, rd)
            self.commit_dst(instr.dst, rd)
        elif isinstance(instr, IBin):
            self._lower_bin(instr)
        elif isinstance(instr, ILoad):
            base = self.read_operand(instr.base, SCRATCH_A)
            base, offset = self._fit_mem_offset(base, instr.offset)
            rd = self.dst_register(instr.dst)
            mnemonic = _LOAD_MNEMONIC[(instr.size, instr.signed)]
            self.emit(mnemonic, rd=rd, rs1=base, imm=offset)
            self.commit_dst(instr.dst, rd)
        elif isinstance(instr, IStore):
            base = self.read_operand(instr.base, SCRATCH_A)
            base, offset = self._fit_mem_offset(base, instr.offset)
            value = self.read_operand(instr.value, SCRATCH_B)
            self.emit(_STORE_MNEMONIC[instr.size], rt=value, rs1=base,
                      imm=offset)
        elif isinstance(instr, IAddrGlobal):
            rd = self.dst_register(instr.dst)
            self.emit_la(rd, instr.symbol, instr.offset)
            self.commit_dst(instr.dst, rd)
        elif isinstance(instr, IAddrStack):
            rd = self.dst_register(instr.dst)
            offset = self.array_offsets[instr.slot] + instr.offset
            self.emit("addi", rd=rd, rs1=REG_SP, imm=offset)
            self.commit_dst(instr.dst, rd)
        elif isinstance(instr, ICall):
            self._lower_call(instr)
        elif isinstance(instr, IRet):
            if instr.value is not None:
                self.write_operand_to(instr.value, REG_RV)
            if next_label != epilogue_label:
                self.emit("j", imm=epilogue_label, is_barrier=True)
        elif isinstance(instr, IJmp):
            if instr.target != next_label:
                self.emit("j", imm=instr.target, is_barrier=True)
        elif isinstance(instr, ICondBr):
            self._lower_branch(instr, next_label)
        else:  # pragma: no cover
            raise CodegenError(f"cannot lower {instr!r}")

    def _fit_mem_offset(self, base: int, offset: int):
        if IMM14_MIN <= offset <= IMM14_MAX:
            return base, offset
        self.emit_li(SCRATCH_B, offset)
        self.emit("add", rd=SCRATCH_B, rs1=base, rs2=SCRATCH_B)
        return SCRATCH_B, 0

    def _lower_bin(self, instr: IBin) -> None:
        reg_form, imm_form, signed_imm = _BIN_LOWERING[instr.op]
        a, b = instr.a, instr.b
        rd = self.dst_register(instr.dst)
        # sub with constant right operand becomes addi of the negation.
        if instr.op == "sub" and isinstance(b, int):
            neg = -(b - (1 << 32) if b & 0x80000000 else b)
            if IMM14_MIN <= neg <= IMM14_MAX:
                ra = self.read_operand(a, SCRATCH_A)
                self.emit("addi", rd=rd, rs1=ra, imm=neg)
                self.commit_dst(instr.dst, rd)
                return
        if isinstance(b, int) and imm_form is not None:
            value = b & MASK32
            signed_value = value - (1 << 32) if value & 0x80000000 else value
            fits = (
                IMM14_MIN <= signed_value <= IMM14_MAX
                if signed_imm
                else 0 <= value <= UIMM14_MAX
            )
            if imm_form in ("slli", "srli", "srai"):
                fits = 0 <= value <= 31
            if fits:
                ra = self.read_operand(a, SCRATCH_A)
                self.emit(imm_form, rd=rd, rs1=ra,
                          imm=signed_value if signed_imm else value)
                self.commit_dst(instr.dst, rd)
                return
        ra = self.read_operand(a, SCRATCH_A)
        rb = self.read_operand(b, SCRATCH_B)
        self.emit(reg_form, rd=rd, rs1=ra, rs2=rb)
        self.commit_dst(instr.dst, rd)

    def _lower_call(self, instr: ICall) -> None:
        for index, arg in enumerate(instr.args):
            self.write_operand_to(arg, REG_ARG_FIRST + index)
        symbol = self.callee_symbols.get(instr.callee)
        if symbol is None:
            raise CodegenError(
                f"{self.fn.name}: call to unknown function {instr.callee!r}"
            )
        self.emit("jal", imm=symbol, is_barrier=True)
        if instr.dst is not None:
            rd = self.dst_register(instr.dst)
            self.emit_move(rd, REG_RV)
            self.commit_dst(instr.dst, rd)

    def _lower_branch(self, instr: ICondBr, next_label: str) -> None:
        op = instr.op
        a, b = instr.a, instr.b
        if instr.if_false == next_label:
            target, cond = instr.if_true, op
            fall_through = True
        elif instr.if_true == next_label:
            target, cond = instr.if_false, _NEGATED_BRANCH[op]
            fall_through = True
        else:
            target, cond = instr.if_true, op
            fall_through = False
        mnemonic, swap = _BRANCH_LOWERING[cond]
        ra = self.read_operand(a, SCRATCH_A)
        rb = self.read_operand(b, SCRATCH_B)
        if swap:
            ra, rb = rb, ra
        self.emit(mnemonic, rs1=ra, rs2=rb, imm=target, is_barrier=True)
        if not fall_through:
            self.emit("j", imm=instr.if_false, is_barrier=True)


def generate_function(
    fn: IRFunction,
    arch: Architecture,
    *,
    symbol: str,
    isa_name: str,
    callee_symbols: Dict[str, str],
    source_file: str = "",
    target: Optional[TargetDescription] = None,
) -> AsmFunction:
    target = target if target is not None else build_target(arch)
    # Operation encodings are identical across ISAs; use the RISC table.
    optable = target.optable(arch.default_isa)
    return FunctionCodegen(
        fn, optable, symbol, isa_name, callee_symbols, source_file
    ).generate()
