"""IR optimisation passes.

The compiler applies, in order and to a fixpoint: local constant
folding and copy propagation, algebraic simplification (including
strength reduction of multiplications by powers of two — relevant
because ``mul`` costs three cycles on the KAHRISMA EDPE), dead code
elimination and control-flow simplification (jump threading plus
unreachable-block removal).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .ir import (
    Block,
    COND_OPS,
    IAddrGlobal,
    IAddrStack,
    IBin,
    ICall,
    ICondBr,
    IConst,
    ICopy,
    IJmp,
    ILoad,
    IRet,
    IRFunction,
    IStore,
    Instr,
    Operand,
    VReg,
)

MASK32 = 0xFFFFFFFF


def _s32(x: int) -> int:
    x &= MASK32
    return x - 0x100000000 if x & 0x80000000 else x


def _eval_bin(op: str, a: int, b: int) -> Optional[int]:
    """Evaluate an IBin over 32-bit semantics; None if undefined."""
    if op == "add":
        return (a + b) & MASK32
    if op == "sub":
        return (a - b) & MASK32
    if op == "mul":
        return (_s32(a) * _s32(b)) & MASK32
    if op == "div":
        if _s32(b) == 0:
            return None
        q = abs(_s32(a)) // abs(_s32(b))
        if (_s32(a) < 0) != (_s32(b) < 0):
            q = -q
        return q & MASK32
    if op == "rem":
        if _s32(b) == 0:
            return None
        d = _eval_bin("div", a, b)
        return (_s32(a) - _s32(d) * _s32(b)) & MASK32
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return (a << (b & 31)) & MASK32
    if op == "shr":
        return (a & MASK32) >> (b & 31)
    if op == "sar":
        return (_s32(a) >> (b & 31)) & MASK32
    if op == "slt":
        return 1 if _s32(a) < _s32(b) else 0
    if op == "sltu":
        return 1 if (a & MASK32) < (b & MASK32) else 0
    return None


def _eval_cond(op: str, a: int, b: int) -> bool:
    a &= MASK32
    b &= MASK32
    sa, sb = _s32(a), _s32(b)
    return {
        "eq": a == b, "ne": a != b,
        "lt": sa < sb, "le": sa <= sb, "gt": sa > sb, "ge": sa >= sb,
        "ltu": a < b, "leu": a <= b, "gtu": a > b, "geu": a >= b,
    }[op]


def fold_block(block: Block) -> bool:
    """Local constant folding + copy propagation within one block."""
    changed = False
    consts: Dict[VReg, int] = {}
    copies: Dict[VReg, VReg] = {}
    new_instrs: List[Instr] = []

    def invalidate(reg: VReg) -> None:
        consts.pop(reg, None)
        copies.pop(reg, None)
        for key, value in list(copies.items()):
            if value == reg:
                del copies[key]

    def resolve(op: Operand) -> Operand:
        seen = set()
        while isinstance(op, VReg) and op not in seen:
            seen.add(op)
            if op in consts:
                return consts[op]
            if op in copies:
                op = copies[op]
            else:
                break
        return op

    for instr in block.instrs:
        # Substitute known constants/copies into the operands.
        mapping: Dict[VReg, Operand] = {}
        for use in instr.uses():
            resolved = resolve(use)
            if resolved != use:
                mapping[use] = resolved
        if mapping:
            instr.replace_uses(mapping)
            changed = True

        replacement = instr
        if isinstance(instr, IBin):
            replacement = _simplify_bin(instr)
            if replacement is not instr:
                changed = True
        elif isinstance(instr, ICondBr) and isinstance(instr.a, int) \
                and isinstance(instr.b, int):
            taken = _eval_cond(instr.op, instr.a, instr.b)
            replacement = IJmp(
                instr.if_true if taken else instr.if_false, line=instr.line
            )
            changed = True

        for reg in replacement.defs():
            invalidate(reg)
        if isinstance(replacement, IConst):
            consts[replacement.dst] = replacement.value & MASK32
        elif isinstance(replacement, ICopy):
            if isinstance(replacement.src, int):
                consts[replacement.dst] = replacement.src & MASK32
            elif replacement.src != replacement.dst:
                copies[replacement.dst] = replacement.src
        new_instrs.append(replacement)
    block.instrs = new_instrs
    return changed


def _simplify_bin(instr: IBin) -> Instr:
    a, b = instr.a, instr.b
    op = instr.op
    if isinstance(a, int) and isinstance(b, int):
        value = _eval_bin(op, a, b)
        if value is not None:
            return IConst(instr.dst, value, line=instr.line)
        return instr
    # Commutative ops: keep the constant on the right for the
    # immediate instruction forms.
    if isinstance(a, int) and op in ("add", "mul", "and", "or", "xor"):
        a, b = b, a
        instr.a, instr.b = a, b
    if isinstance(b, int):
        b &= MASK32
        if op in ("add", "sub", "or", "xor", "shl", "shr", "sar") and b == 0:
            return ICopy(instr.dst, a, line=instr.line)
        if op == "and" and b == 0:
            return IConst(instr.dst, 0, line=instr.line)
        if op == "mul":
            if b == 0:
                return IConst(instr.dst, 0, line=instr.line)
            if b == 1:
                return ICopy(instr.dst, a, line=instr.line)
            if b & (b - 1) == 0:
                return IBin(instr.dst, "shl", a, b.bit_length() - 1,
                            line=instr.line)
        if op == "div" and b == 1:
            return ICopy(instr.dst, a, line=instr.line)
    return instr


def eliminate_dead_code(fn: IRFunction) -> bool:
    """Remove pure instructions whose results are never used."""
    changed = False
    while True:
        used: Set[VReg] = set()
        for block in fn.blocks:
            for instr in block.instrs:
                used.update(instr.uses())
        removed = False
        for block in fn.blocks:
            kept: List[Instr] = []
            for instr in block.instrs:
                defs = instr.defs()
                if (
                    defs
                    and not instr.has_side_effects
                    and not any(d in used for d in defs)
                ):
                    removed = True
                    continue
                kept.append(instr)
            block.instrs = kept
        changed |= removed
        if not removed:
            return changed


def simplify_cfg(fn: IRFunction) -> bool:
    """Jump threading and unreachable-block removal."""
    changed = False
    # Thread jumps through trivial forwarder blocks.
    forwards: Dict[str, str] = {}
    for block in fn.blocks:
        if len(block.instrs) == 1 and isinstance(block.instrs[0], IJmp):
            forwards[block.label] = block.instrs[0].target

    def final_target(label: str) -> str:
        seen = set()
        while label in forwards and label not in seen:
            seen.add(label)
            label = forwards[label]
        return label

    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, IJmp):
            target = final_target(term.target)
            if target != term.target:
                term.target = target
                changed = True
        elif isinstance(term, ICondBr):
            t = final_target(term.if_true)
            f = final_target(term.if_false)
            if (t, f) != (term.if_true, term.if_false):
                term.if_true, term.if_false = t, f
                changed = True
            if term.if_true == term.if_false:
                block.instrs[-1] = IJmp(term.if_true, line=term.line)
                changed = True

    # Drop blocks unreachable from the entry.
    if fn.blocks:
        reachable: Set[str] = set()
        stack = [fn.blocks[0].label]
        by_label = {b.label: b for b in fn.blocks}
        while stack:
            label = stack.pop()
            if label in reachable:
                continue
            reachable.add(label)
            stack.extend(by_label[label].successors())
        kept_blocks = [b for b in fn.blocks if b.label in reachable]
        if len(kept_blocks) != len(fn.blocks):
            fn.blocks = kept_blocks
            changed = True
    return changed


def optimize_function(fn: IRFunction, *, max_iterations: int = 8) -> None:
    """Run all passes to a fixpoint (bounded)."""
    for _ in range(max_iterations):
        changed = False
        for block in fn.blocks:
            changed |= fold_block(block)
        changed |= eliminate_dead_code(fn)
        changed |= simplify_cfg(fn)
        if not changed:
            return


def optimize(ir_program) -> None:
    for fn in ir_program.functions:
        optimize_function(fn)
