"""Recursive-descent parser for KC."""

from __future__ import annotations

from typing import List, Optional

from .astnodes import (
    AddrOfExpr,
    AssignExpr,
    BinaryExpr,
    BlockStmt,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    DeclStmt,
    DerefExpr,
    DoWhileStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FunctionDef,
    GlobalVar,
    IfStmt,
    IncDecExpr,
    IndexExpr,
    NameExpr,
    NumberExpr,
    Param,
    Program,
    ReturnStmt,
    Stmt,
    StringExpr,
    SwitchStmt,
    TernaryExpr,
    Type,
    UnaryExpr,
    WhileStmt,
)
from .lexer import Token, tokenize


class ParseError(Exception):
    def __init__(self, message: str, filename: str, line: int) -> None:
        super().__init__(f"{filename}:{line}: {message}")
        self.line = line


#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    def __init__(self, source: str, filename: str = "<kc>") -> None:
        self.filename = filename
        self.tokens = tokenize(source, filename)
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.filename, self.tok.line)

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.tok
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise self.error(f"expected {want!r}, got {tok.text!r}")
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.tok
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    # -- top level -----------------------------------------------------------

    def parse(self) -> Program:
        program = Program(filename=self.filename)
        while self.tok.kind != "eof":
            is_const = bool(self.accept("kw", "const"))
            decl_type = self._parse_type(allow_void=True)
            name_tok = self.expect("ident")
            if self.tok.kind == "op" and self.tok.text == "(":
                program.functions.append(
                    self._parse_function(decl_type, name_tok)
                )
            else:
                program.globals.append(
                    self._parse_global(decl_type, name_tok, is_const)
                )
        return program

    def _parse_type(self, allow_void: bool = False) -> Type:
        unsigned = bool(self.accept("kw", "unsigned"))
        tok = self.tok
        if tok.kind == "kw" and tok.text in ("int", "char", "void"):
            self.advance()
            base = tok.text
        elif unsigned:
            base = "int"  # plain "unsigned"
        else:
            raise self.error(f"expected type, got {tok.text!r}")
        if base == "void" and not allow_void:
            raise self.error("void only allowed as return type")
        pointers = 0
        while self.accept("op", "*"):
            pointers += 1
        return Type(base, pointers, unsigned)

    def _parse_function(self, return_type: Type, name_tok: Token) -> FunctionDef:
        self.expect("op", "(")
        params: List[Param] = []
        if not self.accept("op", ")"):
            if self.tok.kind == "kw" and self.tok.text == "void" and \
                    self.tokens[self.pos + 1].text == ")":
                self.advance()
            else:
                while True:
                    self.accept("kw", "const")
                    ptype = self._parse_type()
                    pname = self.expect("ident")
                    if self.accept("op", "["):
                        # Array parameter decays to a pointer.
                        self.accept("num")
                        self.expect("op", "]")
                        ptype = ptype.pointer_to()
                    params.append(Param(ptype, pname.text, pname.line))
                    if not self.accept("op", ","):
                        break
            if self.tokens[self.pos - 1].text != ")":
                self.expect("op", ")")
        body = self._parse_block()
        return FunctionDef(
            name=name_tok.text,
            return_type=return_type,
            params=params,
            body=body,
            line=name_tok.line,
        )

    def _parse_global(
        self, decl_type: Type, name_tok: Token, is_const: bool
    ) -> GlobalVar:
        array_len: Optional[int] = None
        if self.accept("op", "["):
            if self.tok.kind == "num":
                array_len = self.advance().value
            else:
                array_len = None  # size from the initializer
            self.expect("op", "]")
        var = GlobalVar(
            name=name_tok.text,
            type=decl_type,
            array_len=array_len,
            is_const=is_const,
            line=name_tok.line,
        )
        if self.accept("op", "="):
            if self.tok.kind == "string":
                var.init_string = self.advance().text
                if var.array_len is None:
                    var.array_len = len(var.init_string) + 1
            elif self.accept("op", "{"):
                values: List[int] = []
                while not self.accept("op", "}"):
                    values.append(self._parse_const_expr())
                    if not self.accept("op", ","):
                        self.expect("op", "}")
                        break
                var.init_list = values
                if var.array_len is None:
                    var.array_len = len(values)
            else:
                var.init = self._parse_const_expr()
        if var.array_len is None and (var.init_list or var.init_string):
            pass
        self.expect("op", ";")
        return var

    def _parse_const_expr(self) -> int:
        """Constant expression for initializers: literals with +,-,<<,|."""
        expr = self._parse_expr()
        value = _const_eval(expr)
        if value is None:
            raise ParseError(
                "initializer must be a constant expression",
                self.filename, expr.line,
            )
        return value

    # -- statements --------------------------------------------------------------

    def _parse_block(self) -> BlockStmt:
        open_tok = self.expect("op", "{")
        body: List[Stmt] = []
        while not self.accept("op", "}"):
            if self.tok.kind == "eof":
                raise self.error("unexpected end of file in block")
            body.append(self._parse_stmt())
        return BlockStmt(line=open_tok.line, body=body)

    def _parse_stmt(self):
        tok = self.tok
        if tok.kind == "op" and tok.text == "{":
            return self._parse_block()
        if tok.kind == "op" and tok.text == ";":
            self.advance()
            return BlockStmt(line=tok.line, body=[])
        if tok.kind == "kw":
            if tok.text in ("int", "char", "const", "unsigned"):
                return self._parse_decl_stmt()
            if tok.text == "if":
                return self._parse_if()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "do":
                return self._parse_do_while()
            if tok.text == "for":
                return self._parse_for()
            if tok.text == "switch":
                return self._parse_switch()
            if tok.text == "return":
                self.advance()
                value = None
                if not (self.tok.kind == "op" and self.tok.text == ";"):
                    value = self._parse_expr()
                self.expect("op", ";")
                return ReturnStmt(line=tok.line, value=value)
            if tok.text == "break":
                self.advance()
                self.expect("op", ";")
                return BreakStmt(line=tok.line)
            if tok.text == "continue":
                self.advance()
                self.expect("op", ";")
                return ContinueStmt(line=tok.line)
        expr = self._parse_expr()
        self.expect("op", ";")
        return ExprStmt(line=expr.line, expr=expr)

    def _parse_decl_stmt(self) -> DeclStmt:
        line = self.tok.line
        self.accept("kw", "const")
        decl_type = self._parse_type()
        name = self.expect("ident").text
        array_len: Optional[int] = None
        if self.accept("op", "["):
            array_len = self.expect("num").value
            self.expect("op", "]")
        stmt = DeclStmt(
            line=line, decl_type=decl_type, name=name, array_len=array_len
        )
        if self.accept("op", "="):
            if self.accept("op", "{"):
                values: List[Expr] = []
                while not self.accept("op", "}"):
                    values.append(self._parse_assignment())
                    if not self.accept("op", ","):
                        self.expect("op", "}")
                        break
                stmt.init_list = values
                if stmt.array_len is None:
                    stmt.array_len = len(values)
            else:
                stmt.init = self._parse_assignment()
        self.expect("op", ";")
        return stmt

    def _parse_switch(self) -> SwitchStmt:
        line = self.advance().line
        self.expect("op", "(")
        value = self._parse_expr()
        self.expect("op", ")")
        self.expect("op", "{")
        stmt = SwitchStmt(line=line, value=value)
        current: Optional[List] = None
        while not self.accept("op", "}"):
            if self.tok.kind == "eof":
                raise self.error("unexpected end of file in switch")
            if self.accept("kw", "case"):
                const = self._parse_const_expr()
                self.expect("op", ":")
                current = []
                stmt.cases.append((const, current))
                continue
            if self.accept("kw", "default"):
                self.expect("op", ":")
                current = []
                if stmt.default is not None:
                    raise self.error("duplicate default label")
                stmt.default = current
                continue
            if current is None:
                raise self.error("statement before first case label")
            current.append(self._parse_stmt())
        seen = set()
        for const, _body in stmt.cases:
            if const in seen:
                raise ParseError(f"duplicate case {const}",
                                 self.filename, line)
            seen.add(const)
        return stmt

    def _parse_if(self) -> IfStmt:
        line = self.advance().line
        self.expect("op", "(")
        cond = self._parse_expr()
        self.expect("op", ")")
        then = self._parse_stmt()
        otherwise = None
        if self.accept("kw", "else"):
            otherwise = self._parse_stmt()
        return IfStmt(line=line, cond=cond, then=then, otherwise=otherwise)

    def _parse_while(self) -> WhileStmt:
        line = self.advance().line
        self.expect("op", "(")
        cond = self._parse_expr()
        self.expect("op", ")")
        body = self._parse_stmt()
        return WhileStmt(line=line, cond=cond, body=body)

    def _parse_do_while(self) -> DoWhileStmt:
        line = self.advance().line
        body = self._parse_stmt()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self._parse_expr()
        self.expect("op", ")")
        self.expect("op", ";")
        return DoWhileStmt(line=line, body=body, cond=cond)

    def _parse_for(self) -> ForStmt:
        line = self.advance().line
        self.expect("op", "(")
        init = None
        if not self.accept("op", ";"):
            if self.tok.kind == "kw" and self.tok.text in (
                "int", "char", "const", "unsigned"
            ):
                init = self._parse_decl_stmt()
            else:
                expr = self._parse_expr()
                self.expect("op", ";")
                init = ExprStmt(line=expr.line, expr=expr)
        cond = None
        if not self.accept("op", ";"):
            cond = self._parse_expr()
            self.expect("op", ";")
        step = None
        if not (self.tok.kind == "op" and self.tok.text == ")"):
            step = self._parse_expr()
        self.expect("op", ")")
        body = self._parse_stmt()
        return ForStmt(line=line, init=init, cond=cond, step=step, body=body)

    # -- expressions ------------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> Expr:
        left = self._parse_ternary()
        tok = self.tok
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self.advance()
            value = self._parse_assignment()
            return AssignExpr(line=tok.line, op=tok.text, target=left,
                              value=value)
        return left

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(1)
        if self.accept("op", "?"):
            then = self._parse_expr()
            self.expect("op", ":")
            otherwise = self._parse_ternary()
            return TernaryExpr(line=cond.line, cond=cond, then=then,
                               otherwise=otherwise)
        return cond

    def _parse_binary(self, min_prec: int) -> Expr:
        left = self._parse_unary()
        while True:
            tok = self.tok
            if tok.kind != "op":
                return left
            prec = _PRECEDENCE.get(tok.text, 0)
            if prec < min_prec:
                return left
            self.advance()
            right = self._parse_binary(prec + 1)
            left = BinaryExpr(line=tok.line, op=tok.text, left=left,
                              right=right)

    def _parse_unary(self) -> Expr:
        tok = self.tok
        if tok.kind == "op":
            if tok.text in ("-", "!", "~"):
                self.advance()
                operand = self._parse_unary()
                return UnaryExpr(line=tok.line, op=tok.text, operand=operand)
            if tok.text == "+":
                self.advance()
                return self._parse_unary()
            if tok.text == "*":
                self.advance()
                return DerefExpr(line=tok.line, pointer=self._parse_unary())
            if tok.text == "&":
                self.advance()
                return AddrOfExpr(line=tok.line, target=self._parse_unary())
            if tok.text in ("++", "--"):
                self.advance()
                return IncDecExpr(line=tok.line, op=tok.text,
                                  target=self._parse_unary(), is_prefix=True)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            tok = self.tok
            if tok.kind != "op":
                return expr
            if tok.text == "[":
                self.advance()
                index = self._parse_expr()
                self.expect("op", "]")
                expr = IndexExpr(line=tok.line, base=expr, index=index)
            elif tok.text in ("++", "--"):
                self.advance()
                expr = IncDecExpr(line=tok.line, op=tok.text, target=expr,
                                  is_prefix=False)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        tok = self.tok
        if tok.kind == "num":
            self.advance()
            return NumberExpr(line=tok.line, value=tok.value)
        if tok.kind == "string":
            self.advance()
            return StringExpr(line=tok.line, value=tok.text)
        if tok.kind == "ident":
            self.advance()
            if self.tok.kind == "op" and self.tok.text == "(":
                self.advance()
                args: List[Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self.accept("op", ","):
                            break
                    self.expect("op", ")")
                return CallExpr(line=tok.line, callee=tok.text, args=args)
            return NameExpr(line=tok.line, name=tok.text)
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            expr = self._parse_expr()
            self.expect("op", ")")
            return expr
        raise self.error(f"unexpected token {tok.text!r}")


def _const_eval(expr: Expr) -> Optional[int]:
    if isinstance(expr, NumberExpr):
        return expr.value
    if isinstance(expr, UnaryExpr):
        value = _const_eval(expr.operand)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return int(not value)
    if isinstance(expr, BinaryExpr):
        left = _const_eval(expr.left)
        right = _const_eval(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right if right else None,
                "%": lambda: left % right if right else None,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
            }[expr.op]()
        except KeyError:
            return None
    return None


def parse_program(source: str, filename: str = "<kc>") -> Program:
    return Parser(source, filename).parse()
