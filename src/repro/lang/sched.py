"""VLIW list scheduler (compiler back end for the n-issue formats).

Packs the machine operations of each basic block into issue-width-sized
bundles, honouring:

* true dependences (write → read): consumer in a strictly later bundle;
* anti dependences (read → write): same bundle allowed — KAHRISMA VLIW
  semantics read all sources before any write-back (paper Section V-B);
* output dependences (write → write): strictly later bundle;
* memory dependences with the paper's *pessimistic* model (Section
  VI-A: the compiler has no alias analysis): every memory operation
  depends on the last store, every store on all memory operations since;
* barriers (calls, returns, simop, switchtarget): bundle of their own,
  ordered against everything;
* at most one control operation per bundle, placed last in the block.

Priorities follow the critical path measured in operation delays, so
multiplies and loads schedule early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .asmout import AsmBlock, AsmFunction, MachineOp


@dataclass
class _Node:
    op: MachineOp
    index: int
    #: (successor index, latency-in-bundles) pairs.
    succs: List[Tuple[int, int]] = field(default_factory=list)
    num_preds: int = 0
    priority: int = 0
    #: Earliest bundle this op may issue in (updated as preds schedule).
    earliest: int = 0


_MEM_SIZES = {"lw": 4, "sw": 4, "lh": 2, "lhu": 2, "sh": 2,
              "lb": 1, "lbu": 1, "sb": 1}


def _mem_footprint(op: MachineOp, base_version: int):
    """(base reg, base version, offset, size) of a memory op, or None.

    Two accesses through the *same, unredefined* base register with
    disjoint constant offset ranges cannot alias — this needs no alias
    analysis, only the offsets the instruction encodes.  Symbolic
    offsets (%lo relocations) stay pessimistic.
    """
    offset = op.values.get("imm")
    if not isinstance(offset, int):
        return None
    base = op.values.get("rs1")
    if not isinstance(base, int):
        return None
    return (base, base_version, offset, _MEM_SIZES[op.mnemonic])


def _may_alias(a, b) -> bool:
    if a is None or b is None:
        return True
    base_a, ver_a, off_a, size_a = a
    base_b, ver_b, off_b, size_b = b
    if base_a != base_b or ver_a != ver_b:
        # Different or redefined base registers: unknown relation.
        return True
    return not (off_a + size_a <= off_b or off_b + size_b <= off_a)


def _build_dag(ops: List[MachineOp],
               disambiguate_offsets: bool = False) -> List[_Node]:
    nodes = [_Node(op, i) for i, op in enumerate(ops)]
    last_def: Dict[int, int] = {}
    last_uses: Dict[int, List[int]] = {}
    reg_version: Dict[int, int] = {}
    #: (index, footprint) of stores / loads since the last barrier.
    stores: List[Tuple[int, object]] = []
    loads: List[Tuple[int, object]] = []
    last_barrier = -1
    since_barrier: List[int] = []

    def add_edge(src: int, dst: int, latency: int) -> None:
        if src < 0 or src == dst:
            return
        nodes[src].succs.append((dst, latency))
        nodes[dst].num_preds += 1

    for i, op in enumerate(ops):
        # True dependences.
        for reg in op.uses:
            if reg in last_def:
                add_edge(last_def[reg], i, 1)
        # Anti dependences (same-bundle legal: latency 0).
        for reg in op.defs:
            for reader in last_uses.get(reg, ()):
                add_edge(reader, i, 0)
            if reg in last_def:
                add_edge(last_def[reg], i, 1)  # output dependence
        # Memory dependences: pessimistic by default (the compiler has
        # no alias analysis, Section VI-A).  With
        # ``disambiguate_offsets`` same-base constant-offset accesses
        # are proven disjoint instead (ablation bench).
        if op.is_load or op.is_store:
            if disambiguate_offsets:
                footprint = _mem_footprint(
                    op, reg_version.get(op.values.get("rs1"), 0)
                )
            else:
                footprint = None  # _may_alias: always aliases
            for store_index, store_fp in stores:
                if _may_alias(footprint, store_fp):
                    add_edge(store_index, i, 1)
            if op.is_store:
                for load_index, load_fp in loads:
                    if _may_alias(footprint, load_fp):
                        add_edge(load_index, i, 0)
        # Barriers order everything.
        if op.is_barrier:
            for j in since_barrier:
                add_edge(j, i, 1)
            add_edge(last_barrier, i, 1)
        else:
            add_edge(last_barrier, i, 1)

        # Update bookkeeping.
        for reg in op.uses:
            last_uses.setdefault(reg, []).append(i)
        for reg in op.defs:
            last_def[reg] = i
            last_uses[reg] = []
            reg_version[reg] = reg_version.get(reg, 0) + 1
        if op.is_store:
            fp = None
            if disambiguate_offsets:
                fp = _mem_footprint(
                    op, reg_version.get(op.values.get("rs1"), 0)
                )
            stores.append((i, fp))
        elif op.is_load:
            fp = None
            if disambiguate_offsets:
                fp = _mem_footprint(
                    op, reg_version.get(op.values.get("rs1"), 0)
                )
            loads.append((i, fp))
        if op.is_barrier:
            last_barrier = i
            since_barrier = []
            last_def = {}
            last_uses = {}
            stores = []
            loads = []
        else:
            since_barrier.append(i)

    # Critical-path priorities (longest path, weighted by op delay).
    for node in reversed(nodes):
        longest = 0
        for succ, _lat in node.succs:
            longest = max(longest, nodes[succ].priority)
        node.priority = longest + max(node.op.op.delay, 1)
    return nodes


def schedule_block(
    ops: List[MachineOp], width: int,
    *, disambiguate_offsets: bool = False,
) -> List[List[MachineOp]]:
    """Greedy cycle-driven list scheduling into ``width``-slot bundles."""
    if not ops:
        return []
    nodes = _build_dag(ops, disambiguate_offsets)
    unscheduled = set(range(len(nodes)))
    pred_count = [n.num_preds for n in nodes]
    bundles: List[List[MachineOp]] = []
    bundle_index = 0

    # The trailing branch operations of the block (conditional branch
    # plus possibly an unconditional jump) must end up in the final
    # bundles: an operation scheduled *after* the branch would execute
    # speculatively.  They may share a bundle with the last body
    # operations, though.
    tail = set()
    for i in range(len(ops) - 1, -1, -1):
        if ops[i].op.kind == "branch" and ops[i].mnemonic != "jal":
            tail.add(i)
        else:
            break

    while unscheduled:
        current: List[MachineOp] = []
        control_used = False
        scheduled_now: List[int] = []
        # Ops ready in this bundle, highest priority first.
        while len(current) < width:
            remaining_body = any(
                i not in tail and i not in scheduled_now
                for i in unscheduled
            )
            candidates = [
                i for i in unscheduled
                if pred_count[i] == 0
                and nodes[i].earliest <= bundle_index
                and i not in scheduled_now
            ]
            candidates = [
                i for i in candidates
                if not (nodes[i].op.is_control and control_used)
                and not (i in tail and remaining_body)
                and not (
                    nodes[i].op.is_barrier and i not in tail and current
                )
            ]
            if not candidates:
                break
            best = max(candidates, key=lambda i: (nodes[i].priority, -i))
            node = nodes[best]
            current.append(node.op)
            scheduled_now.append(best)
            if node.op.is_control:
                control_used = True
            if node.op.is_barrier:
                break
        for i in scheduled_now:
            unscheduled.discard(i)
            for succ, latency in nodes[i].succs:
                pred_count[succ] -= 1
                earliest = bundle_index + latency
                if earliest > nodes[succ].earliest:
                    nodes[succ].earliest = earliest
        if current:
            bundles.append(current)
        bundle_index += 1
        if not current and not any(
            pred_count[i] == 0 for i in unscheduled
        ):
            raise RuntimeError("scheduler deadlock: cyclic dependence graph")
    return bundles


def schedule_function(
    fn: AsmFunction, width: int,
    *, disambiguate_offsets: bool = False,
) -> Dict[str, List[List[MachineOp]]]:
    """Schedule every block of ``fn`` for a ``width``-issue VLIW ISA."""
    result: Dict[str, List[List[MachineOp]]] = {}
    for block in fn.blocks:
        result[block.label] = schedule_block(
            block.ops, width, disambiguate_offsets=disambiguate_offsets
        )
    return result


def schedule_stats(
    bundles_per_block: Dict[str, List[List[MachineOp]]]
) -> Tuple[int, int]:
    """(total operations, total bundles) over a scheduled function."""
    ops = sum(
        len(bundle)
        for bundles in bundles_per_block.values()
        for bundle in bundles
    )
    slots = sum(len(bundles) for bundles in bundles_per_block.values())
    return ops, slots
