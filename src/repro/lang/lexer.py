"""Lexer for KC, the C subset of the retargetable compiler.

KC stands in for the paper's C/C++ front end (Section IV): 32-bit
integers, chars, one-dimensional arrays, pointers, functions with
recursion, and the usual statement/expression forms — enough to express
the paper's five benchmark kernels idiomatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = frozenset(
    {
        "int", "char", "void", "const", "unsigned",
        "if", "else", "while", "for", "do", "return",
        "break", "continue", "switch", "case", "default",
    }
)

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "[", "]", "{", "}", ",", ";", "?", ":",
)


class LexError(Exception):
    def __init__(self, message: str, filename: str, line: int) -> None:
        super().__init__(f"{filename}:{line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # "num" | "ident" | "kw" | "op" | "string" | "eof"
    text: str
    value: int = 0
    line: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, line={self.line})"


def tokenize(source: str, filename: str = "<kc>") -> List[Token]:
    tokens = list(_scan(source, filename))
    return tokens


def _scan(source: str, filename: str) -> Iterator[Token]:
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", filename, line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            yield Token("num", source[i:j], value, line)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            yield Token(kind, text, 0, line)
            i = j
            continue
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                body = source[i + 1:i + 3]
                j = i + 3
            else:
                body = source[i + 1:i + 2]
                j = i + 2
            if j >= n or source[j] != "'":
                raise LexError("bad character literal", filename, line)
            value = ord(body.encode().decode("unicode_escape"))
            yield Token("num", source[i:j + 1], value, line)
            i = j + 1
            continue
        if ch == '"':
            j = i + 1
            out = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    out.append(source[j:j + 2])
                    j += 2
                else:
                    out.append(source[j])
                    j += 1
            if j >= n:
                raise LexError("unterminated string literal", filename, line)
            text = "".join(out).encode().decode("unicode_escape")
            yield Token("string", text, 0, line)
            i = j + 1
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                yield Token("op", op, 0, line)
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", filename, line)
    yield Token("eof", "", 0, line)
