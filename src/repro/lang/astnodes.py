"""Abstract syntax tree of KC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class Type:
    """``int``, ``char``, or a pointer to either.

    ``base`` is "int", "char" or "void"; ``pointers`` is the pointer
    depth (0 = scalar).  ``unsigned`` only matters for ``int``; ``char``
    is always unsigned in KC.
    """

    base: str
    pointers: int = 0
    unsigned: bool = False

    @property
    def is_pointer(self) -> bool:
        return self.pointers > 0

    @property
    def is_void(self) -> bool:
        return self.base == "void" and not self.pointers

    @property
    def element_size(self) -> int:
        """Size of the pointed-to / element type in bytes."""
        if self.pointers > 1:
            return 4
        return 1 if self.base == "char" else 4

    @property
    def size(self) -> int:
        if self.is_pointer:
            return 4
        return 1 if self.base == "char" else 4

    def deref(self) -> "Type":
        if not self.is_pointer:
            raise ValueError("dereference of non-pointer")
        return Type(self.base, self.pointers - 1, self.unsigned)

    def pointer_to(self) -> "Type":
        return Type(self.base, self.pointers + 1, self.unsigned)

    def __str__(self) -> str:
        return ("unsigned " if self.unsigned else "") + self.base + "*" * self.pointers


INT = Type("int")
UINT = Type("int", unsigned=True)
CHAR = Type("char")
VOID = Type("void")


# -- expressions -------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0
    #: Filled by the semantic checker.
    type: Optional[Type] = None


@dataclass
class NumberExpr(Expr):
    value: int = 0


@dataclass
class StringExpr(Expr):
    value: str = ""


@dataclass
class NameExpr(Expr):
    name: str = ""


@dataclass
class UnaryExpr(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class BinaryExpr(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class AssignExpr(Expr):
    #: "=" or a compound operator like "+=".
    op: str = "="
    target: Expr = None
    value: Expr = None


@dataclass
class TernaryExpr(Expr):
    cond: Expr = None
    then: Expr = None
    otherwise: Expr = None


@dataclass
class CallExpr(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class IndexExpr(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class DerefExpr(Expr):
    pointer: Expr = None


@dataclass
class AddrOfExpr(Expr):
    target: Expr = None


@dataclass
class IncDecExpr(Expr):
    op: str = "++"
    target: Expr = None
    is_prefix: bool = True


# -- statements ----------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class DeclStmt(Stmt):
    decl_type: Type = None
    name: str = ""
    #: Array length (None for scalars).
    array_len: Optional[int] = None
    init: Optional[Expr] = None
    init_list: Optional[List[Expr]] = None


@dataclass
class IfStmt(Stmt):
    cond: Expr = None
    then: Stmt = None
    otherwise: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt = None
    cond: Expr = None


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class SwitchStmt(Stmt):
    value: Expr = None
    #: (case constant, statements) in source order.
    cases: List[Tuple[int, List["Stmt"]]] = field(default_factory=list)
    default: Optional[List["Stmt"]] = None


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class BlockStmt(Stmt):
    body: List[Stmt] = field(default_factory=list)


# -- top level -------------------------------------------------------------------


@dataclass
class Param:
    type: Type
    name: str
    line: int = 0


@dataclass
class FunctionDef:
    name: str
    return_type: Type
    params: List[Param]
    body: BlockStmt
    line: int = 0


@dataclass
class GlobalVar:
    name: str
    type: Type
    array_len: Optional[int] = None
    #: Scalar initializer / list initializer / string initializer.
    init: Optional[int] = None
    init_list: Optional[List[int]] = None
    init_string: Optional[str] = None
    is_const: bool = False
    line: int = 0

    @property
    def size_bytes(self) -> int:
        element = self.type.size
        return element * (self.array_len if self.array_len is not None else 1)


@dataclass
class Program:
    functions: List[FunctionDef] = field(default_factory=list)
    globals: List[GlobalVar] = field(default_factory=list)
    filename: str = "<kc>"

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
