#!/usr/bin/env python3
"""Serving load benchmark: throughput and latency of ``kahrisma serve``.

Starts an in-thread server (:func:`repro.serve.start_in_thread`), pushes
a burst of concurrent small-run jobs at it from a thread pool of HTTP
clients, and records the serving numbers the acceptance criteria ask
for into the ``serving`` section of ``BENCH_table1.json``:

* sustained **requests/sec** (jobs completed / wall clock of the burst);
* submit→result **latency percentiles** (p50/p90/p99) per job;
* per-tenant fairness evidence: jobs are spread over several tenants
  with a per-tenant running cap, and the observed per-tenant maximum
  concurrency is recorded (must never exceed the cap);
* a mid-burst **cancellation** probe: one long job is cancelled while
  running and must come back ``cancelled`` with a resumable checkpoint;
* warm-start evidence: the second half of the burst reuses the worker
  build caches and shared plan cache, so its latency p50 is reported
  separately from the cold first job.

Run from the repository root:

    PYTHONPATH=src python tools/load_bench.py --out BENCH_table1.json
    PYTHONPATH=src python tools/load_bench.py --quick --floor 2.0

``--quick`` shrinks the burst for CI smoke; ``--floor`` makes the run
fail (exit 1) if sustained jobs/sec lands below the floor.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.serve import ServerConfig, start_in_thread  # noqa: E402
from repro.serve.client import KahrismaClient, ServeError  # noqa: E402


def git_commit() -> str:
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            text=True, stderr=subprocess.DEVNULL,
        ).strip()
    except Exception:
        return "unknown"


def percentile(values, fraction: float) -> float:
    """Nearest-rank percentile of an unsorted list."""
    ordered = sorted(values)
    index = min(
        len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
    )
    return ordered[index]


def run_burst(client, *, jobs, tenants, engine, program, poll_every=0.05):
    """Submit ``jobs`` concurrently and wait for all; returns per-job
    latency rows plus the per-tenant concurrency high-water marks."""
    results = []
    lock = threading.Lock()
    high_water = {}

    def watch_concurrency(stop):
        # Sample per-tenant running counts while the burst is in
        # flight: the recorded maxima are the fairness evidence.
        while not stop.is_set():
            try:
                docs = client.jobs()
            except ServeError:
                break
            running = {}
            for doc in docs:
                if doc["state"] == "running":
                    running[doc["tenant"]] = (
                        running.get(doc["tenant"], 0) + 1
                    )
            with lock:
                for tenant, n in running.items():
                    high_water[tenant] = max(
                        high_water.get(tenant, 0), n
                    )
            stop.wait(poll_every)

    def one(index):
        tenant = tenants[index % len(tenants)]
        t0 = time.perf_counter()
        job = client.submit({
            "program": program,
            "engine": engine,
            "tenant": tenant,
            "priority": 10,
        })
        result = client.wait(job["id"], timeout=600)
        return {
            "tenant": tenant,
            "state": result["state"],
            "latency": time.perf_counter() - t0,
            "instructions": result.get("instructions"),
        }

    stop = threading.Event()
    watcher = threading.Thread(target=watch_concurrency, args=(stop,),
                               daemon=True)
    watcher.start()
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=min(jobs, 32)) as pool:
        results = list(pool.map(one, range(jobs)))
    elapsed = time.perf_counter() - t0
    stop.set()
    watcher.join(timeout=2.0)
    return results, elapsed, dict(high_water)


def cancel_probe(client, *, program="djpeg", engine="cache"):
    """Cancel one slow job mid-run; returns the evidence dict."""
    job = client.submit({
        "program": program,
        "engine": engine,          # interactive engine: slow on purpose
        "heartbeat_every": 5_000,  # tight slices -> low cancel latency
        "tenant": "cancel-probe",
    })
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if client.status(job["id"])["state"] == "running":
            break
        time.sleep(0.02)
    time.sleep(0.25)  # let it get some instructions in
    t0 = time.perf_counter()
    client.cancel(job["id"])
    result = client.wait(job["id"], timeout=60)
    return {
        "state": result["state"],
        "cancel_latency_seconds": round(time.perf_counter() - t0, 4),
        "instructions_at_cancel": result.get("instructions"),
        "checkpoint": result.get("checkpoint"),
        "resumable": bool(result.get("checkpoint")),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default=None,
                        help="merge the serving section into this "
                             "BENCH_table1.json (default: print only)")
    parser.add_argument("--jobs", type=int, default=60,
                        help="burst size (default 60)")
    parser.add_argument("--workers", type=int, default=None,
                        help="server worker processes (default: cpu "
                             "count, at most 8)")
    parser.add_argument("--program", default="dct4x4",
                        help="workload per job (default dct4x4)")
    parser.add_argument("--engine", default="superblock",
                        choices=["nocache", "cache", "predict",
                                 "superblock", "aot"])
    parser.add_argument("--tenants", type=int, default=3,
                        help="tenants the burst is spread over "
                             "(default 3)")
    parser.add_argument("--tenant-max-running", type=int, default=2)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 12 jobs, 2 workers")
    parser.add_argument("--floor", type=float, default=None,
                        help="fail if sustained jobs/sec is below this")
    parser.add_argument("--skip-cancel", action="store_true")
    args = parser.parse_args()
    if args.quick:
        args.jobs = min(args.jobs, 12)
        args.workers = args.workers or 2
    workers = args.workers or min(8, os.cpu_count() or 2)

    tmp = tempfile.mkdtemp(prefix="kahrisma-load-")
    config = ServerConfig(
        port=0,
        workers=workers,
        tenant_max_running=args.tenant_max_running,
        checkpoint_dir=os.path.join(tmp, "checkpoints"),
        plan_cache_dir=os.path.join(tmp, "plans"),
    )
    handle = start_in_thread(config)
    client = KahrismaClient(handle.base_url)
    print(f"server: {handle.base_url}  ({workers} workers, "
          f"{args.jobs} jobs, {args.tenants} tenants)", file=sys.stderr)

    tenants = [f"tenant-{i}" for i in range(max(1, args.tenants))]
    try:
        # Warm the pool: first job pays compile + translation once.
        warm0 = time.perf_counter()
        seed = client.submit({"program": args.program,
                              "engine": args.engine})
        client.wait(seed["id"], timeout=600)
        cold_seconds = time.perf_counter() - warm0

        results, elapsed, high_water = run_burst(
            client, jobs=args.jobs, tenants=tenants,
            engine=args.engine, program=args.program,
        )
        failed = [r for r in results if r["state"] != "done"]
        latencies = [r["latency"] for r in results]
        cancel = None
        if not args.skip_cancel:
            cancel = cancel_probe(client)
        metrics_text = client.metrics_text()
    finally:
        handle.stop()

    jobs_per_second = len(results) / elapsed if elapsed else 0.0
    cap_violations = {
        tenant: peak for tenant, peak in high_water.items()
        if peak > args.tenant_max_running
    }
    section = {
        "workload": args.program,
        "engine": args.engine,
        "workers": workers,
        "jobs": len(results),
        "tenants": len(tenants),
        "tenant_max_running": args.tenant_max_running,
        "failed_jobs": len(failed),
        "elapsed_seconds": round(elapsed, 4),
        "jobs_per_second": round(jobs_per_second, 3),
        "cold_first_job_seconds": round(cold_seconds, 4),
        "latency_p50_seconds": round(percentile(latencies, 0.50), 4),
        "latency_p90_seconds": round(percentile(latencies, 0.90), 4),
        "latency_p99_seconds": round(percentile(latencies, 0.99), 4),
        "latency_mean_seconds": round(statistics.mean(latencies), 4),
        "tenant_peak_running": dict(sorted(high_water.items())),
        "tenant_cap_violations": cap_violations,
        "cancellation": cancel,
        "quick": bool(args.quick),
    }
    print(json.dumps(section, indent=2, sort_keys=True))

    if args.out:
        doc = {}
        if os.path.exists(args.out):
            with open(args.out, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        doc["serving"] = section
        doc.setdefault("git_commit", git_commit())
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"merged serving section into {args.out}", file=sys.stderr)

    status = 0
    if failed:
        print(f"FAIL: {len(failed)} jobs did not complete "
              f"(states: {sorted(set(r['state'] for r in failed))})",
              file=sys.stderr)
        status = 1
    if cap_violations:
        print(f"FAIL: tenant concurrency cap exceeded: {cap_violations}",
              file=sys.stderr)
        status = 1
    if cancel is not None and (
        cancel["state"] != "cancelled" or not cancel["resumable"]
    ):
        print(f"FAIL: cancellation probe did not produce a resumable "
              f"cancelled job: {cancel}", file=sys.stderr)
        status = 1
    if args.floor is not None and jobs_per_second < args.floor:
        print(f"FAIL: {jobs_per_second:.3f} jobs/sec below the "
              f"--floor {args.floor}", file=sys.stderr)
        status = 1
    if "kahrisma_serve_scheduler_rejected_tenant" not in metrics_text:
        print("FAIL: /metrics is missing serve scheduler counters",
              file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
