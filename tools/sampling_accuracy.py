#!/usr/bin/env python3
"""Sampling-tier accuracy and speed harness (``docs/performance.md``).

For every bundled benchmark this tool runs the exact fused DOE
reference (warm plan cache — the steady-state Table I configuration)
and the statistical-sampling tier over the same model, then gates the
estimate against the truth:

* the 95% confidence interval must bracket the exact cycle count on
  **every** workload;
* per-workload relative error must stay under its gate (default 5%,
  flagship ``cjpeg`` 2%);
* the ``cjpeg`` sampled run must finish at least ``--min-speedup``
  (default 5x) faster than the full fused DOE run — the point of the
  tier is wall-clock, so CI holds it to the claim.

``--quick`` restricts the sweep to one small workload (default
dct4x4) with relaxed gates (error <= 5%, sampled run must not be
slower than the full run) — the CI smoke configuration.

The sampled runs fast-forward on the warm AOT engine (``--quick``
uses the superblock engine to skip the module compile); the measured
intervals always run the fused DOE superblock path with functional
cache/predictor warming.  All schedules are fixed (U:k:W:seed below),
so the estimates are bit-reproducible run to run.

Writes one JSON document (``--out``) and can merge it as the
``sampling`` section of the Table I benchmark file (``--merge
BENCH_table1.json``).

Run from the repository root:

    PYTHONPATH=src python tools/sampling_accuracy.py --merge BENCH_table1.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.cycles.doe import DoeModel  # noqa: E402
from repro.framework.pipeline import (  # noqa: E402
    build_benchmark,
    open_plan_cache,
    run,
)
from repro.programs import program_names  # noqa: E402

#: Per-workload sampling schedules.  The sampling period scales with
#: the workload's dynamic length so every benchmark measures enough
#: intervals for a stable CI while the long ones stay fast; specs are
#: pinned (not derived at runtime) so the numbers in BENCH_table1.json
#: are reproducible bit-for-bit.
SPECS = {
    "cjpeg": "2000:200:500",
    "djpeg": "2000:50:300",
    "aes": "2000:5:2000",
    "crc32": "6000:5:6000",
    "dct4x4": "2000:5:1000",
    "fft": "2000:10:200",
    "qsort": "2000:10:200",
}

#: Relative-error gates; the flagship compression workload carries the
#: paper-facing 2% claim, everything else gates at 5%.
ERROR_GATES = {"cjpeg": 0.02}
DEFAULT_ERROR_GATE = 0.05

FAILURES = []


def fail(message):
    FAILURES.append(message)
    print(f"  GATE FAILED: {message}")


def measure_workload(name, spec, *, engine, repeats):
    """Exact fused DOE vs sampled run of one workload; returns a doc."""
    built = build_benchmark(name)
    width = built.issue_width
    with tempfile.TemporaryDirectory() as cache_dir:
        def cache():
            return open_plan_cache(built, directory=cache_dir)

        # Prime the plan cache: the timed runs model the steady state
        # (warm fused-DOE plans for the reference and the measured
        # intervals, warm functional plans for the fast-forward).
        run(built, engine="superblock",
            cycle_model=DoeModel(issue_width=width), plan_cache=cache())

        aot_module = None
        if engine == "aot":
            from repro.sim import aot

            # Compile the functional module outside the timed region —
            # a serving deployment compiles once.  The fast-forward is
            # purely functional, so it takes the longest block cap the
            # compiler offers (fewer dispatch boundaries) rather than
            # the detailed tier's default.
            aot_module = aot.prepare(
                built.elf, built.arch, model=None, max_block_len=256
            )
        # Warm the functional fast-forward plans too.
        run(built, engine=engine, aot_module=aot_module, plan_cache=cache())

        # One cache handle for every timed run, opened outside the
        # timed region — serve workers hold theirs open across jobs,
        # so per-run open/parse cost is not part of the steady state.
        cache_obj = cache()
        # Interleave the timed pairs: the reference and the sampled
        # run see the same background load, so the speedup ratio stays
        # honest even when the host is busy.
        best_exact = float("inf")
        best_sampled = float("inf")
        exact_model = None
        result = None
        for _ in range(repeats):
            model = DoeModel(issue_width=width)
            t0 = time.perf_counter()
            run(built, engine="superblock", cycle_model=model,
                plan_cache=cache_obj)
            best_exact = min(best_exact, time.perf_counter() - t0)
            exact_model = model
            t0 = time.perf_counter()
            result = run(
                built, engine=engine, aot_module=aot_module,
                cycle_model=DoeModel(issue_width=width),
                sampling=spec, plan_cache=cache_obj,
            )
            best_sampled = min(best_sampled, time.perf_counter() - t0)

    sampled = result.sampling
    exact = exact_model.cycles
    error = (abs(sampled.cycles_estimated - exact) / exact
             if sampled.cycles_estimated is not None else None)
    ci = sampled.cycles_ci95
    brackets = (
        ci is not None
        and abs(sampled.cycles_estimated - exact) <= ci
    )
    speedup = best_exact / best_sampled if best_sampled > 0 else None
    doc = {
        "spec": spec,
        "engine": engine,
        "instructions": result.stats.executed_instructions,
        "exact_cycles": exact,
        "exact_seconds": round(best_exact, 4),
        "estimated_cycles": sampled.cycles_estimated,
        "ci95": ci,
        "error_fraction": round(error, 6) if error is not None else None,
        "ci_brackets_exact": brackets,
        "intervals_measured": len(sampled.intervals),
        "detailed_fraction": round(sampled.detailed_fraction, 6),
        "sampled_seconds": round(best_sampled, 4),
        "speedup_vs_full_doe": round(speedup, 3),
    }
    ci_text = f"{ci:.0f}" if ci is not None else "n/a"
    print(f"  {name}: exact {exact} in {best_exact:.3f}s; "
          f"estimated {sampled.cycles_estimated} +/- {ci_text} "
          f"({error * 100:.2f}% err, {len(sampled.intervals)} intervals, "
          f"{sampled.detailed_fraction * 100:.2f}% detailed) "
          f"in {best_sampled:.3f}s -> {speedup:.2f}x")
    return doc


def merge_into_bench(path, section):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    doc["sampling"] = section
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    print(f"merged sampling section into {path}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="one small workload, relaxed gates (CI "
                             "smoke)")
    parser.add_argument("--quick-workload", default="dct4x4")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="cjpeg sampled-vs-full wall-clock gate")
    parser.add_argument("--quick-min-speedup", type=float, default=1.0,
                        help="--quick wall-clock floor (sampled must "
                             "not be slower than the full run)")
    parser.add_argument("--out", default=None,
                        help="write the standalone JSON document here")
    parser.add_argument("--merge", default=None,
                        help="merge a 'sampling' section into this "
                             "Table I benchmark JSON file")
    args = parser.parse_args(argv)

    if args.quick:
        names = [args.quick_workload]
        engine = "superblock"
    else:
        names = sorted(program_names())
        engine = "aot"

    workloads = {}
    print(f"sampling accuracy sweep ({', '.join(names)}; "
          f"fast-forward engine {engine}) ...")
    for name in names:
        spec = SPECS.get(name, "2000:10:300")
        doc = measure_workload(name, spec, engine=engine,
                               repeats=args.repeats)
        workloads[name] = doc

        if not doc["ci_brackets_exact"]:
            fail(f"{name}: 95% CI does not bracket the exact count "
                 f"({doc['estimated_cycles']} +/- {doc['ci95']} vs "
                 f"{doc['exact_cycles']})")
        gate = ERROR_GATES.get(name, DEFAULT_ERROR_GATE)
        if doc["error_fraction"] is None or doc["error_fraction"] > gate:
            fail(f"{name}: error {doc['error_fraction']} exceeds "
                 f"{gate:.0%} gate")
        if args.quick and doc["speedup_vs_full_doe"] < args.quick_min_speedup:
            fail(f"{name}: sampled run slower than the wall-clock floor "
                 f"({doc['speedup_vs_full_doe']}x < "
                 f"{args.quick_min_speedup}x)")
        if not args.quick and name == "cjpeg" \
                and doc["speedup_vs_full_doe"] < args.min_speedup:
            fail(f"cjpeg: speedup {doc['speedup_vs_full_doe']}x below "
                 f"the {args.min_speedup}x gate")

    section = {
        "quick": args.quick,
        "min_cjpeg_speedup_gate": None if args.quick else args.min_speedup,
        "workloads": workloads,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(section, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.merge:
        merge_into_bench(args.merge, section)

    if FAILURES:
        print(f"\nsampling accuracy gate FAILED "
              f"({len(FAILURES)} violation(s))")
        return 1
    print("\nsampling accuracy gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
