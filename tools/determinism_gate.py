#!/usr/bin/env python3
"""CI determinism gate for the checkpoint and cycle-fusion subsystems.

Three checks over one workload (default dct4x4), exit non-zero on any
mismatch:

1. **Fusion determinism** — run with fused cycle accounting (the
   default superblock fast path) and again with ``fuse_cycles=False``
   (per-instruction ``observe``), and require bitwise-identical DOE
   cycle counts, architectural statistics and slot-drift model state.
2. **Resume determinism** — run straight to completion, then run again
   with periodic checkpointing, resume from a mid-run checkpoint, and
   require bitwise-identical architectural state: registers, memory
   digest, program output, exit code, the architectural statistics
   (``SimStats.ARCHITECTURAL_FIELDS``) and — because the resumed run
   restores the cycle-model state — the exact DOE cycle count.  The
   straight run is *fused*, so this also gates fusion × checkpointing.
3. **Shard merge determinism** — run ``repro.framework.parallel`` with
   N shards and require the merged architectural statistics and output
   to match the straight run bitwise (cycle counts are approximate by
   design and are only reported, not gated).

4. **AOT cross-engine determinism** — run each workload in
   ``--aot-benchmarks`` (default: the main workload; ``all`` = every
   bundled benchmark) under ``engine="aot"`` — functional and fused
   DOE — and require bitwise-identical registers, memory digest,
   output, exit code, architectural statistics and cycle counts
   against the superblock engine.  On a mismatch the gate reruns the
   pair in lockstep (:func:`repro.telemetry.run_lockstep`) and prints
   a forensic report: first divergent PC, register delta and the
   last-N blocks both engines executed.

5. **Sampled determinism** — run the statistical sampling tier twice
   with a fixed ``(U, k, W, seed)`` schedule (``--sampling-spec``) and
   require bitwise-identical measured intervals and estimate, then
   require the sampled run's architectural end-state (registers,
   memory digest, output, exit code, architectural statistics) to
   equal a pure functional run bitwise.

6. **Forensics self-test** (``--forensics-selftest``) — inject a
   register fault mid-run on one lockstep side and require the
   forensics pipeline to localize it: a non-empty report naming the
   first divergent PC, the corrupted register and both block trails.
   This proves the divergence tooling end-to-end before CI has to
   trust it on a real mismatch.

``--perf-smoke`` adds wall-clock checks: with a warm persistent plan
cache, the fused DOE run must be at least ``--min-speedup`` (default
1.5x) faster than the per-instruction observe path, and the warm AOT
functional run of ``--aot-perf-workload`` (default cjpeg, a
high-table-coverage workload) must be at least ``--min-aot-speedup``
(default 1.3x) faster than the warm-cache superblock run.

Run from the repository root:

    PYTHONPATH=src python tools/determinism_gate.py [--workload dct4x4]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.cycles.doe import DoeModel  # noqa: E402
from repro.framework.parallel import run_parallel  # noqa: E402
from repro.framework.pipeline import build_benchmark, run  # noqa: E402
from repro.snapshot import memory_digest  # noqa: E402
from repro.telemetry import format_forensics, run_lockstep  # noqa: E402

FAILURES = []


def check(label, straight_value, other_value):
    if straight_value == other_value:
        print(f"  ok: {label}")
    else:
        FAILURES.append(label)
        print(f"  MISMATCH: {label}\n"
              f"    straight: {straight_value!r}\n"
              f"    other:    {other_value!r}")


def doe_drift_state(model):
    return {
        "slot_last_start": list(model.slot_last_start),
        "fetch_floor": model.fetch_floor,
        "max_completion": model.max_completion,
        "reg_write_cycle": list(model.reg_write_cycle),
    }


def perf_smoke(built, width, engine, min_speedup):
    """Warm-plan-cache fused DOE must beat per-instruction observe."""
    import time

    from repro.framework.pipeline import open_plan_cache

    with tempfile.TemporaryDirectory() as cache_dir:
        # Prime the cache so the timed fused run starts warm — the
        # steady state every run after the first sees.
        run(built, engine=engine, cycle_model=DoeModel(issue_width=width),
            plan_cache=open_plan_cache(built, directory=cache_dir))
        best_fused = best_ref = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            run(built, engine=engine,
                cycle_model=DoeModel(issue_width=width),
                plan_cache=open_plan_cache(built, directory=cache_dir))
            best_fused = min(best_fused, time.perf_counter() - t0)
            t0 = time.perf_counter()
            run(built, engine=engine,
                cycle_model=DoeModel(issue_width=width),
                fuse_cycles=False)
            best_ref = min(best_ref, time.perf_counter() - t0)
    speedup = best_ref / best_fused
    print(f"  fused {best_fused * 1000:.1f} ms, per-instruction "
          f"{best_ref * 1000:.1f} ms -> {speedup:.2f}x "
          f"(required {min_speedup:.2f}x)")
    if speedup < min_speedup:
        FAILURES.append("fused DOE perf smoke")
        print("  MISMATCH: fused DOE is not fast enough")


def aot_forensics(built, name):
    """Rerun a mismatching superblock/aot pair in lockstep and report."""
    print(f"  rerunning {name} in lockstep for forensics ...")
    report = run_lockstep(
        built,
        {"engine": "superblock", "label": "superblock"},
        {"engine": "aot", "label": "aot"},
    )
    if report is None:
        print("  lockstep rerun agreed to completion (flaky host state?)")
        return
    print(format_forensics(report, getattr(built, "debug_info", None)))


def aot_cross_engine(name):
    """aot vs superblock: functional and fused DOE, bitwise."""
    built = build_benchmark(name)
    width = built.issue_width
    failures_before = len(FAILURES)

    sb = run(built, engine="superblock")
    via_aot = run(built, engine="aot")
    binding = via_aot.interpreter.aot
    bound = f"{binding.entries_bound}/{binding.entries_total}" \
        if binding is not None else "none"
    print(f"  {name}: functional aot module bound {bound}, "
          f"{binding.dispatches if binding else 0} dispatches")
    check(f"{name} aot functional architectural stats",
          sb.stats.architectural_dict(),
          via_aot.stats.architectural_dict())
    check(f"{name} aot functional registers",
          list(sb.program.state.regs), list(via_aot.program.state.regs))
    check(f"{name} aot functional memory digest",
          memory_digest(sb.program.state.mem),
          memory_digest(via_aot.program.state.mem))
    check(f"{name} aot functional output", sb.output, via_aot.output)
    check(f"{name} aot functional exit code",
          sb.exit_code, via_aot.exit_code)

    sb_model = DoeModel(issue_width=width)
    sb_doe = run(built, engine="superblock", cycle_model=sb_model)
    aot_model = DoeModel(issue_width=width)
    aot_doe = run(built, engine="aot", cycle_model=aot_model)
    check(f"{name} aot doe cycles", sb_model.cycles, aot_model.cycles)
    check(f"{name} aot doe drift state",
          doe_drift_state(sb_model), doe_drift_state(aot_model))
    check(f"{name} aot doe architectural stats",
          sb_doe.stats.architectural_dict(),
          aot_doe.stats.architectural_dict())
    check(f"{name} aot doe output", sb_doe.output, aot_doe.output)

    if len(FAILURES) > failures_before:
        aot_forensics(built, name)


def sampled_determinism(built, width, spec):
    """Sampling tier: fixed (U,k,W,seed) is bitwise reproducible.

    Two sampled runs must agree on every measured interval and the
    extrapolated estimate, and the architectural end-state must equal
    a pure functional run bitwise — the schedule only decides *when*
    the cycle model watches, never what the program computes.
    """
    first = run(built, engine="superblock",
                cycle_model=DoeModel(issue_width=width), sampling=spec)
    second = run(built, engine="superblock",
                 cycle_model=DoeModel(issue_width=width), sampling=spec)
    check("sampled intervals reproducible",
          first.sampling.intervals, second.sampling.intervals)
    check("sampled estimate reproducible",
          (first.sampling.cycles_estimated, first.sampling.cycles_ci95),
          (second.sampling.cycles_estimated, second.sampling.cycles_ci95))

    functional = run(built, engine="superblock")
    check("sampled architectural stats vs functional",
          functional.stats.architectural_dict(),
          first.stats.architectural_dict())
    check("sampled registers vs functional",
          list(functional.program.state.regs),
          list(first.program.state.regs))
    check("sampled memory digest vs functional",
          memory_digest(functional.program.state.mem),
          memory_digest(first.program.state.mem))
    check("sampled output vs functional", functional.output, first.output)
    check("sampled exit code vs functional",
          functional.exit_code, first.exit_code)


def aot_perf_smoke(name, min_speedup):
    """Warm AOT must beat the warm-cache superblock engine.

    Measured on a high-coverage workload (default cjpeg): blocks
    ending in simops or ISA switches run on the interactive fallback
    path by design, so simop-dense microbenchmarks measure the
    fallback, not the table.
    """
    import time

    from repro.framework.pipeline import open_plan_cache

    built = build_benchmark(name)
    with tempfile.TemporaryDirectory() as cache_dir:
        # Cold pass: compile the module and populate the plan cache.
        run(built, engine="aot",
            plan_cache=open_plan_cache(built, directory=cache_dir))
        run(built, engine="superblock",
            plan_cache=open_plan_cache(built, directory=cache_dir))
        best_sb = best_aot = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            run(built, engine="superblock",
                plan_cache=open_plan_cache(built, directory=cache_dir))
            best_sb = min(best_sb, time.perf_counter() - t0)
            t0 = time.perf_counter()
            run(built, engine="aot",
                plan_cache=open_plan_cache(built, directory=cache_dir))
            best_aot = min(best_aot, time.perf_counter() - t0)
    speedup = best_sb / best_aot
    print(f"  {name}: superblock {best_sb * 1000:.1f} ms, aot "
          f"{best_aot * 1000:.1f} ms -> {speedup:.2f}x "
          f"(required {min_speedup:.2f}x)")
    if speedup < min_speedup:
        FAILURES.append("aot perf smoke")
        print("  MISMATCH: warm aot is not fast enough")


def forensics_selftest(built):
    """Injected fault must yield a localized forensic report.

    Flips one bit of the stack pointer on the lockstep B side at a
    fixed instruction boundary and requires :func:`run_lockstep` to
    come back with a report that (a) exists, (b) names the first
    divergent PC at exactly the injection boundary, (c) blames a
    register, and (d) carries non-empty block trails from both
    engines — everything CI relies on when a *real* divergence hits.
    """
    sp = built.arch.register_file.by_role("sp")[0].name
    inject = {"at": 50_000, "reg": sp, "xor": 8}
    report = run_lockstep(
        built,
        {"engine": "superblock", "label": "superblock"},
        {"engine": "aot", "label": "aot"},
        inject=inject,
    )
    if report is None:
        FAILURES.append("forensics selftest: no divergence detected")
        print("  MISMATCH: injected fault produced no report")
        return
    problems = []
    if report.get("first_divergent_pc") is None:
        problems.append("no first_divergent_pc")
    if report.get("first_divergent_instruction") != inject["at"]:
        problems.append(
            f"localized instruction "
            f"{report.get('first_divergent_instruction')} != {inject['at']}"
        )
    delta = (report.get("replay_register_delta")
             or report.get("register_delta") or [])
    if not any(entry.get("name") == sp for entry in delta):
        problems.append(f"register delta does not name {sp}")
    for key in ("recent_blocks_a", "recent_blocks_b"):
        if not (report.get(key) or {}).get("blocks"):
            problems.append(f"{key} trail empty")
    if problems:
        FAILURES.append("forensics selftest")
        for problem in problems:
            print(f"  MISMATCH: forensics selftest: {problem}")
        return
    pc = report["first_divergent_pc"]
    print(f"  ok: injected {sp}^=8 at #{inject['at']} localized to "
          f"pc={pc:#x}, {len(report['recent_blocks_a']['blocks'])}+"
          f"{len(report['recent_blocks_b']['blocks'])} trail entries")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="dct4x4")
    parser.add_argument("--engine", default="superblock")
    parser.add_argument("--checkpoint-every", type=int, default=40_000)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--perf-smoke", action="store_true",
                        help="also gate fused-DOE and aot wall-clock "
                             "speedups")
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--min-aot-speedup", type=float, default=1.3)
    parser.add_argument("--aot-perf-workload", default="cjpeg",
                        help="workload for the aot perf smoke (default "
                             "cjpeg: high table coverage — simop-dense "
                             "workloads measure the fallback path)")
    parser.add_argument("--forensics-selftest", action="store_true",
                        help="inject a register fault into a lockstep "
                             "run and require the forensics report to "
                             "localize it (first divergent PC, register "
                             "delta, block trails)")
    parser.add_argument("--sampling-spec", default="2000:10:200",
                        help="U:k[:W[:seed]] schedule for the sampled "
                             "determinism section")
    parser.add_argument("--aot-benchmarks", default=None,
                        help="comma list of workloads for the aot "
                             "cross-engine section; 'all' = every "
                             "bundled benchmark (default: --workload)")
    args = parser.parse_args(argv)

    built = build_benchmark(args.workload)
    width = built.issue_width

    print(f"straight run ({args.workload}, {args.engine}, doe, fused) ...")
    straight_model = DoeModel(issue_width=width)
    straight = run(built, engine=args.engine, cycle_model=straight_model)
    straight_arch = straight.stats.architectural_dict()
    straight_mem = memory_digest(straight.program.state.mem)

    print("per-instruction reference (fuse_cycles=False) ...")
    ref_model = DoeModel(issue_width=width)
    ref = run(built, engine=args.engine, cycle_model=ref_model,
              fuse_cycles=False)
    check("fused doe cycles", straight_model.cycles, ref_model.cycles)
    check("fused architectural stats",
          straight_arch, ref.stats.architectural_dict())
    check("fused doe drift state",
          doe_drift_state(straight_model), doe_drift_state(ref_model))
    check("fused output", straight.output, ref.output)

    print(f"checkpoint + resume (every {args.checkpoint_every}) ...")
    with tempfile.TemporaryDirectory() as directory:
        part_model = DoeModel(issue_width=width)
        part = run(
            built, engine=args.engine, cycle_model=part_model,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=directory,
        )
        if not part.checkpoints:
            print(f"  MISMATCH: no checkpoints written — workload too "
                  f"short for --checkpoint-every {args.checkpoint_every}")
            return 1
        check("checkpointed run architectural stats",
              straight_arch, part.stats.architectural_dict())
        middle = part.checkpoints[len(part.checkpoints) // 2]
        print(f"resuming from {os.path.basename(middle)} ...")
        resume_model = DoeModel(issue_width=width)
        resumed = run(
            built, engine=args.engine, cycle_model=resume_model,
            resume_from=middle,
        )
        check("resumed architectural stats",
              straight_arch, resumed.stats.architectural_dict())
        check("resumed registers",
              list(straight.program.state.regs),
              list(resumed.program.state.regs))
        check("resumed memory digest",
              straight_mem, memory_digest(resumed.program.state.mem))
        check("resumed output", straight.output, resumed.output)
        check("resumed exit code", straight.exit_code, resumed.exit_code)
        check("resumed doe cycles", straight_model.cycles,
              resume_model.cycles)

    print(f"parallel shard merge ({args.shards} shards) ...")
    par = run_parallel(built, shards=args.shards, model="doe",
                       engine=args.engine, workload=args.workload)
    check("merged architectural stats",
          straight_arch, par.stats.architectural_dict())
    check("merged output", straight.output, par.output)
    check("merged exit code", straight.exit_code, par.exit_code)
    drift = (abs(par.cycles - straight_model.cycles)
             / max(straight_model.cycles, 1))
    print(f"  info: shard cycle drift {drift * 100:.3f}% "
          f"({par.cycles} vs {straight_model.cycles}; approximate by "
          f"design, not gated)")

    if args.aot_benchmarks == "all":
        from repro.programs import program_names

        aot_names = sorted(program_names())
    elif args.aot_benchmarks:
        aot_names = [n.strip() for n in args.aot_benchmarks.split(",")]
    else:
        aot_names = [args.workload]
    print(f"aot cross-engine ({', '.join(aot_names)}) ...")
    for name in aot_names:
        aot_cross_engine(name)

    print(f"sampled determinism ({args.sampling_spec}) ...")
    sampled_determinism(built, width, args.sampling_spec)

    if args.forensics_selftest:
        print("forensics self-test (injected sp fault) ...")
        forensics_selftest(built)

    if args.perf_smoke:
        print(f"perf smoke (warm plan cache, min {args.min_speedup}x) ...")
        perf_smoke(built, width, args.engine, args.min_speedup)
        print(f"aot perf smoke (warm module, min "
              f"{args.min_aot_speedup}x) ...")
        aot_perf_smoke(args.aot_perf_workload, args.min_aot_speedup)

    if FAILURES:
        print(f"\ndeterminism gate FAILED: {len(FAILURES)} mismatch(es)")
        return 1
    print("\ndeterminism gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
